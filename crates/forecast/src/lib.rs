//! # caladrius-forecast
//!
//! Time-series modelling substrate standing in for Facebook Prophet, which
//! the Caladrius paper uses to forecast topology source throughput
//! (§IV-A). The paper treats Prophet as a black box; this crate implements
//! the same model family from scratch:
//!
//! * [`prophet`] — an additive model `y(t) = g(t) + s(t) + ε` with a
//!   piecewise-linear trend over automatically placed changepoints
//!   (ridge-regularised deltas), Fourier-basis seasonalities, Huber-robust
//!   IRLS fitting (outlier tolerance), native missing-data handling and
//!   simulation-based uncertainty intervals,
//! * [`stats`] — the paper's "statistics summary traffic model" for stable
//!   traffic (mean / median / quantile forecasts),
//! * [`holtwinters`] — additive triple exponential smoothing baseline,
//! * [`ar`] — autoregressive AR(p) baseline via Levinson–Durbin,
//! * [`eval`] — rolling-origin backtesting with MAE / RMSE / MAPE and
//!   interval-coverage metrics,
//! * [`linalg`] — the dense least-squares machinery everything is built on.
//!
//! All models implement the [`Forecaster`] trait so Caladrius's traffic
//! model registry can switch between them by name.

#![warn(missing_docs)]

pub mod ar;
pub mod eval;
pub mod holtwinters;
pub mod linalg;
pub mod prophet;
pub mod seasonality;
pub mod stats;
pub mod streaming;
pub mod trend;

use serde::{Deserialize, Serialize};

/// One training observation: timestamp (milliseconds) and value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataPoint {
    /// Milliseconds since epoch (or simulation start).
    pub ts: i64,
    /// Observed value. NaN values are treated as missing by all models.
    pub y: f64,
}

impl DataPoint {
    /// Creates a data point.
    pub fn new(ts: i64, y: f64) -> Self {
        Self { ts, y }
    }
}

/// One forecast value with an uncertainty interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForecastPoint {
    /// Forecast timestamp (milliseconds).
    pub ts: i64,
    /// Point forecast.
    pub yhat: f64,
    /// Lower bound of the uncertainty interval.
    pub lower: f64,
    /// Upper bound of the uncertainty interval.
    pub upper: f64,
}

/// Errors shared by all forecasting models.
#[derive(Debug, Clone, PartialEq)]
pub enum ForecastError {
    /// The training series has too few usable (finite) observations.
    NotEnoughData {
        /// Minimum number of points the model needs.
        needed: usize,
        /// Usable points actually provided.
        got: usize,
    },
    /// A model hyper-parameter is out of range.
    InvalidParameter(String),
    /// The normal equations were singular even after regularisation.
    SingularSystem,
}

impl std::fmt::Display for ForecastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForecastError::NotEnoughData { needed, got } => {
                write!(
                    f,
                    "not enough data: need at least {needed} points, got {got}"
                )
            }
            ForecastError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            ForecastError::SingularSystem => write!(f, "linear system is singular"),
        }
    }
}

impl std::error::Error for ForecastError {}

/// What an [`Forecaster::update`] call actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateOutcome {
    /// The model absorbed the new points through its streaming sufficient
    /// statistics — the fitted state now covers the extended history.
    Incremental,
    /// The model has no exact incremental path for this update (no prior
    /// fit, out-of-order points, or a model family that must re-select
    /// structure, e.g. Prophet changepoints). The fitted state was left
    /// untouched; the caller must re-fit over the full history.
    FullRefitNeeded,
}

/// Common interface over all traffic forecasting models.
///
/// A `Forecaster` is fit once on history and can then be queried for any
/// set of future timestamps. This is the seam Caladrius's traffic-model
/// tier plugs into (paper Fig. 2: "Prophet Traffic Model", "Statistic
/// Summary Traffic Model").
pub trait Forecaster {
    /// Fits the model to history. Non-finite observations are ignored.
    fn fit(&mut self, history: &[DataPoint]) -> Result<(), ForecastError>;

    /// Predicts at the given future (or past, for in-sample inspection)
    /// timestamps. Must be called after a successful [`Forecaster::fit`].
    fn predict(&self, timestamps: &[i64]) -> Result<Vec<ForecastPoint>, ForecastError>;

    /// Absorbs points observed *after* the history the model was fitted
    /// on, in O(new points) where the model family allows it.
    ///
    /// Models backed by streaming sufficient statistics (AR, Holt-Winters,
    /// stats summary) return [`UpdateOutcome::Incremental`] and afterwards
    /// predict as if [`Forecaster::fit`] had been re-run over the extended
    /// history (bitwise-exact for sum-based models, recurrence-exact for
    /// Holt-Winters with fixed smoothing parameters). When no exact
    /// incremental path exists — the model was never fitted, the new
    /// points are not strictly newer than the fitted history, or the
    /// model must re-select structure (Prophet changepoints) — the fitted
    /// state is left untouched and [`UpdateOutcome::FullRefitNeeded`] is
    /// returned: the caller owns the full history and must call `fit`.
    ///
    /// The default implementation declares no incremental path.
    fn update(&mut self, _new_points: &[DataPoint]) -> Result<UpdateOutcome, ForecastError> {
        Ok(UpdateOutcome::FullRefitNeeded)
    }

    /// Human-readable model name used by the registry.
    fn name(&self) -> &'static str;
}

/// Drops non-finite observations, the shared missing-data policy.
pub(crate) fn clean(history: &[DataPoint]) -> Vec<DataPoint> {
    history
        .iter()
        .copied()
        .filter(|p| p.y.is_finite())
        .collect()
}

/// Generates `n` equally spaced future timestamps continuing `history`'s
/// last timestamp with `step_ms` spacing.
pub fn future_timestamps(history: &[DataPoint], n: usize, step_ms: i64) -> Vec<i64> {
    let last = history.last().map_or(0, |p| p.ts);
    (1..=n as i64).map(|i| last + i * step_ms).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_drops_nan_and_inf() {
        let pts = vec![
            DataPoint::new(0, 1.0),
            DataPoint::new(1, f64::NAN),
            DataPoint::new(2, f64::INFINITY),
            DataPoint::new(3, 2.0),
        ];
        let cleaned = clean(&pts);
        assert_eq!(cleaned.len(), 2);
        assert_eq!(cleaned[1].y, 2.0);
    }

    #[test]
    fn future_timestamps_continue_history() {
        let pts = vec![DataPoint::new(0, 1.0), DataPoint::new(60_000, 1.0)];
        assert_eq!(
            future_timestamps(&pts, 3, 60_000),
            vec![120_000, 180_000, 240_000]
        );
        assert_eq!(future_timestamps(&[], 2, 10), vec![10, 20]);
    }

    #[test]
    fn default_update_requests_full_refit() {
        struct NoUpdate;
        impl Forecaster for NoUpdate {
            fn fit(&mut self, _history: &[DataPoint]) -> Result<(), ForecastError> {
                Ok(())
            }
            fn predict(&self, _ts: &[i64]) -> Result<Vec<ForecastPoint>, ForecastError> {
                Ok(Vec::new())
            }
            fn name(&self) -> &'static str {
                "no-update"
            }
        }
        let mut m = NoUpdate;
        assert_eq!(
            m.update(&[DataPoint::new(0, 1.0)]).unwrap(),
            UpdateOutcome::FullRefitNeeded
        );
    }

    #[test]
    fn error_display() {
        let e = ForecastError::NotEnoughData { needed: 10, got: 2 };
        assert!(e.to_string().contains("10"));
        assert!(ForecastError::SingularSystem
            .to_string()
            .contains("singular"));
    }
}
