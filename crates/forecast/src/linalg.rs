//! Dense linear algebra for least-squares fitting.
//!
//! The models in this crate solve (weighted, ridge-regularised) normal
//! equations: `(Xᵀ W X + Λ) β = Xᵀ W y`. The left-hand side is symmetric
//! positive definite once Λ has any positive entries, so a Cholesky
//! factorisation is sufficient and fast; a jitter fallback covers the
//! numerically borderline cases.

use crate::ForecastError;

/// A dense, row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length must equal rows * cols"
        );
        Self { rows, cols, data }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix-vector product `A v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        self.data
            .chunks_exact(self.cols)
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// `Aᵀ diag(w) A`, the weighted Gram matrix. With `w = None` the
    /// weights are all one.
    pub fn gram_weighted(&self, w: Option<&[f64]>) -> Matrix {
        let n = self.cols;
        let mut out = Matrix::zeros(n, n);
        for (r, row) in self.data.chunks_exact(n).enumerate() {
            let weight = w.map_or(1.0, |w| w[r]);
            if weight == 0.0 {
                continue;
            }
            for i in 0..n {
                let wi = weight * row[i];
                if wi == 0.0 {
                    continue;
                }
                for j in i..n {
                    out[(i, j)] += wi * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..n {
            for j in 0..i {
                out[(i, j)] = out[(j, i)];
            }
        }
        out
    }

    /// `Aᵀ diag(w) y`.
    pub fn tr_mul_vec_weighted(&self, y: &[f64], w: Option<&[f64]>) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, row) in self.data.chunks_exact(self.cols).enumerate() {
            let wy = w.map_or(1.0, |w| w[r]) * y[r];
            if wy == 0.0 {
                continue;
            }
            for (o, a) in out.iter_mut().zip(row) {
                *o += a * wy;
            }
        }
        out
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Solves `A x = b` for symmetric positive-definite `A` via Cholesky
/// (`A = L Lᵀ`), with a small diagonal jitter retry if the factorisation
/// stalls on a semi-definite input.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, ForecastError> {
    assert_eq!(a.rows(), a.cols(), "matrix must be square");
    assert_eq!(b.len(), a.rows(), "dimension mismatch");
    for attempt in 0..4 {
        let jitter = if attempt == 0 {
            0.0
        } else {
            // Scale jitter to the matrix magnitude.
            let max_diag = (0..a.rows())
                .map(|i| a[(i, i)].abs())
                .fold(f64::MIN_POSITIVE, f64::max);
            max_diag * 1e-10 * 10f64.powi(attempt)
        };
        if let Some(l) = cholesky(a, jitter) {
            return Ok(cholesky_solve(&l, b));
        }
    }
    Err(ForecastError::SingularSystem)
}

/// Lower-triangular Cholesky factor of `a + jitter * I`, or `None` if a
/// non-positive pivot appears.
fn cholesky(a: &Matrix, jitter: f64) -> Option<Matrix> {
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)] + if i == j { jitter } else { 0.0 };
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return None;
                }
                l[(i, i)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Some(l)
}

/// Solves `L Lᵀ x = b` by forward then backward substitution.
fn cholesky_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[(i, k)] * y[k];
        }
        y[i] = sum / l[(i, i)];
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[(k, i)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    x
}

/// Weighted ridge least squares: minimises
/// `Σ wᵢ (yᵢ - xᵢᵀβ)² + Σⱼ λⱼ βⱼ²`, i.e. a per-coefficient penalty.
///
/// `penalties.len()` must equal the design's column count; use zero entries
/// for unpenalised coefficients (intercept, base slope).
pub fn ridge_weighted(
    design: &Matrix,
    y: &[f64],
    weights: Option<&[f64]>,
    penalties: &[f64],
) -> Result<Vec<f64>, ForecastError> {
    assert_eq!(penalties.len(), design.cols(), "one penalty per column");
    let mut gram = design.gram_weighted(weights);
    for (i, p) in penalties.iter().enumerate() {
        gram[(i, i)] += p;
    }
    let rhs = design.tr_mul_vec_weighted(y, weights);
    solve_spd(&gram, &rhs)
}

/// Ordinary least squares through the origin for a single predictor:
/// returns the slope `Σ w x y / Σ w x²`. Used for the paper's I/O
/// coefficient (α) and CPU ratio (ψ) fits.
pub fn slope_through_origin(x: &[f64], y: &[f64], w: Option<&[f64]>) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "dimension mismatch");
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..x.len() {
        let wi = w.map_or(1.0, |w| w[i]);
        num += wi * x[i] * y[i];
        den += wi * x[i] * x[i];
    }
    (den > 0.0).then(|| num / den)
}

/// Simple linear regression `y = a + b x`; returns `(intercept, slope)`.
/// Returns `None` when `x` has no variance.
pub fn linear_fit(x: &[f64], y: &[f64]) -> Option<(f64, f64)> {
    assert_eq!(x.len(), y.len(), "dimension mismatch");
    let n = x.len() as f64;
    if x.is_empty() {
        return None;
    }
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for i in 0..x.len() {
        sxx += (x[i] - mx) * (x[i] - mx);
        sxy += (x[i] - mx) * (y[i] - my);
    }
    if sxx <= f64::EPSILON * n {
        return None;
    }
    let slope = sxy / sxx;
    Some((my - slope * mx, slope))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_vec_matches_manual() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.mul_vec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
    }

    #[test]
    fn gram_is_symmetric_and_correct() {
        let a = Matrix::from_rows(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gram_weighted(None);
        assert_eq!(g[(0, 0)], 1.0 + 9.0 + 25.0);
        assert_eq!(g[(0, 1)], 2.0 + 12.0 + 30.0);
        assert_eq!(g[(1, 0)], g[(0, 1)]);
        assert_eq!(g[(1, 1)], 4.0 + 16.0 + 36.0);
    }

    #[test]
    fn weighted_gram_scales_rows() {
        let a = Matrix::from_rows(2, 1, vec![1.0, 2.0]);
        let g = a.gram_weighted(Some(&[2.0, 0.5]));
        assert_eq!(g[(0, 0)], 2.0 * 1.0 + 0.5 * 4.0);
    }

    #[test]
    fn solve_spd_recovers_solution() {
        // A = [[4,2],[2,3]], x = [1, -1] => b = [2, -1]
        let a = Matrix::from_rows(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        let x = solve_spd(&a, &[2.0, -1.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_spd_identity() {
        let a = Matrix::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(solve_spd(&a, &b).unwrap(), b);
    }

    #[test]
    fn solve_spd_rejects_truly_singular() {
        let a = Matrix::from_rows(2, 2, vec![0.0, 0.0, 0.0, 0.0]);
        // Jitter rescues an all-zero matrix only to a near-zero solve; the
        // scaled jitter is relative to MIN_POSITIVE here, so expect either
        // failure or an enormous-but-finite solution; both are acceptable
        // as long as no panic occurs.
        let _ = solve_spd(&a, &[1.0, 1.0]);
    }

    #[test]
    fn ridge_recovers_exact_fit_with_zero_penalty() {
        // y = 2 + 3x on a few points.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let design = Matrix::from_rows(4, 2, xs.iter().flat_map(|x| [1.0, *x]).collect());
        let y: Vec<f64> = xs.iter().map(|x| 2.0 + 3.0 * x).collect();
        let beta = ridge_weighted(&design, &y, None, &[0.0, 0.0]).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-9);
        assert!((beta[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ridge_penalty_shrinks_coefficients() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let design = Matrix::from_rows(4, 2, xs.iter().flat_map(|x| [1.0, *x]).collect());
        let y: Vec<f64> = xs.iter().map(|x| 2.0 + 3.0 * x).collect();
        let free = ridge_weighted(&design, &y, None, &[0.0, 0.0]).unwrap();
        let shrunk = ridge_weighted(&design, &y, None, &[0.0, 100.0]).unwrap();
        assert!(shrunk[1].abs() < free[1].abs());
    }

    #[test]
    fn ridge_weights_downweight_outliers() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let design = Matrix::from_rows(5, 2, xs.iter().flat_map(|x| [1.0, *x]).collect());
        let mut y: Vec<f64> = xs.iter().map(|x| 1.0 + 2.0 * x).collect();
        y[4] = 100.0; // outlier
        let w = [1.0, 1.0, 1.0, 1.0, 0.0];
        let beta = ridge_weighted(&design, &y, Some(&w), &[0.0, 0.0]).unwrap();
        assert!((beta[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn slope_through_origin_exact() {
        let x = [1.0, 2.0, 3.0];
        let y = [7.63, 15.26, 22.89];
        let a = slope_through_origin(&x, &y, None).unwrap();
        assert!((a - 7.63).abs() < 1e-12);
        assert!(slope_through_origin(&[0.0], &[1.0], None).is_none());
    }

    #[test]
    fn linear_fit_recovers_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [5.0, 7.0, 9.0, 11.0];
        let (a, b) = linear_fit(&x, &y).unwrap();
        assert!((a - 5.0).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_degenerate_x() {
        assert!(linear_fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(linear_fit(&[], &[]).is_none());
    }

    #[test]
    #[should_panic(expected = "rows * cols")]
    fn from_rows_checks_len() {
        let _ = Matrix::from_rows(2, 2, vec![1.0]);
    }
}
