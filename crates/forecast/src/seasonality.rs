//! Fourier-basis seasonal components.
//!
//! Each seasonality contributes `2 * order` columns to the design matrix:
//! `sin(2πn·t/P), cos(2πn·t/P)` for `n = 1..=order`, evaluated on raw time
//! in milliseconds so that periods stay physical (daily, weekly, ...)
//! regardless of how long the training window is.

use std::f64::consts::TAU;

/// One seasonal component.
#[derive(Debug, Clone, PartialEq)]
pub struct Seasonality {
    /// Human-readable name (`daily`, `weekly`, ...).
    pub name: String,
    /// Period in milliseconds.
    pub period_ms: f64,
    /// Number of Fourier harmonics.
    pub order: usize,
    /// Ridge penalty applied to this component's coefficients.
    pub penalty: f64,
}

impl Seasonality {
    /// Daily seasonality (Prophet default order 4 for sub-daily data).
    pub fn daily(order: usize) -> Self {
        Self {
            name: "daily".into(),
            period_ms: 86_400_000.0,
            order,
            penalty: 0.1,
        }
    }

    /// Weekly seasonality (Prophet default order 3).
    pub fn weekly(order: usize) -> Self {
        Self {
            name: "weekly".into(),
            period_ms: 7.0 * 86_400_000.0,
            order,
            penalty: 0.1,
        }
    }

    /// Yearly seasonality (Prophet default order 10).
    pub fn yearly(order: usize) -> Self {
        Self {
            name: "yearly".into(),
            period_ms: 365.25 * 86_400_000.0,
            order,
            penalty: 0.1,
        }
    }

    /// A custom period.
    pub fn custom(name: impl Into<String>, period_ms: f64, order: usize) -> Self {
        Self {
            name: name.into(),
            period_ms,
            order,
            penalty: 0.1,
        }
    }

    /// Number of design columns this component contributes.
    pub fn width(&self) -> usize {
        2 * self.order
    }

    /// Appends this component's features at raw time `ts_ms` to `out`.
    pub fn features(&self, ts_ms: f64, out: &mut Vec<f64>) {
        for n in 1..=self.order {
            let angle = TAU * n as f64 * ts_ms / self.period_ms;
            out.push(angle.sin());
            out.push(angle.cos());
        }
    }
}

/// Total design width of a seasonality set.
pub fn total_width(seasonalities: &[Seasonality]) -> usize {
    seasonalities.iter().map(Seasonality::width).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_is_twice_order() {
        assert_eq!(Seasonality::daily(4).width(), 8);
        assert_eq!(Seasonality::weekly(3).width(), 6);
        assert_eq!(
            total_width(&[Seasonality::daily(4), Seasonality::weekly(3)]),
            14
        );
    }

    #[test]
    fn features_are_periodic() {
        let s = Seasonality::daily(3);
        let mut a = Vec::new();
        let mut b = Vec::new();
        s.features(1_000_000.0, &mut a);
        s.features(1_000_000.0 + 86_400_000.0, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "daily features must repeat every 24h");
        }
    }

    #[test]
    fn features_at_zero() {
        let s = Seasonality::custom("test", 1000.0, 2);
        let mut row = Vec::new();
        s.features(0.0, &mut row);
        assert_eq!(row, vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn harmonics_are_multiples() {
        let s = Seasonality::custom("test", 1000.0, 2);
        let mut row = Vec::new();
        s.features(125.0, &mut row); // 1/8 of the period
        let base = TAU * 125.0 / 1000.0;
        assert!((row[0] - base.sin()).abs() < 1e-12);
        assert!((row[2] - (2.0 * base).sin()).abs() < 1e-12);
    }

    #[test]
    fn named_constructors() {
        assert_eq!(Seasonality::yearly(10).name, "yearly");
        assert!((Seasonality::weekly(3).period_ms - 604_800_000.0).abs() < 1e-6);
    }
}
