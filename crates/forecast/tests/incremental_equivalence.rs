//! Property tests for the incremental == batch refit equivalence bar.
//!
//! For every random series and every random append schedule (history cut
//! into a prefix fit plus 1–6 update chunks), a forecaster that absorbed
//! the appends through [`Forecaster::update`] must predict exactly what a
//! fresh fit over the full series predicts:
//!
//! * **AR / stats summary** — bitwise (`f64::to_bits`) equality: both
//!   paths route every point through the same compensated accumulators in
//!   the same order.
//! * **Holt-Winters** — the continuation performs the identical smoothing
//!   recurrence when the `(α, β, γ)` parameters are held fixed, so the
//!   bound is tolerance-style but tight (1e-9 relative). Grid-searched
//!   parameters may re-select on a batch re-fit and are exercised by the
//!   full-refit regressions instead.
//!
//! The regressions at the bottom pin the refusal edges: stale or
//! overlapping appends (the forecaster-level analogue of tsdb truncation
//! and retention-driven chunk eviction) must leave the fitted state
//! untouched and demand a full refit.

use caladrius_forecast::ar::ArModel;
use caladrius_forecast::holtwinters::{HoltWinters, HoltWintersConfig};
use caladrius_forecast::stats::StatsSummaryModel;
use caladrius_forecast::{DataPoint, ForecastPoint, Forecaster, UpdateOutcome};
use proptest::prelude::*;

const MINUTE: i64 = 60_000;

fn points(values: &[f64]) -> Vec<DataPoint> {
    values
        .iter()
        .enumerate()
        .map(|(i, v)| DataPoint::new(i as i64 * MINUTE, *v))
        .collect()
}

/// Cuts `data[prefix..]` at the fractional `cuts` and replays the chunks
/// through `update`, asserting every in-order chunk absorbs
/// incrementally (empty chunks included — they must be no-ops).
fn replay(model: &mut dyn Forecaster, data: &[DataPoint], prefix: usize, cuts: &[f64]) {
    let tail = &data[prefix..];
    let mut bounds: Vec<usize> = cuts
        .iter()
        .map(|f| (f * tail.len() as f64) as usize)
        .collect();
    bounds.push(tail.len());
    bounds.sort_unstable();
    let mut start = 0;
    for end in bounds {
        let outcome = model.update(&tail[start..end]).expect("in-order append");
        assert_eq!(outcome, UpdateOutcome::Incremental);
        start = end;
    }
}

/// Future timestamps probing several horizons past the series end.
fn horizon(len: usize) -> Vec<i64> {
    let last = (len as i64 - 1) * MINUTE;
    vec![last + MINUTE, last + 7 * MINUTE, last + 60 * MINUTE]
}

fn assert_bitwise(incremental: &[ForecastPoint], batch: &[ForecastPoint]) {
    assert_eq!(incremental.len(), batch.len());
    for (a, b) in incremental.iter().zip(batch) {
        assert_eq!(a.ts, b.ts);
        assert_eq!(a.yhat.to_bits(), b.yhat.to_bits(), "yhat diverged");
        assert_eq!(a.lower.to_bits(), b.lower.to_bits(), "lower diverged");
        assert_eq!(a.upper.to_bits(), b.upper.to_bits(), "upper diverged");
    }
}

fn assert_close(incremental: &[ForecastPoint], batch: &[ForecastPoint], rel: f64) {
    assert_eq!(incremental.len(), batch.len());
    for (a, b) in incremental.iter().zip(batch) {
        assert_eq!(a.ts, b.ts);
        for (x, y, what) in [
            (a.yhat, b.yhat, "yhat"),
            (a.lower, b.lower, "lower"),
            (a.upper, b.upper, "upper"),
        ] {
            assert!(
                (x - y).abs() <= rel * y.abs().max(1.0),
                "{what}: incremental {x} vs batch {y}"
            );
        }
    }
}

proptest! {
    #[test]
    fn stats_summary_incremental_matches_batch_bitwise(
        values in prop::collection::vec(1.0f64..2.0e7, 20..120),
        cuts in prop::collection::vec(0.0f64..1.0, 0..5),
        prefix_frac in 0.1f64..0.9,
        quantile in 0.0f64..1.0,
    ) {
        let data = points(&values);
        let prefix = ((values.len() as f64 * prefix_frac) as usize).max(1);
        // The low half of the draw selects the mean statistic, the high
        // half a quantile in [0.5, 1.0) — both summary families ride the
        // same schedule.
        let fresh = || if quantile < 0.5 {
            StatsSummaryModel::mean()
        } else {
            StatsSummaryModel::new(
                caladrius_forecast::stats::SummaryStatistic::Quantile(quantile),
                0.9,
            )
        };

        let mut incremental = fresh();
        incremental.fit(&data[..prefix]).unwrap();
        replay(&mut incremental, &data, prefix, &cuts);

        let mut batch = fresh();
        batch.fit(&data).unwrap();

        let ts = horizon(values.len());
        assert_bitwise(&incremental.predict(&ts).unwrap(), &batch.predict(&ts).unwrap());
    }

    #[test]
    fn ar_incremental_matches_batch_bitwise(
        values in prop::collection::vec(10.0f64..1.0e6, 30..100),
        cuts in prop::collection::vec(0.0f64..1.0, 0..5),
        prefix_frac in 0.35f64..0.9,
    ) {
        let data = points(&values);
        // AR(3) needs 3*3+1 = 10 points; the prefix floor keeps the
        // initial fit viable for the shortest series.
        let prefix = ((values.len() as f64 * prefix_frac) as usize).max(10);

        let mut incremental = ArModel::new(3, 0.9);
        incremental.fit(&data[..prefix]).unwrap();
        replay(&mut incremental, &data, prefix, &cuts);

        let mut batch = ArModel::new(3, 0.9);
        batch.fit(&data).unwrap();

        let ts = horizon(values.len());
        assert_bitwise(&incremental.predict(&ts).unwrap(), &batch.predict(&ts).unwrap());
    }

    #[test]
    fn holt_winters_incremental_matches_batch(
        values in prop::collection::vec(100.0f64..1.0e6, 30..120),
        cuts in prop::collection::vec(0.0f64..1.0, 0..5),
        prefix_frac in 0.25f64..0.9,
    ) {
        let config = HoltWintersConfig {
            season_length: 6,
            params: Some((0.3, 0.1, 0.2)),
            interval_width: 0.9,
        };
        let data = points(&values);
        // Needs 2*m = 12 points for level/trend/season initialisation.
        let prefix = ((values.len() as f64 * prefix_frac) as usize).max(12);

        let mut incremental = HoltWinters::new(config);
        incremental.fit(&data[..prefix]).unwrap();
        replay(&mut incremental, &data, prefix, &cuts);

        let mut batch = HoltWinters::new(config);
        batch.fit(&data).unwrap();

        let ts = horizon(values.len());
        assert_close(
            &incremental.predict(&ts).unwrap(),
            &batch.predict(&ts).unwrap(),
            1e-9,
        );
    }
}

/// Appends that are not strictly newer than the fitted history — the
/// forecaster-level face of tsdb truncation or retention-driven chunk
/// eviction rewriting absorbed minutes — must refuse the delta path and
/// leave the fitted state untouched.
#[test]
fn stale_appends_force_full_refit() {
    let values: Vec<f64> = (0..40).map(|i| 1000.0 + f64::from(i % 7)).collect();
    let data = points(&values);
    let models: Vec<Box<dyn Forecaster>> = vec![
        Box::new(StatsSummaryModel::mean()),
        Box::new(ArModel::new(3, 0.9)),
        Box::new(HoltWinters::new(HoltWintersConfig {
            season_length: 6,
            params: Some((0.3, 0.1, 0.2)),
            interval_width: 0.9,
        })),
    ];
    for mut model in models {
        model.fit(&data).unwrap();
        let before = model.predict(&horizon(values.len())).unwrap();

        // Overlapping: first point replays an already-absorbed minute.
        let overlap = [data[data.len() - 1], DataPoint::new(40 * MINUTE, 990.0)];
        assert_eq!(
            model.update(&overlap).unwrap(),
            UpdateOutcome::FullRefitNeeded,
            "{} must refuse overlapping appends",
            model.name()
        );
        // Out-of-order within the fitted range (a truncated-and-refilled
        // store replays history from before the fit watermark).
        let rewound = [DataPoint::new(5 * MINUTE, 1.0)];
        assert_eq!(
            model.update(&rewound).unwrap(),
            UpdateOutcome::FullRefitNeeded,
            "{} must refuse rewound appends",
            model.name()
        );
        let after = model.predict(&horizon(values.len())).unwrap();
        assert_bitwise(&after, &before);
    }
}

#[test]
fn update_before_fit_needs_full_refit() {
    let data = points(&[1.0, 2.0, 3.0]);
    let mut model = StatsSummaryModel::mean();
    assert_eq!(model.update(&data).unwrap(), UpdateOutcome::FullRefitNeeded);
    let mut ar = ArModel::new(3, 0.9);
    assert_eq!(ar.update(&data).unwrap(), UpdateOutcome::FullRefitNeeded);
}
