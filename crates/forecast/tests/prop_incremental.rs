//! Incremental == batch equivalence properties.
//!
//! For every model with a streaming sufficient-statistics update path,
//! fitting a prefix and then absorbing the remaining points through
//! `update` — across a *random append schedule* (random number and sizes
//! of appended batches) — must predict exactly what a single batch fit
//! over the full history predicts. AR and the stats summary are
//! bitwise-exact; Holt-Winters is bitwise-exact once the smoothing
//! parameters are fixed (the only case `update` continues from).

use caladrius_forecast::ar::ArModel;
use caladrius_forecast::holtwinters::{HoltWinters, HoltWintersConfig};
use caladrius_forecast::stats::{StatsSummaryModel, SummaryStatistic};
use caladrius_forecast::{DataPoint, Forecaster, UpdateOutcome};
use proptest::prelude::*;

const MINUTE: i64 = 60_000;

/// A traffic-shaped series: seasonal carrier + linear ramp + deterministic
/// pseudo-noise, switched by `profile`.
fn series(n: usize, profile: u8, amp: f64, slope: f64) -> Vec<DataPoint> {
    (0..n)
        .map(|i| {
            let phase = std::f64::consts::TAU * (i % 48) as f64 / 48.0;
            let noise = (((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40) as f64 / 1e6) - 8.0;
            let y = match profile % 3 {
                0 => 1000.0 + amp * phase.sin() + noise, // seasonal
                1 => 1000.0 + slope * i as f64 + noise,  // ramp
                _ => 1000.0 + amp * phase.sin() + slope * i as f64 + noise, // both
            };
            DataPoint::new(i as i64 * MINUTE, y)
        })
        .collect()
}

/// Splits `hist` after `initial` points into appended batches whose sizes
/// follow `schedule` (cycled until the history is exhausted).
fn drive<M: Forecaster>(model: &mut M, hist: &[DataPoint], initial: usize, schedule: &[usize]) {
    model.fit(&hist[..initial]).unwrap();
    let mut at = initial;
    let mut i = 0usize;
    while at < hist.len() {
        let take = schedule[i % schedule.len()].max(1).min(hist.len() - at);
        let outcome = model.update(&hist[at..at + take]).unwrap();
        assert_eq!(outcome, UpdateOutcome::Incremental, "append at {at}");
        at += take;
        i += 1;
    }
}

fn assert_predictions_identical<A: Forecaster, B: Forecaster>(a: &A, b: &B, last_ts: i64) {
    let horizon: Vec<i64> = (1..=10).map(|h| last_ts + h * MINUTE).collect();
    let pa = a.predict(&horizon).unwrap();
    let pb = b.predict(&horizon).unwrap();
    for (x, y) in pa.iter().zip(&pb) {
        assert_eq!(x.yhat.to_bits(), y.yhat.to_bits(), "yhat at {}", x.ts);
        assert_eq!(x.lower.to_bits(), y.lower.to_bits(), "lower at {}", x.ts);
        assert_eq!(x.upper.to_bits(), y.upper.to_bits(), "upper at {}", x.ts);
    }
}

proptest! {
    #[test]
    fn ar_incremental_matches_batch(
        profile in 0u8..3,
        amp in 1.0f64..200.0,
        slope in -2.0f64..2.0,
        n in 100usize..400,
        initial_frac in 0.2f64..0.9,
        schedule in prop::collection::vec(1usize..40, 1..6),
    ) {
        let hist = series(n, profile, amp, slope);
        let initial = ((n as f64 * initial_frac) as usize).max(16);
        let mut incremental = ArModel::new(5, 0.9);
        drive(&mut incremental, &hist, initial, &schedule);
        let mut batch = ArModel::new(5, 0.9);
        batch.fit(&hist).unwrap();
        assert_predictions_identical(&incremental, &batch, hist.last().unwrap().ts);
    }

    #[test]
    fn stats_incremental_matches_batch(
        profile in 0u8..3,
        amp in 1.0f64..200.0,
        slope in -2.0f64..2.0,
        n in 10usize..300,
        initial in 1usize..9,
        schedule in prop::collection::vec(1usize..25, 1..6),
        which in 0u8..3,
    ) {
        let hist = series(n, profile, amp, slope);
        let statistic = match which {
            0 => SummaryStatistic::Mean,
            1 => SummaryStatistic::Median,
            _ => SummaryStatistic::Quantile(0.9),
        };
        let initial = initial.min(n);
        let mut incremental = StatsSummaryModel::new(statistic, 0.8);
        drive(&mut incremental, &hist, initial, &schedule);
        let mut batch = StatsSummaryModel::new(statistic, 0.8);
        batch.fit(&hist).unwrap();
        assert_predictions_identical(&incremental, &batch, hist.last().unwrap().ts);
    }

    #[test]
    fn holt_winters_incremental_matches_batch(
        profile in 0u8..3,
        amp in 1.0f64..200.0,
        slope in -2.0f64..2.0,
        extra in 1usize..150,
        schedule in prop::collection::vec(1usize..30, 1..6),
    ) {
        let m = 48;
        let hist = series(2 * m + extra, profile, amp, slope);
        let config = HoltWintersConfig {
            season_length: m,
            params: Some((0.3, 0.05, 0.3)),
            interval_width: 0.9,
        };
        let mut incremental = HoltWinters::new(config);
        drive(&mut incremental, &hist, 2 * m, &schedule);
        let mut batch = HoltWinters::new(config);
        batch.fit(&hist).unwrap();
        assert_predictions_identical(&incremental, &batch, hist.last().unwrap().ts);
    }
}
