//! Property tests for the forecasting substrate: least-squares
//! correctness on random well-posed systems and model sanity over random
//! series.

use caladrius_forecast::linalg::{linear_fit, ridge_weighted, solve_spd, Matrix};
use caladrius_forecast::prophet::{normal_quantile, Prophet, ProphetConfig};
use caladrius_forecast::stats::StatsSummaryModel;
use caladrius_forecast::trend::TrendConfig;
use caladrius_forecast::{DataPoint, Forecaster};
use proptest::prelude::*;

const MINUTE: i64 = 60_000;

proptest! {
    /// Cholesky solve recovers x from A x = b for random SPD matrices
    /// (built as L Lᵀ + εI from a random lower-triangular L).
    #[test]
    fn spd_solve_recovers_solution(
        entries in prop::collection::vec(-3.0f64..3.0, 6),
        x in prop::collection::vec(-10.0f64..10.0, 3),
    ) {
        // L with positive-ish diagonal.
        let l = Matrix::from_rows(3, 3, vec![
            entries[0].abs() + 0.5, 0.0, 0.0,
            entries[1], entries[2].abs() + 0.5, 0.0,
            entries[3], entries[4], entries[5].abs() + 0.5,
        ]);
        // A = L Lᵀ
        let mut a = Matrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                let mut sum = 0.0;
                for k in 0..3 {
                    sum += l[(i, k)] * l[(j, k)];
                }
                a[(i, j)] = sum;
            }
        }
        let b = a.mul_vec(&x);
        let solved = solve_spd(&a, &b).unwrap();
        for (got, want) in solved.iter().zip(&x) {
            prop_assert!((got - want).abs() < 1e-6 * want.abs().max(1.0));
        }
    }

    /// Unpenalised ridge on an exactly-linear system recovers intercept
    /// and slope for random lines.
    #[test]
    fn ridge_recovers_random_line(a in -100.0f64..100.0, b in -100.0f64..100.0) {
        let xs: Vec<f64> = (0..30).map(f64::from).collect();
        let design = Matrix::from_rows(30, 2, xs.iter().flat_map(|x| [1.0, *x]).collect());
        let y: Vec<f64> = xs.iter().map(|x| a + b * x).collect();
        let beta = ridge_weighted(&design, &y, None, &[0.0, 0.0]).unwrap();
        prop_assert!((beta[0] - a).abs() < 1e-6 * a.abs().max(1.0));
        prop_assert!((beta[1] - b).abs() < 1e-6 * b.abs().max(1.0));
        let (ia, ib) = linear_fit(&xs, &y).unwrap();
        prop_assert!((ia - a).abs() < 1e-6 * a.abs().max(1.0));
        prop_assert!((ib - b).abs() < 1e-6 * b.abs().max(1.0));
    }

    /// The normal quantile is odd-symmetric and monotone.
    #[test]
    fn normal_quantile_properties(p in 0.0005f64..0.9995, q in 0.0005f64..0.9995) {
        let zp = normal_quantile(p);
        prop_assert!((zp + normal_quantile(1.0 - p)).abs() < 1e-7);
        if p < q {
            prop_assert!(zp <= normal_quantile(q));
        }
    }

    /// Prophet on a pure random line extrapolates it (no seasonality).
    #[test]
    fn prophet_extrapolates_random_lines(
        intercept in 10.0f64..1e5,
        slope in -5.0f64..5.0,
    ) {
        let hist: Vec<DataPoint> = (0..150)
            .map(|i| DataPoint::new(i * MINUTE, intercept + slope * i as f64))
            .collect();
        prop_assume!(hist.iter().all(|p| p.y > 0.0));
        let mut m = Prophet::new(ProphetConfig {
            seasonalities: Vec::new(),
            trend: TrendConfig { n_changepoints: 10, ..TrendConfig::default() },
            uncertainty_samples: 0,
            ..ProphetConfig::default()
        });
        m.fit(&hist).unwrap();
        let pred = m.predict(&[200 * MINUTE]).unwrap()[0];
        let expected = intercept + slope * 200.0;
        let tolerance = 0.05 * expected.abs().max(intercept * 0.05).max(1.0);
        prop_assert!(
            (pred.yhat - expected).abs() < tolerance,
            "predicted {} expected {expected}", pred.yhat
        );
    }

    /// Stats-summary forecasts are always inside the observed value range
    /// and intervals are ordered.
    #[test]
    fn stats_summary_stays_in_range(values in prop::collection::vec(-1e9f64..1e9, 1..200)) {
        let hist: Vec<DataPoint> = values
            .iter()
            .enumerate()
            .map(|(i, v)| DataPoint::new(i as i64 * MINUTE, *v))
            .collect();
        let mut m = StatsSummaryModel::mean();
        m.fit(&hist).unwrap();
        let p = m.predict(&[1_000_000 * MINUTE]).unwrap()[0];
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p.yhat >= lo - 1e-9 && p.yhat <= hi + 1e-9);
        prop_assert!(p.lower <= p.upper);
        prop_assert!(p.lower >= lo - 1e-9 && p.upper <= hi + 1e-9);
    }
}
