//! Horizon capacity planning for stream processing topologies.
//!
//! Caladrius's models (paper §V–§VI) answer one what-if at a time: a
//! single component's parallelism at a single source rate. Capacity
//! planning needs the *joint* configuration of every component over a
//! *forecast horizon*. This crate closes that gap:
//!
//! - [`search`] finds, per forecast window, the minimum-cost joint
//!   parallelism assignment that keeps backpressure risk Low with
//!   configurable CPU headroom, by bottleneck-first greedy ascent plus
//!   per-component binary search over the monotone feasibility boundary.
//! - [`plan`] holds the plan vocabulary: resource limits, the cost
//!   model (instances → cores/RAM → containers), per-window plans,
//!   scale-up/down actions, and the stitched [`plan::PlanTimeline`]
//!   with hysteresis to suppress plan churn.
//! - [`replay`] validates a timeline by replaying every window's plan
//!   in the `heron-sim` discrete-time simulator and reporting
//!   predicted-vs-simulated throughput and backpressure.
//!
//! The planner is deliberately model-agnostic: it drives any
//! [`search::CapacityOracle`], so the same search serves the fitted
//! Caladrius models (in `caladrius-core`) and the cheap analytic
//! oracles used in tests and benchmarks.

pub mod plan;
pub mod replay;
pub mod search;

pub use plan::{
    PlanAction, PlanCost, PlanError, PlanTimeline, PlannerConfig, ResourceLimits, WindowPlan,
    WindowSpec, UNLIMITED_CONTAINERS,
};
pub use replay::{replay_timeline, replay_timeline_with, ReplayConfig, WindowReplay};
pub use search::{
    grid_min_cost, min_satisfying, plan_horizon, plan_horizon_warm, plan_horizon_warm_with,
    plan_horizon_with, plan_window, plan_window_warm, Assessment, CapacityOracle,
};
