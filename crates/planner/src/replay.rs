//! Plan validation by simulation replay: every window's proposed
//! configuration is deployed in the `heron-sim` discrete-time
//! simulator at the window's peak forecast rate, and the observed
//! throughput and backpressure are reported next to the model's
//! prediction.

use crate::plan::{PlanError, PlanTimeline, WindowPlan};
use caladrius_exec::ExecPool;
use caladrius_tsdb::Aggregation;
use heron_sim::engine::{SimConfig, Simulation};
use heron_sim::metrics::{metric, SimMetrics};
use heron_sim::topology::Topology;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

fn default_macro_step() -> bool {
    true
}

fn default_event_mode() -> bool {
    true
}

/// Replay knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Simulated minutes discarded before measuring each window.
    pub warmup_minutes: u64,
    /// Simulated minutes measured per window.
    pub measure_minutes: u64,
    /// Simulator seed.
    pub seed: u64,
    /// Multiplicative metric noise (0 for deterministic replays).
    pub metric_noise: f64,
    /// Mean per-minute backpressure (ms) above which a window is
    /// flagged as risky.
    pub backpressure_tolerance_ms: f64,
    /// Steady-state macro-stepping in the per-window simulations
    /// (default `true`). Replays run at a constant per-window rate, the
    /// regime macro-stepping is built for; results stay deterministic
    /// for any pool width but are not bit-identical to an exact-tick
    /// run — the replay suite bounds the divergence (sink rate within
    /// 0.1 %, identical backpressure verdicts). Disable for strict
    /// tick-for-tick replays.
    #[serde(default = "default_macro_step")]
    pub macro_step: bool,
    /// Event-driven advancement in the per-window simulations (default
    /// `true`). The window minutes run on the simulator's event
    /// scheduler, advancing relaxed stretches in closed form even where
    /// macro-stepping cannot engage; congested windows fall back to
    /// exact ticks, so backpressure verdicts are unchanged. Per-window
    /// coverage is reported in [`WindowReplay::sim_events`] /
    /// [`WindowReplay::closed_form_ticks`]. Disable for strict
    /// tick-for-tick replays.
    #[serde(default = "default_event_mode")]
    pub event_mode: bool,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            warmup_minutes: 20,
            measure_minutes: 10,
            seed: 0xCA1AD,
            metric_noise: 0.0,
            backpressure_tolerance_ms: 1.0,
            macro_step: default_macro_step(),
            event_mode: default_event_mode(),
        }
    }
}

/// Simulated outcome of one window's plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowReplay {
    /// Index into the timeline's windows.
    pub window: usize,
    /// Source rate the replay offered, tuples/min (the window's peak
    /// forecast).
    pub offered_rate: f64,
    /// Mean sink throughput observed over the measure window,
    /// tuples/min.
    pub sink_rate: f64,
    /// Mean per-minute backpressure time summed over components, ms.
    pub backpressure_ms: f64,
    /// Whether the window stayed under the backpressure tolerance.
    pub low_risk: bool,
    /// Simulator ticks this window's replay did not execute exactly —
    /// macro-stepped or advanced in closed form (0 when both
    /// [`ReplayConfig::macro_step`] and [`ReplayConfig::event_mode`] are
    /// off, or the window never settled).
    #[serde(default)]
    pub ticks_skipped: u64,
    /// Scheduler events this window's replay processed in event mode.
    #[serde(default)]
    pub sim_events: u64,
    /// Ticks this window's replay advanced in closed form between
    /// scheduler events — the event-mode coverage of
    /// [`WindowReplay::ticks_skipped`].
    #[serde(default)]
    pub closed_form_ticks: u64,
}

/// Replays every window of `timeline` on `base` (parallelism and spout
/// rate swapped per window) and reports the simulated outcomes.
///
/// Windows simulate independently on the process-wide `"replay"` exec
/// pool; use [`replay_timeline_with`] to supply an explicit pool. Each
/// window's simulator is seeded `config.seed ^ window`, so reports are
/// bit-identical for any pool width. Simulations are pooled and rewound
/// via [`Simulation::reset_with`] between windows, so packing/routing
/// tables are rebuilt only when a window changes parallelism — the
/// `reset_with` contract makes a reused simulation bit-identical to a
/// fresh one, keeping the pool-width determinism guarantee intact.
pub fn replay_timeline(
    base: &Topology,
    timeline: &PlanTimeline,
    config: &ReplayConfig,
) -> Result<Vec<WindowReplay>, PlanError> {
    replay_timeline_with(
        base,
        timeline,
        config,
        caladrius_exec::shared_pool("replay"),
    )
}

/// [`replay_timeline`] on an explicit exec pool.
pub fn replay_timeline_with(
    base: &Topology,
    timeline: &PlanTimeline,
    config: &ReplayConfig,
    pool: &ExecPool,
) -> Result<Vec<WindowReplay>, PlanError> {
    if config.measure_minutes == 0 {
        return Err(PlanError::InvalidConfig(
            "measure_minutes must be positive".into(),
        ));
    }
    // Idle simulations, reused across windows (at most one per worker is
    // ever live, so the pool stays small). Each carries its own metrics
    // store, truncated between windows, so series registration and the
    // simulation's cached sink handles survive across windows too.
    let idle: Mutex<Vec<(Simulation, SimMetrics)>> = Mutex::new(Vec::new());
    pool.parallel_try_map(&timeline.windows, |_, plan| {
        replay_window(base, plan, config, &idle)
    })
}

/// Deploys and simulates one window's plan on a pooled simulation.
fn replay_window(
    base: &Topology,
    plan: &WindowPlan,
    config: &ReplayConfig,
    idle: &Mutex<Vec<(Simulation, SimMetrics)>>,
) -> Result<WindowReplay, PlanError> {
    let updates: Vec<(&str, u32)> = plan
        .parallelisms
        .iter()
        .map(|(n, p)| (n.as_str(), *p))
        .collect();
    let pooled = idle.lock().expect("replay sim pool poisoned").pop();
    let (mut sim, metrics) = match pooled {
        Some(pair) => pair,
        None => {
            let sim = Simulation::new(
                base.clone(),
                SimConfig {
                    metric_noise: config.metric_noise,
                    macro_step: config.macro_step,
                    event_mode: config.event_mode,
                    ..SimConfig::default()
                },
            )
            .map_err(|e| PlanError::Oracle(format!("replay simulation failed: {e}")))?;
            let metrics = SimMetrics::new(sim.topology().name.clone());
            (sim, metrics)
        }
    };
    // Wipe the previous window's samples; registered series (and the
    // simulation's cached sink handles) survive the truncation, so the
    // steady-state window pays no catalog work at all.
    metrics
        .db()
        .truncate_before(i64::MAX)
        .map_err(|e| PlanError::Oracle(format!("replay store reset failed: {e}")))?;
    sim.set_seed(config.seed ^ plan.window as u64);
    sim.reset_with(&updates, plan.peak_rate)
        .map_err(|e| PlanError::Oracle(format!("replay deploy failed: {e}")))?;
    let skipped_before = sim.ticks_skipped();
    let events_before = sim.sim_events();
    let closed_form_before = sim.ticks_closed_form();
    sim.run_minutes_into(config.warmup_minutes + config.measure_minutes, &metrics);
    let ticks_skipped = sim.ticks_skipped() - skipped_before;
    let sim_events = sim.sim_events() - events_before;
    let closed_form_ticks = sim.ticks_closed_form() - closed_form_before;
    let observe_from = (config.warmup_minutes * 60_000) as i64;
    let mean = |name: &str, component: &str| -> f64 {
        let series = metrics.component_sum(name, Some(component), observe_from, i64::MAX);
        Aggregation::Mean.apply(series.iter().map(|s| s.value))
    };
    let mut sink_rate = 0.0;
    let mut backpressure_ms = 0.0;
    let topology = sim.topology();
    for (idx, component) in topology.components.iter().enumerate() {
        let name = component.name.as_str();
        backpressure_ms += mean(metric::BACKPRESSURE_TIME, name);
        if topology.out_edges(idx).next().is_none() {
            sink_rate += mean(metric::EXECUTE_COUNT, name);
        }
    }
    idle.lock()
        .expect("replay sim pool poisoned")
        .push((sim, metrics));
    Ok(WindowReplay {
        window: plan.window,
        offered_rate: plan.peak_rate,
        sink_rate,
        backpressure_ms,
        low_risk: backpressure_ms <= config.backpressure_tolerance_ms,
        ticks_skipped,
        sim_events,
        closed_form_ticks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanCost, PlannerConfig, WindowPlan};
    use caladrius_workload::wordcount::{wordcount_topology, WordCountParallelism};

    fn window_plan(window: usize, rate: f64, ps: &[(&str, u32)]) -> WindowPlan {
        let parallelisms: Vec<(String, u32)> =
            ps.iter().map(|(n, p)| (n.to_string(), *p)).collect();
        let cost = PlanCost::of(&parallelisms, &PlannerConfig::default().limits);
        WindowPlan {
            window,
            start_ts: window as i64 * 900_000,
            end_ts: (window as i64 + 1) * 900_000,
            peak_rate: rate,
            planned_rate: rate,
            parallelisms,
            cost,
            saturation_rate: f64::INFINITY,
            actions: Vec::new(),
        }
    }

    fn timeline(windows: Vec<WindowPlan>) -> PlanTimeline {
        let peak = windows[0].parallelisms.clone();
        let peak_cost = windows[0].cost;
        PlanTimeline {
            windows,
            peak_parallelisms: peak,
            peak_cost,
            oracle_evals: 0,
        }
    }

    #[test]
    fn healthy_plan_replays_low_risk_and_starved_plan_does_not() {
        let base = wordcount_topology(
            WordCountParallelism {
                spout: 8,
                splitter: 2,
                counter: 3,
            },
            10.0e6,
        );
        let cfg = ReplayConfig {
            warmup_minutes: 15,
            measure_minutes: 5,
            ..ReplayConfig::default()
        };
        // Generous capacity at 20 M/min vs a single splitter at
        // 60 M/min (a splitter instance saturates near 11 M words/min).
        let healthy = timeline(vec![window_plan(
            0,
            20.0e6,
            &[("spout", 8), ("splitter", 4), ("counter", 4)],
        )]);
        let starved = timeline(vec![window_plan(
            0,
            60.0e6,
            &[("spout", 8), ("splitter", 1), ("counter", 3)],
        )]);
        let ok = replay_timeline(&base, &healthy, &cfg).unwrap();
        assert_eq!(ok.len(), 1);
        assert!(ok[0].low_risk, "healthy plan backpressured: {:?}", ok[0]);
        assert!(ok[0].sink_rate > 0.0);
        let bad = replay_timeline(&base, &starved, &cfg).unwrap();
        assert!(
            !bad[0].low_risk,
            "undersized plan must backpressure: {:?}",
            bad[0]
        );
    }
}
