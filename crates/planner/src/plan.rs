//! Plan vocabulary: resource limits, the cost model, per-window plans
//! and the stitched horizon timeline.

use serde::{Deserialize, Serialize};

/// Errors from planning.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The planner was configured inconsistently (bad headroom, zero
    /// windows, impossible limits, ...).
    InvalidConfig(String),
    /// The capacity oracle failed to assess a configuration.
    Oracle(String),
    /// No configuration within the limits keeps the window feasible.
    Infeasible {
        /// Index of the offending forecast window.
        window: usize,
        /// Rate (after headroom) that could not be sustained.
        rate: f64,
        /// Component pinned at its maximum when the search gave up, if
        /// a single one could be blamed.
        component: Option<String>,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::InvalidConfig(msg) => write!(f, "invalid planner config: {msg}"),
            PlanError::Oracle(msg) => write!(f, "capacity oracle error: {msg}"),
            PlanError::Infeasible {
                window,
                rate,
                component,
            } => {
                write!(f, "window {window} infeasible at {rate:.3e} tuples/min")?;
                if let Some(c) = component {
                    write!(f, " ({c} pinned at its maximum parallelism)")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Per-instance resource requests and cluster packing limits used by
/// the cost model and the CPU-headroom constraint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceLimits {
    /// Cores requested per instance (the CPU-headroom budget each
    /// instance's predicted load must fit under).
    pub cores_per_instance: f64,
    /// RAM requested per instance, MB.
    pub ram_mb_per_instance: u64,
    /// Cores per container (packing denominator for the cost model).
    pub container_cpu: f64,
    /// RAM per container, MB.
    pub container_ram_mb: u64,
    /// Upper bound on any single component's parallelism.
    pub max_parallelism: u32,
    /// Container budget the plan must fit under: every window's
    /// [`PlanCost::containers`] must be ≤ this. [`UNLIMITED_CONTAINERS`]
    /// (the default) disables the constraint; the fleet tier lowers it
    /// to each topology's granted share of the cluster budget.
    pub max_containers: u32,
}

/// Sentinel for [`ResourceLimits::max_containers`]: no container budget.
pub const UNLIMITED_CONTAINERS: u32 = u32::MAX;

impl Default for ResourceLimits {
    fn default() -> Self {
        // Instance defaults mirror `heron_sim::topology::Resources`;
        // containers default to 4-core / 8 GB boxes.
        Self {
            cores_per_instance: 1.0,
            ram_mb_per_instance: 2048,
            container_cpu: 4.0,
            container_ram_mb: 8192,
            max_parallelism: 64,
            max_containers: UNLIMITED_CONTAINERS,
        }
    }
}

impl ResourceLimits {
    /// Validates the limits.
    pub fn validate(&self) -> Result<(), PlanError> {
        if !(self.cores_per_instance > 0.0 && self.cores_per_instance.is_finite()) {
            return Err(PlanError::InvalidConfig(
                "cores_per_instance must be positive".into(),
            ));
        }
        if self.ram_mb_per_instance == 0 || self.container_ram_mb == 0 {
            return Err(PlanError::InvalidConfig(
                "RAM requests must be positive".into(),
            ));
        }
        if !(self.container_cpu >= self.cores_per_instance && self.container_cpu.is_finite()) {
            return Err(PlanError::InvalidConfig(
                "container_cpu must fit at least one instance".into(),
            ));
        }
        if self.container_ram_mb < self.ram_mb_per_instance {
            return Err(PlanError::InvalidConfig(
                "container_ram_mb must fit at least one instance".into(),
            ));
        }
        if self.max_parallelism == 0 {
            return Err(PlanError::InvalidConfig(
                "max_parallelism must be at least 1".into(),
            ));
        }
        if self.max_containers == 0 {
            return Err(PlanError::InvalidConfig(
                "max_containers must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Planner tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Rate multiplier applied to each window's peak forecast before
    /// feasibility is assessed (1.1 = plan for 10 % above the peak).
    pub headroom: f64,
    /// Fraction of `cores_per_instance` a component's predicted
    /// per-instance CPU load may use (0.85 = keep 15 % CPU headroom).
    pub cpu_utilization_cap: f64,
    /// Forecast-window length, minutes.
    pub window_minutes: u64,
    /// Hysteresis lookahead: each window adopts the componentwise
    /// maximum of the next `hysteresis_windows` raw plans (including
    /// its own), so short dips do not trigger scale-down churn. `1`
    /// disables smoothing.
    pub hysteresis_windows: usize,
    /// Resource requests and packing limits.
    pub limits: ResourceLimits,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            headroom: 1.1,
            cpu_utilization_cap: 0.85,
            window_minutes: 15,
            hysteresis_windows: 2,
            limits: ResourceLimits::default(),
        }
    }
}

impl PlannerConfig {
    /// Validates the config.
    pub fn validate(&self) -> Result<(), PlanError> {
        if !(self.headroom >= 1.0 && self.headroom.is_finite()) {
            return Err(PlanError::InvalidConfig("headroom must be >= 1.0".into()));
        }
        if !(self.cpu_utilization_cap > 0.0 && self.cpu_utilization_cap <= 1.0) {
            return Err(PlanError::InvalidConfig(
                "cpu_utilization_cap must be in (0, 1]".into(),
            ));
        }
        if self.window_minutes == 0 {
            return Err(PlanError::InvalidConfig(
                "window_minutes must be positive".into(),
            ));
        }
        if self.hysteresis_windows == 0 {
            return Err(PlanError::InvalidConfig(
                "hysteresis_windows must be at least 1".into(),
            ));
        }
        self.limits.validate()
    }
}

/// One forecast window the planner must cover.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowSpec {
    /// Window start, epoch milliseconds.
    pub start_ts: i64,
    /// Window end (exclusive), epoch milliseconds.
    pub end_ts: i64,
    /// Peak forecast source rate over the window, tuples/min.
    pub peak_rate: f64,
}

/// Cost of a parallelism assignment under [`ResourceLimits`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanCost {
    /// Total instances across all components.
    pub total_instances: u32,
    /// Total requested cores.
    pub total_cores: f64,
    /// Total requested RAM, MB.
    pub total_ram_mb: u64,
    /// Containers needed: `max(ceil(cores/container_cpu),
    /// ceil(ram/container_ram))`.
    pub containers: u32,
}

impl PlanCost {
    /// Costs a parallelism assignment.
    pub fn of(parallelisms: &[(String, u32)], limits: &ResourceLimits) -> PlanCost {
        let total_instances: u32 = parallelisms.iter().map(|(_, p)| *p).sum();
        let total_cores = f64::from(total_instances) * limits.cores_per_instance;
        let total_ram_mb = u64::from(total_instances).saturating_mul(limits.ram_mb_per_instance);
        let by_cpu = (total_cores / limits.container_cpu).ceil() as u32;
        let by_ram = total_ram_mb.div_ceil(limits.container_ram_mb) as u32;
        PlanCost {
            total_instances,
            total_cores,
            total_ram_mb,
            containers: by_cpu.max(by_ram),
        }
    }
}

/// Scale action between consecutive windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanAction {
    /// Raise a component's parallelism.
    ScaleUp {
        /// Component name.
        component: String,
        /// Parallelism before the action.
        from: u32,
        /// Parallelism after the action.
        to: u32,
    },
    /// Lower a component's parallelism.
    ScaleDown {
        /// Component name.
        component: String,
        /// Parallelism before the action.
        from: u32,
        /// Parallelism after the action.
        to: u32,
    },
}

/// Diff of two parallelism assignments as scale actions. Assignments
/// must list the same components in the same order.
pub fn diff_actions(before: &[(String, u32)], after: &[(String, u32)]) -> Vec<PlanAction> {
    let mut actions = Vec::new();
    for (name, to) in after {
        let from = before
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| *p)
            .unwrap_or(0);
        if *to > from {
            actions.push(PlanAction::ScaleUp {
                component: name.clone(),
                from,
                to: *to,
            });
        } else if *to < from {
            actions.push(PlanAction::ScaleDown {
                component: name.clone(),
                from,
                to: *to,
            });
        }
    }
    actions
}

/// The plan for one forecast window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowPlan {
    /// Index into the horizon's windows.
    pub window: usize,
    /// Window start, epoch milliseconds.
    pub start_ts: i64,
    /// Window end (exclusive), epoch milliseconds.
    pub end_ts: i64,
    /// Peak forecast rate the plan covers, tuples/min (before
    /// headroom).
    pub peak_rate: f64,
    /// Rate the plan was proven feasible at (peak × headroom).
    pub planned_rate: f64,
    /// Joint parallelism assignment, one entry per component.
    pub parallelisms: Vec<(String, u32)>,
    /// Resource cost of the assignment.
    pub cost: PlanCost,
    /// Saturation source rate of the assignment (tuples/min) as
    /// reported by the oracle, if finite.
    pub saturation_rate: f64,
    /// Actions relative to the previous window (or to the initial
    /// deployment for window 0).
    pub actions: Vec<PlanAction>,
}

/// The stitched horizon plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanTimeline {
    /// Per-window plans after hysteresis smoothing, in horizon order.
    pub windows: Vec<WindowPlan>,
    /// Componentwise maximum assignment across the horizon — the
    /// static configuration that covers every window.
    pub peak_parallelisms: Vec<(String, u32)>,
    /// Cost of [`PlanTimeline::peak_parallelisms`].
    pub peak_cost: PlanCost,
    /// Oracle evaluations the search spent across the horizon.
    pub oracle_evals: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asg(ps: &[(&str, u32)]) -> Vec<(String, u32)> {
        ps.iter().map(|(n, p)| (n.to_string(), *p)).collect()
    }

    #[test]
    fn cost_model_counts_containers_by_binding_resource() {
        let limits = ResourceLimits {
            cores_per_instance: 1.0,
            ram_mb_per_instance: 2048,
            container_cpu: 4.0,
            container_ram_mb: 8192,
            max_parallelism: 64,
            max_containers: UNLIMITED_CONTAINERS,
        };
        let cost = PlanCost::of(&asg(&[("a", 3), ("b", 5)]), &limits);
        assert_eq!(cost.total_instances, 8);
        assert!((cost.total_cores - 8.0).abs() < 1e-12);
        assert_eq!(cost.total_ram_mb, 16384);
        assert_eq!(cost.containers, 2);

        // RAM-bound: same instances, half the per-container RAM.
        let tight_ram = ResourceLimits {
            container_ram_mb: 4096,
            ..limits
        };
        assert_eq!(
            PlanCost::of(&asg(&[("a", 3), ("b", 5)]), &tight_ram).containers,
            4
        );
    }

    #[test]
    fn diff_actions_reports_both_directions() {
        let actions = diff_actions(&asg(&[("a", 2), ("b", 4)]), &asg(&[("a", 3), ("b", 1)]));
        assert_eq!(
            actions,
            vec![
                PlanAction::ScaleUp {
                    component: "a".into(),
                    from: 2,
                    to: 3
                },
                PlanAction::ScaleDown {
                    component: "b".into(),
                    from: 4,
                    to: 1
                },
            ]
        );
        assert!(diff_actions(&asg(&[("a", 2)]), &asg(&[("a", 2)])).is_empty());
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(PlannerConfig::default().validate().is_ok());
        assert!(PlannerConfig {
            headroom: 0.9,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(PlannerConfig {
            cpu_utilization_cap: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(PlannerConfig {
            hysteresis_windows: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        let mut limits = ResourceLimits::default();
        limits.container_cpu = 0.5;
        assert!(limits.validate().is_err());
        let mut limits = ResourceLimits::default();
        limits.max_containers = 0;
        assert!(limits.validate().is_err());
    }
}
