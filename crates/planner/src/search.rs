//! Joint parallelism search: bottleneck-first greedy ascent plus
//! per-component binary search over the monotone feasibility boundary.
//!
//! The search exploits two monotonicity facts of the Caladrius models
//! (and of any sane capacity model):
//!
//! 1. Raising a component's parallelism weakly raises the topology's
//!    saturation source rate, so "configuration sustains rate R" is a
//!    monotone predicate in every coordinate — binary search applies.
//! 2. A component's total input rate is fixed by the source rate and
//!    the DAG (paper Eq. 12), independent of parallelism, so its
//!    *per-instance* CPU load falls monotonically as its parallelism
//!    grows and is unaffected by other components' parallelism.
//!
//! Given those, the per-window search is: ascend bottleneck-first until
//! feasible, raise components whose per-instance CPU exceeds the
//! headroom budget, then trim every component down to its individual
//! minimum. Coordinate monotonicity makes a single in-order trim pass
//! sufficient for per-component minimality: lowering a later component
//! never re-enables a lower value for an earlier one.

use crate::plan::{
    diff_actions, PlanCost, PlanError, PlanTimeline, PlannerConfig, WindowPlan, WindowSpec,
};
use caladrius_exec::ExecPool;
use std::collections::HashMap;

/// The oracle's verdict on one (configuration, rate) probe.
#[derive(Debug, Clone, PartialEq)]
pub struct Assessment {
    /// Whether the configuration sustains the probed rate with
    /// backpressure risk Low.
    pub feasible: bool,
    /// The limiting component when infeasible (required then), or the
    /// closest-to-saturation component when feasible (optional).
    pub bottleneck: Option<String>,
    /// Saturation source rate of the configuration, tuples/min.
    pub saturation_rate: f64,
    /// Predicted per-instance CPU load (cores) of each component at
    /// the probed rate.
    pub cpu_per_instance: Vec<(String, f64)>,
}

/// A capacity model the planner can drive. Implementations must honour
/// the monotonicity facts in the module docs.
///
/// Oracles must be [`Sync`]: [`plan_horizon`] probes them from several
/// worker threads at once, and `assess` must be a pure function of its
/// arguments (same inputs → same verdict) for the planner's
/// determinism contract to hold. Interior caching is fine as long as
/// it is transparent (see `CachedOracle` in `caladrius-core`).
pub trait CapacityOracle: Sync {
    /// Names of the components whose parallelism the planner may set,
    /// in a stable order.
    fn components(&self) -> Vec<String>;

    /// Assesses a joint parallelism assignment at a source rate.
    fn assess(&self, parallelisms: &[(String, u32)], rate: f64) -> Result<Assessment, PlanError>;
}

/// The minimum-cost assignment for one window, with search telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSolution {
    /// Per-component minimal parallelism assignment.
    pub parallelisms: Vec<(String, u32)>,
    /// Saturation rate of the assignment.
    pub saturation_rate: f64,
    /// Oracle evaluations spent.
    pub evals: u64,
}

/// Binary search for the smallest `p` in `[lo, hi]` satisfying a
/// monotone predicate (false…false, true…true). Returns `None` when
/// even `hi` fails. The predicate is probed O(log(hi−lo)) times.
pub fn min_satisfying(
    lo: u32,
    hi: u32,
    mut pred: impl FnMut(u32) -> Result<bool, PlanError>,
) -> Result<Option<u32>, PlanError> {
    if lo > hi {
        return Ok(None);
    }
    if !pred(hi)? {
        return Ok(None);
    }
    let (mut lo, mut hi) = (lo, hi);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid)? {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(Some(lo))
}

fn get(ps: &[(String, u32)], name: &str) -> u32 {
    ps.iter()
        .find(|(n, _)| n == name)
        .map(|(_, p)| *p)
        .unwrap_or(0)
}

fn set(ps: &mut [(String, u32)], name: &str, p: u32) {
    if let Some(entry) = ps.iter_mut().find(|(n, _)| n == name) {
        entry.1 = p;
    }
}

/// Feasibility + CPU-headroom acceptance of an assessment.
fn accepts(a: &Assessment, cpu_budget: f64) -> bool {
    a.feasible
        && a.cpu_per_instance
            .iter()
            .all(|(_, cpu)| *cpu <= cpu_budget + 1e-9)
}

/// Finds the per-component-minimal assignment sustaining `rate` within
/// the config's CPU headroom. `rate` is the already-headroomed target.
pub fn plan_window(
    oracle: &dyn CapacityOracle,
    rate: f64,
    config: &PlannerConfig,
) -> Result<WindowSolution, PlanError> {
    solve_window(oracle, rate, config, None)
}

/// [`plan_window`] started from a previous solution instead of from
/// all-1s: the warm vector seeds the joint assignment (missing
/// components start at 1, values clamp into `[1, max_parallelism]`),
/// the bottleneck-first ascent and CPU passes repair any shortfall, and
/// a decrement-certificate descent shrinks components the new rate no
/// longer needs.
///
/// For oracles whose acceptance is *separable* — each component's
/// feasibility and CPU verdicts depend only on its own parallelism at
/// the probed rate, which holds for the Caladrius models (module docs:
/// input rates are fixed by the DAG, Eq. 12) — the accepted set is a
/// product of per-component up-sets, the componentwise-minimal accepted
/// point is unique, and this returns exactly [`plan_window`]'s
/// assignment. Only the `evals` telemetry differs: a warm vector equal
/// to the answer certifies itself in `O(components)` probes instead of
/// the cold search's `O(components · log max_parallelism)`.
pub fn plan_window_warm(
    oracle: &dyn CapacityOracle,
    rate: f64,
    config: &PlannerConfig,
    warm: &[(String, u32)],
) -> Result<WindowSolution, PlanError> {
    solve_window(oracle, rate, config, Some(warm))
}

fn solve_window(
    oracle: &dyn CapacityOracle,
    rate: f64,
    config: &PlannerConfig,
    warm: Option<&[(String, u32)]>,
) -> Result<WindowSolution, PlanError> {
    config.validate()?;
    if !(rate.is_finite() && rate >= 0.0) {
        return Err(PlanError::InvalidConfig(format!(
            "window rate must be non-negative, got {rate}"
        )));
    }
    let comps = oracle.components();
    if comps.is_empty() {
        return Err(PlanError::InvalidConfig(
            "oracle lists no scalable components".into(),
        ));
    }
    let max_p = config.limits.max_parallelism;
    let cpu_budget = config.limits.cores_per_instance * config.cpu_utilization_cap;
    let mut ps: Vec<(String, u32)> = match warm {
        None => comps.iter().map(|c| (c.clone(), 1)).collect(),
        Some(w) => comps
            .iter()
            .map(|c| (c.clone(), get(w, c).clamp(1, max_p)))
            .collect(),
    };
    let mut evals = 0u64;

    let infeasible = |component: Option<String>| PlanError::Infeasible {
        window: 0,
        rate,
        component,
    };

    // Phase 1 — bottleneck-first ascent to throughput feasibility.
    // Every iteration strictly raises the bottleneck's parallelism, so
    // the loop runs at most components × max_parallelism times.
    loop {
        let a = oracle.assess(&ps, rate)?;
        evals += 1;
        if a.feasible {
            break;
        }
        let Some(bottleneck) = a.bottleneck.clone() else {
            return Err(PlanError::Oracle(
                "infeasible assessment reported no bottleneck".into(),
            ));
        };
        let cur = get(&ps, &bottleneck);
        if cur == 0 {
            return Err(PlanError::Oracle(format!(
                "bottleneck {bottleneck:?} is not a planned component"
            )));
        }
        // Smallest raise that makes the topology feasible or moves the
        // bottleneck elsewhere — both monotone in this coordinate.
        let found = min_satisfying(cur + 1, max_p, |p| {
            let mut trial = ps.clone();
            set(&mut trial, &bottleneck, p);
            let a = oracle.assess(&trial, rate)?;
            evals += 1;
            Ok(a.feasible || a.bottleneck.as_deref() != Some(bottleneck.as_str()))
        })?;
        match found {
            Some(p) => set(&mut ps, &bottleneck, p),
            None => return Err(infeasible(Some(bottleneck))),
        }
    }

    // Phase 2 — CPU headroom: raise any component whose per-instance
    // load exceeds the budget. Per-instance CPU depends only on the
    // component's own parallelism, so each fix is independent; raising
    // parallelism never hurts feasibility.
    loop {
        let a = oracle.assess(&ps, rate)?;
        evals += 1;
        let Some((hot, _)) = a
            .cpu_per_instance
            .iter()
            .filter(|(_, cpu)| *cpu > cpu_budget + 1e-9)
            .max_by(|x, y| x.1.partial_cmp(&y.1).expect("finite cpu"))
            .cloned()
        else {
            break;
        };
        let cur = get(&ps, &hot);
        if cur == 0 {
            return Err(PlanError::Oracle(format!(
                "hot component {hot:?} is not a planned component"
            )));
        }
        let found = min_satisfying(cur + 1, max_p, |p| {
            let mut trial = ps.clone();
            set(&mut trial, &hot, p);
            let a = oracle.assess(&trial, rate)?;
            evals += 1;
            Ok(get_cpu(&a, &hot) <= cpu_budget + 1e-9)
        })?;
        match found {
            Some(p) => set(&mut ps, &hot, p),
            None => return Err(infeasible(Some(hot))),
        }
    }

    // Phase 3 — trim every component to its individual minimum. A
    // single in-order pass suffices (module docs). The cold pass binary
    // searches `[1, cur]` outright; the warm pass first probes the
    // decrement certificate `cur - 1` — a warm vector that is already
    // the answer proves each component minimal in one probe instead of
    // a log-width search, which is where warm replans win.
    for comp in &comps {
        let cur = get(&ps, comp);
        if cur <= 1 {
            continue;
        }
        if warm.is_some() {
            let mut trial = ps.clone();
            set(&mut trial, comp, cur - 1);
            let a = oracle.assess(&trial, rate)?;
            evals += 1;
            if !accepts(&a, cpu_budget) {
                continue;
            }
        }
        let found = min_satisfying(1, cur, |p| {
            let mut trial = ps.clone();
            set(&mut trial, comp, p);
            let a = oracle.assess(&trial, rate)?;
            evals += 1;
            Ok(accepts(&a, cpu_budget))
        })?;
        // `cur` itself is accepted, so the search cannot come back
        // empty.
        set(&mut ps, comp, found.unwrap_or(cur));
    }

    let a = oracle.assess(&ps, rate)?;
    evals += 1;
    debug_assert!(accepts(&a, cpu_budget));

    // Container budget: the trimmed assignment is the search's minimum,
    // so a plan that still overflows `max_containers` here has no room
    // left to shrink — the window cannot be served within the budget.
    if PlanCost::of(&ps, &config.limits).containers > config.limits.max_containers {
        return Err(infeasible(None));
    }
    Ok(WindowSolution {
        parallelisms: ps,
        saturation_rate: a.saturation_rate,
        evals,
    })
}

fn get_cpu(a: &Assessment, name: &str) -> f64 {
    a.cpu_per_instance
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, c)| *c)
        .unwrap_or(0.0)
}

/// Outcome of [`grid_min_cost`]: the cheapest acceptable assignment
/// (`None` when the grid holds no feasible point) and the number of
/// oracle evaluations spent.
pub type GridOutcome = (Option<Vec<(String, u32)>>, u64);

/// Exhaustive reference search: scans the full joint grid
/// `[1, max_per_component]^k` and returns the feasible assignment with
/// the fewest total instances (`None` when the grid holds no feasible
/// point) plus the number of oracle evaluations spent. Exponential in
/// the component count — benchmark/cross-check use only.
pub fn grid_min_cost(
    oracle: &dyn CapacityOracle,
    rate: f64,
    config: &PlannerConfig,
    max_per_component: u32,
) -> Result<GridOutcome, PlanError> {
    config.validate()?;
    let comps = oracle.components();
    let cpu_budget = config.limits.cores_per_instance * config.cpu_utilization_cap;
    let mut odometer: Vec<u32> = vec![1; comps.len()];
    let mut best: Option<(u32, Vec<(String, u32)>)> = None;
    let mut evals = 0u64;
    loop {
        let ps: Vec<(String, u32)> = comps
            .iter()
            .cloned()
            .zip(odometer.iter().copied())
            .collect();
        let total: u32 = odometer.iter().sum();
        if best.as_ref().is_none_or(|(b, _)| total < *b) {
            let a = oracle.assess(&ps, rate)?;
            evals += 1;
            if accepts(&a, cpu_budget) {
                best = Some((total, ps));
            }
        }
        // Advance the odometer.
        let mut i = 0;
        loop {
            if i == odometer.len() {
                return Ok((best.map(|(_, ps)| ps), evals));
            }
            if odometer[i] < max_per_component {
                odometer[i] += 1;
                break;
            }
            odometer[i] = 1;
            i += 1;
        }
    }
}

/// Componentwise maximum of two assignments (same components, any
/// order).
fn componentwise_max(a: &[(String, u32)], b: &[(String, u32)]) -> Vec<(String, u32)> {
    a.iter()
        .map(|(n, p)| (n.clone(), (*p).max(get(b, n))))
        .collect()
}

/// Plans the whole horizon: per-window minimal assignments, hysteresis
/// smoothing, scale actions, and the horizon-peak configuration.
///
/// `initial` is the currently deployed assignment actions are diffed
/// against for window 0 (pass the topology's current parallelisms, or
/// an empty slice to treat everything as newly provisioned).
///
/// Window searches run on the process-wide `"planner"` exec pool; use
/// [`plan_horizon_with`] to supply an explicit pool. Both produce
/// bit-identical timelines for any pool width.
pub fn plan_horizon(
    oracle: &dyn CapacityOracle,
    initial: &[(String, u32)],
    windows: &[WindowSpec],
    config: &PlannerConfig,
) -> Result<PlanTimeline, PlanError> {
    plan_horizon_with(
        oracle,
        initial,
        windows,
        config,
        caladrius_exec::shared_pool("planner"),
    )
}

/// [`plan_horizon`] on an explicit exec pool.
///
/// Determinism contract: the returned timeline — parallelisms, costs,
/// actions and the `oracle_evals` telemetry — is a pure function of
/// the inputs, independent of the pool's width or scheduling. Windows
/// sharing a planned rate are solved once; `oracle_evals` counts the
/// distinct probes the horizon *needs*, so a repeated rate or a
/// smoothed plan already assessed costs zero extra. On an infeasible
/// horizon the error names the earliest infeasible window, exactly as
/// a sequential left-to-right scan would.
pub fn plan_horizon_with(
    oracle: &dyn CapacityOracle,
    initial: &[(String, u32)],
    windows: &[WindowSpec],
    config: &PlannerConfig,
    pool: &ExecPool,
) -> Result<PlanTimeline, PlanError> {
    plan_horizon_warm_with(oracle, initial, windows, config, pool, None)
}

/// [`plan_horizon`] warm-started from a previous timeline (the shared
/// `"planner"` pool variant of [`plan_horizon_warm_with`]).
pub fn plan_horizon_warm(
    oracle: &dyn CapacityOracle,
    initial: &[(String, u32)],
    windows: &[WindowSpec],
    config: &PlannerConfig,
    warm: Option<&PlanTimeline>,
) -> Result<PlanTimeline, PlanError> {
    plan_horizon_warm_with(
        oracle,
        initial,
        windows,
        config,
        caladrius_exec::shared_pool("planner"),
        warm,
    )
}

/// [`plan_horizon_with`], seeding each window's search from a previous
/// plan timeline: window `i`'s search starts at `warm`'s window-`i`
/// assignment (clamped to the last warm window when the horizon grew).
/// With `None` this *is* the cold search.
///
/// For separable oracles (see [`plan_window_warm`]) the warm and cold
/// searches land on identical per-window assignments, so the returned
/// timeline matches the cold one in everything but the `oracle_evals`
/// telemetry — the warm run certifies unchanged windows in
/// `O(components)` probes each. The determinism contract is unchanged:
/// the timeline is a pure function of the inputs (now including
/// `warm`), whatever the pool width.
pub fn plan_horizon_warm_with(
    oracle: &dyn CapacityOracle,
    initial: &[(String, u32)],
    windows: &[WindowSpec],
    config: &PlannerConfig,
    pool: &ExecPool,
    warm: Option<&PlanTimeline>,
) -> Result<PlanTimeline, PlanError> {
    config.validate()?;
    if windows.is_empty() {
        return Err(PlanError::InvalidConfig(
            "horizon must contain at least one window".into(),
        ));
    }
    // Windows sharing a planned rate (common under diurnal forecasts)
    // need a single search. Unique rates are kept in first-occurrence
    // order, so `parallel_try_map`'s lowest-index error is the error of
    // the earliest infeasible window: a rate that fails anywhere fails
    // at its first occurrence too.
    let mut unique: Vec<(f64, usize)> = Vec::new(); // (rate, first window)
    let mut unique_of_bits: HashMap<u64, usize> = HashMap::new();
    let mut rate_idx: Vec<usize> = Vec::with_capacity(windows.len());
    for (i, w) in windows.iter().enumerate() {
        let rate = w.peak_rate * config.headroom;
        let idx = *unique_of_bits.entry(rate.to_bits()).or_insert_with(|| {
            unique.push((rate, i));
            unique.len() - 1
        });
        rate_idx.push(idx);
    }
    let solved: Vec<WindowSolution> =
        pool.parallel_try_map(&unique, |_, (rate, first_window)| {
            // Seed from the previous plan's assignment for this window
            // (clamped to the last warm window when the horizon grew).
            let seed = warm.and_then(|prev| {
                let i = (*first_window).min(prev.windows.len().checked_sub(1)?);
                Some(&prev.windows[i].parallelisms)
            });
            match seed {
                Some(start) => plan_window_warm(oracle, *rate, config, start),
                None => plan_window(oracle, *rate, config),
            }
            .map_err(|e| match e {
                PlanError::Infeasible {
                    rate, component, ..
                } => PlanError::Infeasible {
                    window: *first_window,
                    rate,
                    component,
                },
                other => other,
            })
        })?;
    let mut evals: u64 = solved.iter().map(|s| s.evals).sum();

    // Hysteresis: each window adopts the componentwise max of the next
    // `hysteresis_windows` raw plans, so capacity is raised *before* a
    // spike and short dips never trigger a scale-down/up pair.
    //
    // Smoothed plans are assessed through a memo seeded with the raw
    // solutions: a smoothed plan equal to some window's raw plan at the
    // same rate is free, and consecutive windows smoothing to the same
    // (plan, rate) — the common case inside a lookahead run — pay for
    // one probe instead of one per window.
    let mut memo: HashMap<(Vec<(String, u32)>, u64), f64> = HashMap::new();
    for (idx, (rate, _)) in unique.iter().enumerate() {
        memo.insert(
            (solved[idx].parallelisms.clone(), rate.to_bits()),
            solved[idx].saturation_rate,
        );
    }
    let h = config.hysteresis_windows;
    let mut plans: Vec<WindowPlan> = Vec::with_capacity(windows.len());
    let mut prev: Vec<(String, u32)> = initial.to_vec();
    for (i, w) in windows.iter().enumerate() {
        let mut smoothed = solved[rate_idx[i]].parallelisms.clone();
        for ahead in rate_idx.iter().skip(i + 1).take(h - 1) {
            smoothed = componentwise_max(&smoothed, &solved[*ahead].parallelisms);
        }
        // Hysteresis only ever raises capacity; when the componentwise
        // max of neighbouring plans overflows the container budget the
        // window keeps its raw plan, which `plan_window` already proved
        // feasible within the budget. Smoothing yields to the budget,
        // never the other way around.
        if PlanCost::of(&smoothed, &config.limits).containers > config.limits.max_containers {
            smoothed = solved[rate_idx[i]].parallelisms.clone();
        }
        let rate = w.peak_rate * config.headroom;
        let key = (smoothed.clone(), rate.to_bits());
        let saturation_rate = match memo.get(&key) {
            Some(sat) => *sat,
            None => {
                let a = oracle.assess(&smoothed, rate)?;
                evals += 1;
                memo.insert(key, a.saturation_rate);
                a.saturation_rate
            }
        };
        let actions = diff_actions(&prev, &smoothed);
        plans.push(WindowPlan {
            window: i,
            start_ts: w.start_ts,
            end_ts: w.end_ts,
            peak_rate: w.peak_rate,
            planned_rate: w.peak_rate * config.headroom,
            parallelisms: smoothed.clone(),
            cost: PlanCost::of(&smoothed, &config.limits),
            saturation_rate,
            actions,
        });
        prev = smoothed;
    }

    let mut peak = plans[0].parallelisms.clone();
    for p in &plans[1..] {
        peak = componentwise_max(&peak, &p.parallelisms);
    }
    let peak_cost = PlanCost::of(&peak, &config.limits);
    Ok(PlanTimeline {
        windows: plans,
        peak_parallelisms: peak,
        peak_cost,
        oracle_evals: evals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanAction, ResourceLimits};
    use proptest::prelude::*;

    /// Analytic oracle: component `c` receives `ratio_c × source_rate`
    /// tuples/min and each instance serves `service_c` tuples/min, so
    /// saturation is `min_c service_c · p_c / ratio_c`; risk is Low
    /// with a 5 % margin, mirroring the core model's RISK_MARGIN.
    struct AnalyticOracle {
        comps: Vec<(String, f64, f64, f64, f64)>, // name, ratio, service, cpu_base, cpu_per_tuple
    }

    impl AnalyticOracle {
        fn new(comps: &[(&str, f64, f64)]) -> Self {
            Self {
                comps: comps
                    .iter()
                    .map(|(n, ratio, service)| (n.to_string(), *ratio, *service, 0.05, 0.0))
                    .collect(),
            }
        }

        fn with_cpu(mut self, name: &str, base: f64, per_tuple: f64) -> Self {
            for c in &mut self.comps {
                if c.0 == name {
                    c.3 = base;
                    c.4 = per_tuple;
                }
            }
            self
        }
    }

    impl CapacityOracle for AnalyticOracle {
        fn components(&self) -> Vec<String> {
            self.comps.iter().map(|c| c.0.clone()).collect()
        }

        fn assess(
            &self,
            parallelisms: &[(String, u32)],
            rate: f64,
        ) -> Result<Assessment, PlanError> {
            let mut saturation = f64::INFINITY;
            let mut bottleneck = None;
            let mut cpu = Vec::new();
            for (name, ratio, service, base, per_tuple) in &self.comps {
                let p = f64::from(get(parallelisms, name).max(1));
                let sat = service * p / ratio;
                if sat < saturation {
                    saturation = sat;
                    bottleneck = Some(name.clone());
                }
                cpu.push((name.clone(), base + per_tuple * ratio * rate / p));
            }
            Ok(Assessment {
                feasible: rate <= saturation * 0.95,
                bottleneck,
                saturation_rate: saturation,
                cpu_per_instance: cpu,
            })
        }
    }

    fn config(max_p: u32) -> PlannerConfig {
        PlannerConfig {
            headroom: 1.0,
            cpu_utilization_cap: 1.0,
            limits: ResourceLimits {
                max_parallelism: max_p,
                ..ResourceLimits::default()
            },
            ..PlannerConfig::default()
        }
    }

    #[test]
    fn min_satisfying_finds_the_boundary() {
        for boundary in 1..=20u32 {
            let found = min_satisfying(1, 20, |p| Ok(p >= boundary)).unwrap();
            assert_eq!(found, Some(boundary));
        }
        assert_eq!(min_satisfying(1, 20, |_| Ok(false)).unwrap(), None);
        assert_eq!(min_satisfying(5, 4, |_| Ok(true)).unwrap(), None);
    }

    #[test]
    fn plan_window_finds_the_per_component_minimum() {
        // Needs p = ceil(rate·ratio / (service·0.95)) per component:
        // a: 10e6·1/ (2e6·0.95) → 6;  b: 10e6·3 / (11e6·0.95) → 3.
        let oracle = AnalyticOracle::new(&[("a", 1.0, 2.0e6), ("b", 3.0, 11.0e6)]);
        let solved = plan_window(&oracle, 10.0e6, &config(64)).unwrap();
        assert_eq!(
            solved.parallelisms,
            vec![("a".to_string(), 6), ("b".to_string(), 3)]
        );
        // Decrementing either component breaks feasibility.
        for i in 0..2 {
            let mut dec = solved.parallelisms.clone();
            dec[i].1 -= 1;
            let a = oracle.assess(&dec, 10.0e6).unwrap();
            assert!(!a.feasible, "decrementing {:?} stayed feasible", dec[i].0);
        }
    }

    #[test]
    fn plan_window_matches_exhaustive_grid() {
        let oracle =
            AnalyticOracle::new(&[("a", 1.0, 3.0e6), ("b", 2.0, 5.0e6), ("c", 0.5, 1.5e6)]);
        let cfg = config(12);
        let solved = plan_window(&oracle, 9.0e6, &cfg).unwrap();
        let (grid, grid_evals) = grid_min_cost(&oracle, 9.0e6, &cfg, 12).unwrap();
        let grid = grid.expect("grid must find a feasible point");
        let grid_total: u32 = grid.iter().map(|(_, p)| *p).sum();
        let search_total: u32 = solved.parallelisms.iter().map(|(_, p)| *p).sum();
        // Per-component constraints are separable here, so the
        // per-component minimum is the global minimum.
        assert_eq!(search_total, grid_total);
        assert!(
            solved.evals < grid_evals / 5,
            "search used {} evals vs grid {}",
            solved.evals,
            grid_evals
        );
    }

    #[test]
    fn cpu_headroom_forces_extra_instances() {
        // Throughput alone needs p = ceil((6e6/0.95)/4e6) = 2, but the
        // per-instance CPU model 0.05 + 5e-7·6e6/p = 0.05 + 3/p only
        // fits the 0.85-core budget once p ≥ 3.75, so the CPU pass
        // must raise parallelism to 4.
        let oracle = AnalyticOracle::new(&[("a", 1.0, 4.0e6)]).with_cpu("a", 0.05, 5.0e-7);
        let mut cfg = config(64);
        cfg.cpu_utilization_cap = 0.85; // budget = 0.85 cores
        let solved = plan_window(&oracle, 6.0e6, &cfg).unwrap();
        let p = solved.parallelisms[0].1;
        assert_eq!(p, 4, "CPU headroom must bind above the throughput need");
        let a = oracle.assess(&solved.parallelisms, 6.0e6).unwrap();
        assert!(a.feasible);
        assert!(
            a.cpu_per_instance.iter().all(|(_, c)| *c <= 0.85 + 1e-9),
            "cpu over budget: {:?}",
            a.cpu_per_instance
        );
    }

    #[test]
    fn infeasible_rate_reports_the_pinned_component() {
        let oracle = AnalyticOracle::new(&[("a", 1.0, 1.0e6)]);
        let err = plan_window(&oracle, 1.0e9, &config(8)).unwrap_err();
        match err {
            PlanError::Infeasible { component, .. } => {
                assert_eq!(component.as_deref(), Some("a"));
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn horizon_hysteresis_scales_up_early_and_down_late() {
        let oracle = AnalyticOracle::new(&[("a", 1.0, 2.0e6)]);
        let mut cfg = config(64);
        cfg.hysteresis_windows = 2;
        let windows: Vec<WindowSpec> = [2.0e6, 8.0e6, 2.0e6]
            .iter()
            .enumerate()
            .map(|(i, r)| WindowSpec {
                start_ts: i as i64 * 900_000,
                end_ts: (i as i64 + 1) * 900_000,
                peak_rate: *r,
            })
            .collect();
        let initial = vec![("a".to_string(), 2)];
        let timeline = plan_horizon(&oracle, &initial, &windows, &cfg).unwrap();
        let ps: Vec<u32> = timeline
            .windows
            .iter()
            .map(|w| w.parallelisms[0].1)
            .collect();
        // Raw plans are [2, 5, 2]; with lookahead 2 the first window
        // already provisions for the spike and only the last scales
        // down.
        assert_eq!(ps, vec![5, 5, 2]);
        assert_eq!(
            timeline.windows[0].actions,
            vec![PlanAction::ScaleUp {
                component: "a".into(),
                from: 2,
                to: 5
            }]
        );
        assert!(timeline.windows[1].actions.is_empty());
        assert_eq!(
            timeline.windows[2].actions,
            vec![PlanAction::ScaleDown {
                component: "a".into(),
                from: 5,
                to: 2
            }]
        );
        assert_eq!(timeline.peak_parallelisms, vec![("a".to_string(), 5)]);
        // Exactly one search per distinct planned rate (2 M and 8 M —
        // the repeated 2 M window is deduplicated) plus one probe for
        // the single smoothed plan ([5] @ 2 M) not already assessed.
        let low = plan_window(&oracle, 2.0e6, &cfg).unwrap();
        let high = plan_window(&oracle, 8.0e6, &cfg).unwrap();
        assert_eq!(timeline.oracle_evals, low.evals + high.evals + 1);
    }

    #[test]
    fn consecutive_identical_smoothed_plans_assess_once() {
        let oracle = AnalyticOracle::new(&[("a", 1.0, 2.0e6)]);
        let mut cfg = config(64);
        cfg.hysteresis_windows = 3;
        let windows: Vec<WindowSpec> = [2.0e6, 2.0e6, 8.0e6, 2.0e6]
            .iter()
            .enumerate()
            .map(|(i, r)| WindowSpec {
                start_ts: i as i64 * 900_000,
                end_ts: (i as i64 + 1) * 900_000,
                peak_rate: *r,
            })
            .collect();
        let timeline = plan_horizon(&oracle, &[], &windows, &cfg).unwrap();
        let ps: Vec<u32> = timeline
            .windows
            .iter()
            .map(|w| w.parallelisms[0].1)
            .collect();
        assert_eq!(ps, vec![5, 5, 5, 2]);
        // Windows 0 and 1 both smooth to [5] @ 2 M: the memo must
        // charge that probe once, on top of one search per distinct
        // rate. (The unmemoized smoothing pass paid for it twice.)
        let low = plan_window(&oracle, 2.0e6, &cfg).unwrap();
        let high = plan_window(&oracle, 8.0e6, &cfg).unwrap();
        assert_eq!(timeline.oracle_evals, low.evals + high.evals + 1);
    }

    #[test]
    fn container_budget_binds_plan_window() {
        // Needs a=6, b=3 (see plan_window_finds_the_per_component_minimum):
        // 9 instances = 3 containers at 4 cores/box. A 2-container budget
        // is infeasible; 3 containers reproduces the unconstrained plan.
        let oracle = AnalyticOracle::new(&[("a", 1.0, 2.0e6), ("b", 3.0, 11.0e6)]);
        let mut tight = config(64);
        tight.limits.max_containers = 2;
        match plan_window(&oracle, 10.0e6, &tight).unwrap_err() {
            PlanError::Infeasible { component, .. } => assert_eq!(component, None),
            other => panic!("expected budget infeasibility, got {other:?}"),
        }
        let mut exact = config(64);
        exact.limits.max_containers = 3;
        let solved = plan_window(&oracle, 10.0e6, &exact).unwrap();
        assert_eq!(
            solved.parallelisms,
            plan_window(&oracle, 10.0e6, &config(64))
                .unwrap()
                .parallelisms
        );
    }

    /// Oracle whose per-window component requirements are looked up by
    /// rate, so different windows can bottleneck on *different*
    /// components — the shape where hysteresis smoothing can cost more
    /// containers than either raw plan.
    struct TableOracle {
        rows: Vec<(f64, Vec<(String, u32)>)>, // rate → required parallelisms
    }

    impl CapacityOracle for TableOracle {
        fn components(&self) -> Vec<String> {
            self.rows[0].1.iter().map(|(n, _)| n.clone()).collect()
        }

        fn assess(
            &self,
            parallelisms: &[(String, u32)],
            rate: f64,
        ) -> Result<Assessment, PlanError> {
            let required = &self
                .rows
                .iter()
                .find(|(r, _)| (*r - rate).abs() < 1e-9)
                .ok_or_else(|| PlanError::Oracle(format!("no table row for rate {rate}")))?
                .1;
            let bottleneck = required
                .iter()
                .find(|(name, need)| get(parallelisms, name) < *need)
                .map(|(name, _)| name.clone());
            Ok(Assessment {
                feasible: bottleneck.is_none(),
                bottleneck,
                saturation_rate: rate * 2.0,
                cpu_per_instance: required.iter().map(|(n, _)| (n.clone(), 0.0)).collect(),
            })
        }
    }

    #[test]
    fn smoothing_yields_to_the_container_budget() {
        // Window 0 needs (a=4, b=1), window 1 needs (a=1, b=4): each raw
        // plan is 5 instances = 5 containers at 1 core/box, but their
        // componentwise max is 8. Under a 5-container budget window 0
        // must keep its raw plan instead of the smoothed one.
        let oracle = TableOracle {
            rows: vec![
                (1.0, vec![("a".to_string(), 4), ("b".to_string(), 1)]),
                (2.0, vec![("a".to_string(), 1), ("b".to_string(), 4)]),
            ],
        };
        let mut cfg = config(8);
        cfg.hysteresis_windows = 2;
        cfg.limits.container_cpu = 1.0;
        cfg.limits.container_ram_mb = 1 << 20;
        cfg.limits.max_containers = 5;
        let windows: Vec<WindowSpec> = [1.0, 2.0]
            .iter()
            .enumerate()
            .map(|(i, r)| WindowSpec {
                start_ts: i as i64 * 900_000,
                end_ts: (i as i64 + 1) * 900_000,
                peak_rate: *r,
            })
            .collect();
        let timeline = plan_horizon(&oracle, &[], &windows, &cfg).unwrap();
        assert_eq!(
            timeline.windows[0].parallelisms,
            vec![("a".to_string(), 4), ("b".to_string(), 1)]
        );
        assert_eq!(
            timeline.windows[1].parallelisms,
            vec![("a".to_string(), 1), ("b".to_string(), 4)]
        );
        for w in &timeline.windows {
            assert!(w.cost.containers <= 5);
        }

        // With the budget lifted, the same horizon smooths window 0 up
        // to the componentwise max.
        cfg.limits.max_containers = crate::plan::UNLIMITED_CONTAINERS;
        let unbounded = plan_horizon(&oracle, &[], &windows, &cfg).unwrap();
        assert_eq!(
            unbounded.windows[0].parallelisms,
            vec![("a".to_string(), 4), ("b".to_string(), 4)]
        );
    }

    #[test]
    fn horizon_rejects_empty_windows() {
        let oracle = AnalyticOracle::new(&[("a", 1.0, 2.0e6)]);
        assert!(matches!(
            plan_horizon(&oracle, &[], &[], &config(8)),
            Err(PlanError::InvalidConfig(_))
        ));
    }

    #[test]
    fn warm_start_from_the_answer_certifies_cheaply() {
        let oracle = AnalyticOracle::new(&[("a", 1.0, 2.0e6), ("b", 3.0, 11.0e6)]);
        let cfg = config(64);
        let cold = plan_window(&oracle, 10.0e6, &cfg).unwrap();
        let warm = plan_window_warm(&oracle, 10.0e6, &cfg, &cold.parallelisms).unwrap();
        assert_eq!(warm.parallelisms, cold.parallelisms);
        assert_eq!(warm.saturation_rate, cold.saturation_rate);
        assert!(
            warm.evals < cold.evals,
            "warm-from-answer spent {} evals vs cold {}",
            warm.evals,
            cold.evals
        );
        // Certification is linear in components: one decrement probe
        // per component plus the shared final assessment.
        assert!(warm.evals <= 2 * cold.parallelisms.len() as u64 + 1);
    }

    #[test]
    fn warm_start_equals_cold_from_arbitrary_seeds() {
        let oracle = AnalyticOracle::new(&[("a", 1.0, 3.0e6), ("b", 2.0, 5.0e6)])
            .with_cpu("a", 0.05, 5.0e-8);
        let cfg = config(32);
        for rate in [1.0e6, 4.5e6, 9.0e6, 13.0e6] {
            let cold = plan_window(&oracle, rate, &cfg).unwrap();
            for seed in [
                vec![("a".to_string(), 1), ("b".to_string(), 32)],
                vec![("a".to_string(), 32), ("b".to_string(), 1)],
                vec![("a".to_string(), 32), ("b".to_string(), 32)],
                cold.parallelisms.clone(),
                // Stale / partial seeds: unknown and missing components.
                vec![("zz".to_string(), 7)],
            ] {
                let warm = plan_window_warm(&oracle, rate, &cfg, &seed).unwrap();
                assert_eq!(
                    warm.parallelisms, cold.parallelisms,
                    "rate {rate} seed {seed:?}"
                );
            }
        }
    }

    #[test]
    fn warm_horizon_matches_cold_and_spends_fewer_evals() {
        let oracle =
            AnalyticOracle::new(&[("a", 1.0, 3.0e6), ("b", 2.0, 5.0e6), ("c", 0.5, 1.5e6)]);
        let cfg = config(64);
        let windows: Vec<WindowSpec> = [4.0e6, 7.0e6, 11.0e6, 7.0e6, 5.0e6]
            .iter()
            .enumerate()
            .map(|(i, r)| WindowSpec {
                start_ts: i as i64,
                end_ts: i as i64 + 1,
                peak_rate: *r,
            })
            .collect();
        let cold = plan_horizon(&oracle, &[], &windows, &cfg).unwrap();
        // Unchanged rates: the warm run must reproduce the timeline
        // exactly (modulo eval telemetry) at a fraction of the cost.
        let warm = plan_horizon_warm(&oracle, &[], &windows, &cfg, Some(&cold)).unwrap();
        assert_eq!(warm.windows, cold.windows);
        assert_eq!(warm.peak_parallelisms, cold.peak_parallelisms);
        assert_eq!(warm.peak_cost, cold.peak_cost);
        assert!(
            warm.oracle_evals < cold.oracle_evals,
            "warm horizon spent {} evals vs cold {}",
            warm.oracle_evals,
            cold.oracle_evals
        );
        // A horizon longer than the seed clamps to the last warm window.
        let mut grown = windows.clone();
        grown.push(WindowSpec {
            start_ts: 5,
            end_ts: 6,
            peak_rate: 9.0e6,
        });
        let cold_grown = plan_horizon(&oracle, &[], &grown, &cfg).unwrap();
        let warm_grown = plan_horizon_warm(&oracle, &[], &grown, &cfg, Some(&cold)).unwrap();
        assert_eq!(warm_grown.windows, cold_grown.windows);
    }

    proptest! {
        /// Tentpole (b): for separable oracles the warm-started search
        /// is an *equivalence-preserving* optimisation — over perturbed
        /// rates it lands on exactly the plan the from-scratch search
        /// finds, whatever the previous timeline looked like.
        #[test]
        fn warm_horizon_equals_cold_over_perturbed_rates(
            base in 2.0e6f64..12.0e6,
            factors in prop::collection::vec(0.4f64..1.8, 1..6),
            drift in prop::collection::vec(0.7f64..1.3, 6),
        ) {
            let oracle = AnalyticOracle::new(&[
                ("a", 1.0, 3.0e6),
                ("b", 2.0, 5.0e6),
                ("c", 0.5, 1.5e6),
            ]);
            let cfg = config(64);
            let window = |i: usize, rate: f64| WindowSpec {
                start_ts: i as i64,
                end_ts: i as i64 + 1,
                peak_rate: rate,
            };
            let before: Vec<WindowSpec> = factors
                .iter()
                .enumerate()
                .map(|(i, f)| window(i, base * f))
                .collect();
            let prev = plan_horizon(&oracle, &[], &before, &cfg).unwrap();
            // Drift every window's rate and replan warm vs cold.
            let after: Vec<WindowSpec> = factors
                .iter()
                .zip(&drift)
                .enumerate()
                .map(|(i, (f, d))| window(i, base * f * d))
                .collect();
            let cold = plan_horizon(&oracle, &[], &after, &cfg).unwrap();
            let warm =
                plan_horizon_warm(&oracle, &[], &after, &cfg, Some(&prev)).unwrap();
            prop_assert_eq!(&warm.windows, &cold.windows);
            prop_assert_eq!(&warm.peak_parallelisms, &cold.peak_parallelisms);
        }
    }

    #[test]
    fn infeasible_window_is_indexed_in_the_horizon_error() {
        let oracle = AnalyticOracle::new(&[("a", 1.0, 1.0e6)]);
        let windows = vec![
            WindowSpec {
                start_ts: 0,
                end_ts: 1,
                peak_rate: 1.0e6,
            },
            WindowSpec {
                start_ts: 1,
                end_ts: 2,
                peak_rate: 1.0e9,
            },
        ];
        let mut cfg = config(8);
        cfg.hysteresis_windows = 1;
        match plan_horizon(&oracle, &[], &windows, &cfg) {
            Err(PlanError::Infeasible { window, .. }) => assert_eq!(window, 1),
            other => panic!("expected window-1 infeasibility, got {other:?}"),
        }
    }
}
