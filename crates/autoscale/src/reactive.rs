//! The Dhalion-style reactive scaler.
//!
//! Dhalion's loop (Floratou et al., VLDB 2017) is symptom → diagnosis →
//! resolution: detect backpressure, attribute it to the slowest
//! component, scale that component out, redeploy, and re-observe. The
//! scale-out factor comes from *observed* rates — and while backpressure
//! is active the spouts are throttled, so the observed input of the
//! bottleneck understates the true demand. Each round can therefore only
//! step the parallelism by the visible catch-up ratio, which is what
//! makes the loop converge over several rounds instead of one.

use crate::{Decision, RoundObservation, ScalingPolicy};
use caladrius_core::CoreError;
use heron_sim::topology::Topology;

/// Configuration of the reactive policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReactiveConfig {
    /// Extra headroom applied to the computed scale factor (Dhalion
    /// over-provisions slightly to avoid flapping).
    pub headroom: f64,
    /// Upper bound on per-round growth of a component's parallelism
    /// (factor); keeps a mis-diagnosis from exploding the fleet.
    pub max_growth: f64,
    /// Hard cap on any component's parallelism.
    pub max_parallelism: u32,
}

impl Default for ReactiveConfig {
    fn default() -> Self {
        Self {
            headroom: 1.1,
            max_growth: 2.0,
            max_parallelism: 256,
        }
    }
}

/// The Dhalion-style policy; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct ReactiveScaler {
    config: ReactiveConfig,
}

impl ReactiveScaler {
    /// Creates the policy with the given configuration.
    pub fn new(config: ReactiveConfig) -> Self {
        Self { config }
    }
}

impl ScalingPolicy for ReactiveScaler {
    fn name(&self) -> &'static str {
        "dhalion-reactive"
    }

    fn decide(
        &mut self,
        deployed: &Topology,
        observation: &RoundObservation,
    ) -> Result<Decision, CoreError> {
        let Some(bottleneck) = observation.bottleneck(deployed) else {
            // No symptom: Dhalion declares the topology healthy.
            return Ok(Decision::Converged);
        };
        let bottleneck = bottleneck.to_string();
        let bottleneck = bottleneck.as_str();
        let processed = observation
            .processed
            .iter()
            .find(|(name, _)| name == bottleneck)
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        // What the bottleneck *should* be processing is not observable
        // under throttling; Dhalion uses the visible pending growth. The
        // visible offered rate (spout emissions, throttled by the very
        // backpressure being diagnosed) bounds the demand estimate.
        // Demand reaching the bottleneck is visible_offered scaled by the
        // upstream amplification the component currently exhibits — which
        // we approximate with its own processed/sink ratios being
        // unavailable, i.e. conservatively by the catch-up ratio of
        // queue drain: processed is already the component's capacity, so
        // the only signal is "still backpressured" plus the small surplus
        // the throttle oscillation lets through.
        let p = deployed
            .component(bottleneck)
            .map_err(|e| CoreError::Substrate(e.to_string()))?
            .parallelism;
        let visible_ratio = if processed > 0.0 {
            (observation.visible_offered_for(bottleneck, deployed) / processed).max(1.0)
        } else {
            self.config.max_growth
        };
        let factor = (visible_ratio * self.config.headroom).min(self.config.max_growth);
        let new_p = ((f64::from(p) * factor).ceil() as u32)
            .max(p + 1)
            .min(self.config.max_parallelism);
        if new_p == p {
            // Cannot grow further; give up as converged-at-cap.
            return Ok(Decision::Converged);
        }
        let next = deployed
            .with_parallelism(bottleneck, new_p)
            .map_err(|e| CoreError::Substrate(e.to_string()))?;
        Ok(Decision::Redeploy(next))
    }
}

impl RoundObservation {
    /// The demand visible at a component this round: the spout-visible
    /// offered rate amplified by the topology's observed per-hop ratios
    /// up to (but excluding) the component.
    fn visible_offered_for(&self, component: &str, topology: &Topology) -> f64 {
        // Walk the (chain) topology multiplying observed out/in ratios.
        // For general DAGs this is approximate, matching the coarse
        // signals a reactive scaler actually has.
        let mut demand = self.visible_offered;
        let Ok(target) = topology.component_index(component) else {
            return demand;
        };
        for idx in topology.topo_order() {
            if idx == target {
                break;
            }
            let name = &topology.components[idx].name;
            let Some((_, processed)) = self.processed.iter().find(|(n, _)| n == name) else {
                continue;
            };
            if *processed <= 0.0 {
                continue;
            }
            // Amplification of this hop: emitted/processed ≈ selectivity,
            // observable from the metrics (we carry it via processed and
            // the next component's processed when unthrottled; fall back
            // to 1.0 under throttling).
            let downstream_in: f64 = topology
                .out_edges(idx)
                .filter_map(|e| {
                    let downstream = &topology.components[e.to].name;
                    self.processed
                        .iter()
                        .find(|(n, _)| n == downstream)
                        .map(|(_, v)| *v)
                })
                .sum();
            if downstream_in > 0.0 {
                demand *= downstream_in / processed;
            }
        }
        demand
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heron_sim::grouping::Grouping;
    use heron_sim::profiles::RateProfile;
    use heron_sim::topology::{TopologyBuilder, WorkProfile};

    fn chain() -> Topology {
        TopologyBuilder::new("t")
            .spout("spout", 2, RateProfile::constant(100.0), 60)
            .bolt("bolt", 2, WorkProfile::new(100.0, 2.0, 8))
            .edge("spout", "bolt", Grouping::shuffle())
            .build()
            .unwrap()
    }

    fn bp_observation(offered: f64, processed: f64) -> RoundObservation {
        RoundObservation {
            visible_offered: offered,
            processed: vec![("spout".into(), offered), ("bolt".into(), processed)],
            emitted: vec![("spout".into(), offered), ("bolt".into(), processed)],
            backpressure_ms: vec![("bolt".into(), 59_000.0)],
            sink_output: processed,
        }
    }

    #[test]
    fn no_symptom_means_converged() {
        let mut policy = ReactiveScaler::default();
        let obs = RoundObservation {
            visible_offered: 100.0,
            processed: vec![("bolt".into(), 100.0)],
            emitted: vec![("bolt".into(), 100.0)],
            backpressure_ms: vec![("bolt".into(), 0.0)],
            sink_output: 100.0,
        };
        assert_eq!(policy.decide(&chain(), &obs).unwrap(), Decision::Converged);
    }

    #[test]
    fn symptom_scales_the_bottleneck() {
        let mut policy = ReactiveScaler::default();
        // Visible offered barely exceeds processed (throttled world).
        let obs = bp_observation(12_600.0, 12_000.0);
        match policy.decide(&chain(), &obs).unwrap() {
            Decision::Redeploy(topo) => {
                let p = topo.component("bolt").unwrap().parallelism;
                assert!(p > 2, "must scale out, got {p}");
                assert!(p <= 4, "growth is bounded per round, got {p}");
            }
            other => panic!("expected redeploy, got {other:?}"),
        }
    }

    #[test]
    fn growth_capped_at_max_parallelism() {
        let mut policy = ReactiveScaler::new(ReactiveConfig {
            max_parallelism: 2,
            ..ReactiveConfig::default()
        });
        let obs = bp_observation(100_000.0, 100.0);
        assert_eq!(policy.decide(&chain(), &obs).unwrap(), Decision::Converged);
    }

    #[test]
    fn zero_processed_uses_max_growth() {
        let mut policy = ReactiveScaler::default();
        let obs = bp_observation(1_000.0, 0.0);
        match policy.decide(&chain(), &obs).unwrap() {
            Decision::Redeploy(topo) => {
                assert_eq!(topo.component("bolt").unwrap().parallelism, 4);
            }
            other => panic!("expected redeploy, got {other:?}"),
        }
    }
}
