//! # caladrius-autoscale
//!
//! Auto-scaling policies driven against the simulator, built to quantify
//! the paper's motivating claim: reactive auto-scalers (Heron's Dhalion)
//! "adopt a series of trials to approach a job's expected performance due
//! to a lack of performance modelling tools", while a modelling service
//! can jump to the right configuration in one planned step.
//!
//! Two policies share the [`ScalingPolicy`] interface:
//!
//! * [`reactive::ReactiveScaler`] — a Dhalion-style
//!   observe→diagnose→resolve loop. Each round it deploys the current
//!   configuration, waits for stabilisation, looks for the backpressure
//!   symptom, diagnoses the bottleneck component and scales it by the
//!   observed catch-up ratio. Crucially, under backpressure the *visible*
//!   offered rate is throttled to the current capacity, so each round
//!   only reveals a bounded amount of headroom — the reason reactive
//!   scaling needs several rounds for a large gap.
//! * [`modelled::ModelledScaler`] — Caladrius: fit the throughput model
//!   from observed history, compute the smallest sufficient parallelism
//!   directly (Eq. 13), deploy once, verify.
//!
//! A third policy, [`planned::PlanFollower`], executes a configuration
//! computed *offline* by the `caladrius-planner` horizon search:
//! it drives the deployment to the planner's target assignment in one
//! redeploy and degrades to reactive single-instance nudges if the
//! plan undershoots.
//!
//! The [`harness`] runs a policy to convergence on a target load and
//! scores it by deployments and simulated stabilisation time — the
//! quantities behind the paper's "weeks for a production topology to be
//! scaled to the correct configuration".

#![warn(missing_docs)]

pub mod harness;
pub mod modelled;
pub mod planned;
pub mod reactive;

use heron_sim::topology::Topology;
use serde::{Deserialize, Serialize};

/// One observation round of the currently deployed configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundObservation {
    /// Offered rate as visible at the spouts (throttled under
    /// backpressure!), tuples/min.
    pub visible_offered: f64,
    /// Per-component processed rate, tuples/min, in component order.
    pub processed: Vec<(String, f64)>,
    /// Per-component emitted rate, tuples/min, in component order.
    pub emitted: Vec<(String, f64)>,
    /// Per-component mean backpressure time, ms/min.
    pub backpressure_ms: Vec<(String, f64)>,
    /// Sink output rate, tuples/min.
    pub sink_output: f64,
}

impl RoundObservation {
    /// True when any component spent meaningful time in backpressure.
    pub fn backpressured(&self) -> bool {
        self.backpressure_ms.iter().any(|(_, ms)| *ms > 1_000.0)
    }

    /// The diagnosed bottleneck: the **most downstream** component in
    /// topological order whose backpressure time is above the bimodality
    /// threshold. Backpressure stalls the spouts, and the resulting
    /// catch-up bursts can transiently overflow *upstream* queues too, so
    /// the root cause is the deepest triggering component — the same
    /// reasoning Dhalion's diagnosers apply.
    pub fn bottleneck<'a>(&'a self, topology: &Topology) -> Option<&'a str> {
        let mut diagnosed = None;
        for idx in topology.topo_order() {
            let name = &topology.components[idx].name;
            let triggered = self
                .backpressure_ms
                .iter()
                .any(|(n, ms)| n == name && *ms > 1_000.0);
            if triggered {
                diagnosed = Some(name.clone());
            }
        }
        // Map back into our own storage to return a borrow of self.
        diagnosed.and_then(|name| {
            self.backpressure_ms
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(n, _)| n.as_str())
        })
    }
}

/// A scaling decision for the next round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Decision {
    /// The current configuration meets the objective; stop.
    Converged,
    /// Redeploy with the new topology (parallelism changes applied).
    Redeploy(Topology),
}

/// A policy that drives the scaling loop.
pub trait ScalingPolicy {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Decides what to do after observing one round of the deployed
    /// topology.
    fn decide(
        &mut self,
        deployed: &Topology,
        observation: &RoundObservation,
    ) -> Result<Decision, caladrius_core::CoreError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    use heron_sim::grouping::Grouping;
    use heron_sim::profiles::RateProfile;
    use heron_sim::topology::{TopologyBuilder, WorkProfile};

    fn chain() -> Topology {
        TopologyBuilder::new("t")
            .spout("s", 1, RateProfile::constant(1.0), 8)
            .bolt("a", 1, WorkProfile::new(1.0, 1.0, 8))
            .bolt("b", 1, WorkProfile::new(1.0, 1.0, 8))
            .edge("s", "a", Grouping::shuffle())
            .edge("a", "b", Grouping::shuffle())
            .build()
            .unwrap()
    }

    #[test]
    fn bottleneck_picks_most_downstream_triggering() {
        let obs = RoundObservation {
            visible_offered: 100.0,
            processed: vec![("a".into(), 50.0), ("b".into(), 50.0)],
            emitted: vec![("a".into(), 50.0), ("b".into(), 50.0)],
            backpressure_ms: vec![("a".into(), 59_000.0), ("b".into(), 30_000.0)],
            sink_output: 50.0,
        };
        // Both trigger; `b` is deeper, so `b` is the diagnosis even though
        // `a` spent longer suppressing.
        assert_eq!(obs.bottleneck(&chain()), Some("b"));
        assert!(obs.backpressured());
    }

    #[test]
    fn bottleneck_none_below_threshold() {
        let obs = RoundObservation {
            visible_offered: 100.0,
            processed: vec![],
            emitted: vec![],
            backpressure_ms: vec![("a".into(), 500.0)],
            sink_output: 100.0,
        };
        assert_eq!(obs.bottleneck(&chain()), None);
        assert!(!obs.backpressured());
    }
}
