//! Executing a capacity plan: the planner → autoscale adapter.
//!
//! Where [`crate::modelled::ModelledScaler`] *learns* the models online
//! and then jumps, [`PlanFollower`] consumes a configuration computed
//! offline by `caladrius-planner` (a [`caladrius_planner::WindowPlan`]
//! or the horizon-covering peak of a
//! [`caladrius_planner::PlanTimeline`]) and drives the deployed
//! topology to that target: one redeploy applying every diff at once,
//! then convergence once the target is live and healthy. If the plan
//! turns out optimistic — the target is deployed but backpressure
//! persists — the follower falls back to nudging the diagnosed
//! bottleneck one instance per round, so a stale forecast degrades
//! into reactive behaviour instead of livelock.

use crate::{Decision, RoundObservation, ScalingPolicy};
use caladrius_core::CoreError;
use caladrius_planner::{PlanTimeline, WindowPlan};
use heron_sim::topology::Topology;

/// A [`ScalingPolicy`] that steers the deployment to a planner-computed
/// target parallelism assignment.
#[derive(Debug, Clone)]
pub struct PlanFollower {
    target: Vec<(String, u32)>,
    /// Hard cap applied to corrective nudges past the plan.
    max_parallelism: u32,
}

impl PlanFollower {
    /// Follows an explicit target assignment (components not listed are
    /// left at their deployed parallelism).
    pub fn new(target: Vec<(String, u32)>) -> Self {
        Self {
            target,
            max_parallelism: u32::MAX,
        }
    }

    /// Follows one window's plan.
    pub fn for_window(plan: &WindowPlan) -> Self {
        Self::new(plan.parallelisms.clone())
    }

    /// Follows the horizon-covering peak assignment of a timeline — the
    /// static configuration that keeps every window feasible.
    pub fn for_timeline_peak(timeline: &PlanTimeline) -> Self {
        Self::new(timeline.peak_parallelisms.clone())
    }

    /// Caps corrective nudges (applied when the deployed target still
    /// backpressures) at `max` instances per component.
    pub fn with_max_parallelism(mut self, max: u32) -> Self {
        self.max_parallelism = max;
        self
    }

    /// The target assignment being driven to.
    pub fn target(&self) -> &[(String, u32)] {
        &self.target
    }

    fn pending_updates<'a>(&'a self, deployed: &Topology) -> Vec<(&'a str, u32)> {
        self.target
            .iter()
            .filter(|(name, p)| {
                deployed
                    .component(name)
                    .map(|c| c.parallelism != *p)
                    .unwrap_or(false)
            })
            .map(|(name, p)| (name.as_str(), *p))
            .collect()
    }
}

impl ScalingPolicy for PlanFollower {
    fn name(&self) -> &'static str {
        "caladrius-planned"
    }

    fn decide(
        &mut self,
        deployed: &Topology,
        observation: &RoundObservation,
    ) -> Result<Decision, CoreError> {
        let updates = self.pending_updates(deployed);
        if !updates.is_empty() {
            let next = deployed
                .with_parallelisms(&updates)
                .map_err(|e| CoreError::Substrate(e.to_string()))?;
            return Ok(Decision::Redeploy(next));
        }
        if !observation.backpressured() {
            return Ok(Decision::Converged);
        }
        // Target deployed but still backpressured: the plan undershot
        // (stale forecast, model drift). Correct reactively, one
        // instance at a time on the diagnosed bottleneck, and remember
        // the correction so it is not undone next round.
        let Some(bottleneck) = observation.bottleneck(deployed).map(String::from) else {
            return Ok(Decision::Converged);
        };
        let p = deployed
            .component(&bottleneck)
            .map_err(|e| CoreError::Substrate(e.to_string()))?
            .parallelism;
        if p >= self.max_parallelism {
            return Ok(Decision::Converged);
        }
        let next = deployed
            .with_parallelism(&bottleneck, p + 1)
            .map_err(|e| CoreError::Substrate(e.to_string()))?;
        match self.target.iter_mut().find(|(n, _)| *n == bottleneck) {
            Some((_, tp)) => *tp = p + 1,
            None => self.target.push((bottleneck, p + 1)),
        }
        Ok(Decision::Redeploy(next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caladrius_planner::{PlanCost, PlannerConfig};
    use heron_sim::grouping::Grouping;
    use heron_sim::profiles::RateProfile;
    use heron_sim::topology::{TopologyBuilder, WorkProfile};

    fn chain(a_p: u32, b_p: u32) -> Topology {
        TopologyBuilder::new("t")
            .spout("spout", 2, RateProfile::constant(100.0), 60)
            .bolt("a", a_p, WorkProfile::new(100.0, 1.0, 8))
            .bolt("b", b_p, WorkProfile::new(100.0, 1.0, 8))
            .edge("spout", "a", Grouping::shuffle())
            .edge("a", "b", Grouping::shuffle())
            .build()
            .unwrap()
    }

    fn healthy() -> RoundObservation {
        RoundObservation {
            visible_offered: 200.0,
            processed: vec![("a".into(), 200.0), ("b".into(), 200.0)],
            emitted: vec![("a".into(), 200.0), ("b".into(), 200.0)],
            backpressure_ms: vec![("a".into(), 0.0), ("b".into(), 0.0)],
            sink_output: 200.0,
        }
    }

    fn backpressured_at(component: &str) -> RoundObservation {
        RoundObservation {
            visible_offered: 200.0,
            processed: vec![("a".into(), 100.0), ("b".into(), 100.0)],
            emitted: vec![("a".into(), 100.0), ("b".into(), 100.0)],
            backpressure_ms: vec![
                ("a".into(), if component == "a" { 50_000.0 } else { 0.0 }),
                ("b".into(), if component == "b" { 50_000.0 } else { 0.0 }),
            ],
            sink_output: 100.0,
        }
    }

    #[test]
    fn redeploys_all_diffs_at_once_then_converges() {
        let mut policy = PlanFollower::new(vec![("a".into(), 5), ("b".into(), 3)]);
        // Even a healthy observation does not excuse skipping the plan:
        // the plan covers the *forecast* peak, not the current load.
        match policy.decide(&chain(1, 1), &healthy()).unwrap() {
            Decision::Redeploy(topo) => {
                assert_eq!(topo.component("a").unwrap().parallelism, 5);
                assert_eq!(topo.component("b").unwrap().parallelism, 3);
            }
            other => panic!("expected redeploy, got {other:?}"),
        }
        assert_eq!(
            policy.decide(&chain(5, 3), &healthy()).unwrap(),
            Decision::Converged
        );
    }

    #[test]
    fn optimistic_plan_degrades_to_reactive_nudges() {
        let mut policy = PlanFollower::new(vec![("a".into(), 2)]).with_max_parallelism(3);
        // Target is live but `a` still backpressures: nudge a → 3 and
        // fold the correction into the target.
        match policy.decide(&chain(2, 1), &backpressured_at("a")).unwrap() {
            Decision::Redeploy(topo) => {
                assert_eq!(topo.component("a").unwrap().parallelism, 3);
            }
            other => panic!("expected corrective redeploy, got {other:?}"),
        }
        assert_eq!(policy.target(), &[("a".to_string(), 3)]);
        // At the cap the follower stops escalating.
        assert_eq!(
            policy.decide(&chain(3, 1), &backpressured_at("a")).unwrap(),
            Decision::Converged
        );
    }

    #[test]
    fn follows_timeline_peak_assignment() {
        let parallelisms = vec![("a".to_string(), 4), ("b".to_string(), 2)];
        let cost = PlanCost::of(&parallelisms, &PlannerConfig::default().limits);
        let timeline = PlanTimeline {
            windows: Vec::new(),
            peak_parallelisms: parallelisms.clone(),
            peak_cost: cost,
            oracle_evals: 0,
        };
        let mut policy = PlanFollower::for_timeline_peak(&timeline);
        match policy.decide(&chain(1, 2), &healthy()).unwrap() {
            Decision::Redeploy(topo) => {
                assert_eq!(topo.component("a").unwrap().parallelism, 4);
                assert_eq!(topo.component("b").unwrap().parallelism, 2);
            }
            other => panic!("expected redeploy, got {other:?}"),
        }
    }

    #[test]
    fn components_missing_from_deployment_are_ignored() {
        let mut policy = PlanFollower::new(vec![("ghost".into(), 9)]);
        assert_eq!(
            policy.decide(&chain(1, 1), &healthy()).unwrap(),
            Decision::Converged
        );
    }
}
