//! The Caladrius-driven scaler: one modelling step instead of a trial
//! ladder.
//!
//! The policy accumulates every observation round into component-model
//! training data. As soon as the data contains the knee (one saturated
//! round is enough, per the paper's "we need at least two data points:
//! one in the non-saturation interval and one in the saturation
//! interval"), it computes the smallest sufficient parallelism for every
//! component directly from the fitted models and proposes the final
//! configuration in a single redeploy.

use crate::{Decision, RoundObservation, ScalingPolicy};
use caladrius_core::model::component::{ComponentModel, ComponentObservation, GroupingKind};
use caladrius_core::CoreError;
use heron_sim::topology::Topology;
use std::collections::HashMap;

/// Configuration of the model-driven policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelledConfig {
    /// Target offered rate to provision for (tuples/min). This is the
    /// *known* demand (e.g. a traffic forecast) — the thing a reactive
    /// scaler cannot see while throttled.
    pub target_rate: f64,
    /// Safety margin above the saturation point (e.g. `1.1` = 10 %).
    pub headroom: f64,
    /// Hard cap on any component's parallelism.
    pub max_parallelism: u32,
}

/// The Caladrius policy; see the module docs.
#[derive(Debug)]
pub struct ModelledScaler {
    config: ModelledConfig,
    /// Accumulated per-component observations across rounds, keyed by
    /// component name; each entry remembers the parallelism it was
    /// observed at (so rates can be normalised per instance) and whether
    /// the window must be excluded from knee fitting (throttled by a
    /// different bottleneck).
    history: HashMap<String, Vec<(u32, ComponentObservation, bool)>>,
    proposed: bool,
}

impl ModelledScaler {
    /// Creates the policy.
    pub fn new(config: ModelledConfig) -> Self {
        Self {
            config,
            history: HashMap::new(),
            proposed: false,
        }
    }

    fn record(&mut self, deployed: &Topology, observation: &RoundObservation) {
        let diagnosed = observation.bottleneck(deployed).map(String::from);
        let topology_backpressured = observation.backpressured();
        for (idx, component) in deployed.components.iter().enumerate() {
            if deployed.in_edges(idx).next().is_none() {
                continue; // spout
            }
            let is_diagnosed = diagnosed.as_deref() == Some(component.name.as_str());
            // Under topology-wide backpressure, only the diagnosed
            // bottleneck runs at its capacity; every other component is
            // throttled, so its window says nothing about its own knee.
            // Its output/input ratio is still valid and is kept.
            let skip_knee = topology_backpressured && !is_diagnosed;
            let processed = observation
                .processed
                .iter()
                .find(|(n, _)| n == &component.name)
                .map(|(_, v)| *v)
                .unwrap_or(0.0);
            let emitted = observation
                .emitted
                .iter()
                .find(|(n, _)| n == &component.name)
                .map(|(_, v)| *v)
                .unwrap_or(processed);
            // The component's source is approximated by what it processed
            // (equal when unthrottled, its capacity when throttled); the
            // diagnosed bottleneck's source is inflated so the fit places
            // a knee there.
            let obs = ComponentObservation {
                source_rate: if is_diagnosed {
                    // Saturated round: the true source exceeds what was
                    // processed; mark it starved so the fit places the
                    // knee here.
                    processed * 1.2
                } else {
                    processed
                },
                input_rate: processed,
                output_rate: emitted,
                per_instance_inputs: vec![
                    processed / f64::from(component.parallelism);
                    component.parallelism as usize
                ],
                backpressured: is_diagnosed,
            };
            self.history
                .entry(component.name.clone())
                .or_default()
                .push((component.parallelism, obs, skip_knee));
        }
    }

    /// Computes the smallest sufficient parallelism for one component
    /// from its accumulated history, or `None` when the knee has not been
    /// observed yet.
    fn required_parallelism(&self, name: &str, demand: f64) -> Result<Option<u32>, CoreError> {
        let Some(entries) = self.history.get(name) else {
            return Ok(None);
        };
        // Normalise every knee-usable round to parallelism 1
        // (per-instance rates), then fit a p=1 component model.
        let normalised: Vec<ComponentObservation> = entries
            .iter()
            .filter(|(_, _, skip_knee)| !skip_knee)
            .map(|(p, o, _)| {
                let pf = f64::from(*p);
                ComponentObservation {
                    source_rate: o.source_rate / pf,
                    input_rate: o.input_rate / pf,
                    output_rate: o.output_rate / pf,
                    per_instance_inputs: vec![o.input_rate / pf],
                    backpressured: o.backpressured,
                }
            })
            .collect();
        if normalised.is_empty() {
            return Ok(None);
        }
        let model = ComponentModel::fit(name, 1, GroupingKind::Shuffle, &normalised)?;
        let Some(per_instance_knee) = model.saturation_source_rate(1)? else {
            return Ok(None); // never saturated: no knee knowledge yet
        };
        let needed = (demand * self.config.headroom / per_instance_knee).ceil() as u32;
        Ok(Some(needed.max(1).min(self.config.max_parallelism)))
    }
}

impl ScalingPolicy for ModelledScaler {
    fn name(&self) -> &'static str {
        "caladrius-modelled"
    }

    fn decide(
        &mut self,
        deployed: &Topology,
        observation: &RoundObservation,
    ) -> Result<Decision, CoreError> {
        self.record(deployed, observation);
        if self.proposed && observation.bottleneck(deployed).is_none() {
            return Ok(Decision::Converged);
        }
        if observation.bottleneck(deployed).is_none() && !self.proposed {
            // Healthy already — but verify the target: demand may exceed
            // what we observed. Without a knee observation the model
            // cannot prove headroom, so accept health as convergence.
            return Ok(Decision::Converged);
        }

        // Demand per component: walk the chain amplifying the offered
        // target by observed per-hop ratios (α estimates from history).
        let mut next = deployed.clone();
        let mut changed = false;
        let mut demand = self.config.target_rate;
        for idx in deployed.topo_order() {
            let component = &deployed.components[idx];
            if deployed.in_edges(idx).next().is_none() {
                continue;
            }
            if let Some(required) = self.required_parallelism(&component.name, demand)? {
                if required > component.parallelism {
                    next = next
                        .with_parallelism(&component.name, required)
                        .map_err(|e| CoreError::Substrate(e.to_string()))?;
                    changed = true;
                }
            }
            // Amplify demand by this component's selectivity for its
            // downstreams, estimated from the observed output/input
            // ratio of unsaturated rounds.
            if let Some(entries) = self.history.get(&component.name) {
                // The I/O ratio (alpha) holds on both sides of the knee,
                // so every window with input counts.
                let ratios: Vec<f64> = entries
                    .iter()
                    .filter(|(_, o, _)| o.input_rate > 0.0)
                    .map(|(_, o, _)| o.output_rate / o.input_rate)
                    .collect();
                if !ratios.is_empty() {
                    demand *= ratios.iter().sum::<f64>() / ratios.len() as f64;
                }
            }
        }
        if changed {
            self.proposed = true;
            Ok(Decision::Redeploy(next))
        } else if observation.bottleneck(deployed).is_none() {
            Ok(Decision::Converged)
        } else {
            // Bottlenecked but no knee data yet (first round at an
            // undersized deployment IS the knee observation, so this
            // only happens when fitting failed); fall back to a
            // conservative doubling to gather data.
            let bottleneck = observation
                .bottleneck(deployed)
                .expect("checked above")
                .to_string();
            let p = deployed
                .component(&bottleneck)
                .map_err(|e| CoreError::Substrate(e.to_string()))?
                .parallelism;
            let next = deployed
                .with_parallelism(&bottleneck, (p * 2).min(self.config.max_parallelism))
                .map_err(|e| CoreError::Substrate(e.to_string()))?;
            Ok(Decision::Redeploy(next))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heron_sim::grouping::Grouping;
    use heron_sim::profiles::RateProfile;
    use heron_sim::topology::{TopologyBuilder, WorkProfile};

    fn chain(bolt_p: u32) -> Topology {
        TopologyBuilder::new("t")
            .spout("spout", 2, RateProfile::constant(100.0), 60)
            .bolt("bolt", bolt_p, WorkProfile::new(100.0, 1.0, 8))
            .edge("spout", "bolt", Grouping::shuffle())
            .build()
            .unwrap()
    }

    /// A saturated round at parallelism `p` with per-instance capacity
    /// `cap` tuples/min.
    fn saturated_round(p: u32, cap: f64) -> RoundObservation {
        RoundObservation {
            visible_offered: cap * f64::from(p) * 1.05,
            processed: vec![
                ("spout".into(), cap * f64::from(p) * 1.05),
                ("bolt".into(), cap * f64::from(p)),
            ],
            emitted: vec![
                ("spout".into(), cap * f64::from(p) * 1.05),
                ("bolt".into(), cap * f64::from(p)),
            ],
            backpressure_ms: vec![("bolt".into(), 59_000.0)],
            sink_output: cap * f64::from(p),
        }
    }

    #[test]
    fn single_saturated_round_jumps_to_final_parallelism() {
        // Per-instance capacity 6000/min; target 60000/min with 10%
        // headroom needs ceil(66000/6000) = 11 instances.
        let mut policy = ModelledScaler::new(ModelledConfig {
            target_rate: 60_000.0,
            headroom: 1.1,
            max_parallelism: 64,
        });
        let deployed = chain(2);
        let obs = saturated_round(2, 6_000.0);
        match policy.decide(&deployed, &obs).unwrap() {
            Decision::Redeploy(topo) => {
                assert_eq!(topo.component("bolt").unwrap().parallelism, 11);
            }
            other => panic!("expected one-shot redeploy, got {other:?}"),
        }
        // A healthy verification round converges.
        let healthy = RoundObservation {
            visible_offered: 60_000.0,
            processed: vec![("spout".into(), 60_000.0), ("bolt".into(), 60_000.0)],
            emitted: vec![("spout".into(), 60_000.0), ("bolt".into(), 60_000.0)],
            backpressure_ms: vec![("bolt".into(), 0.0)],
            sink_output: 60_000.0,
        };
        assert_eq!(
            policy.decide(&chain(11), &healthy).unwrap(),
            Decision::Converged
        );
    }

    #[test]
    fn healthy_first_round_converges_immediately() {
        let mut policy = ModelledScaler::new(ModelledConfig {
            target_rate: 1_000.0,
            headroom: 1.1,
            max_parallelism: 8,
        });
        let healthy = RoundObservation {
            visible_offered: 1_000.0,
            processed: vec![("spout".into(), 1_000.0), ("bolt".into(), 1_000.0)],
            emitted: vec![("spout".into(), 1_000.0), ("bolt".into(), 1_000.0)],
            backpressure_ms: vec![("bolt".into(), 0.0)],
            sink_output: 1_000.0,
        };
        assert_eq!(
            policy.decide(&chain(2), &healthy).unwrap(),
            Decision::Converged
        );
    }

    #[test]
    fn respects_max_parallelism() {
        let mut policy = ModelledScaler::new(ModelledConfig {
            target_rate: 1.0e9,
            headroom: 1.1,
            max_parallelism: 16,
        });
        match policy
            .decide(&chain(2), &saturated_round(2, 6_000.0))
            .unwrap()
        {
            Decision::Redeploy(topo) => {
                assert_eq!(topo.component("bolt").unwrap().parallelism, 16);
            }
            other => panic!("expected redeploy, got {other:?}"),
        }
    }
}
