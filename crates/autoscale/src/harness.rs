//! The convergence harness: drives a [`ScalingPolicy`] through
//! deploy → stabilise → observe → decide rounds against the simulator
//! and scores the run — the "plan → deploy → stabilize → analyze loop"
//! of the paper's introduction, made measurable.

use crate::{Decision, RoundObservation, ScalingPolicy};
use caladrius_core::CoreError;
use caladrius_tsdb::Aggregation;
use heron_sim::engine::{SimConfig, Simulation};
use heron_sim::metrics::metric;
use heron_sim::topology::Topology;
use serde::{Deserialize, Serialize};

/// Harness configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HarnessConfig {
    /// Stabilisation time after each deployment, simulated minutes (the
    /// paper: "wait for it to stabilize and for normal operation to
    /// resume").
    pub stabilize_minutes: u64,
    /// Observation window per round, simulated minutes.
    pub observe_minutes: u64,
    /// Maximum rounds before declaring divergence.
    pub max_rounds: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            stabilize_minutes: 30,
            observe_minutes: 10,
            max_rounds: 20,
        }
    }
}

/// Outcome of a convergence run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceResult {
    /// Policy name.
    pub policy: String,
    /// Number of deployments performed (the initial one included).
    pub deployments: usize,
    /// Total simulated minutes spent stabilising + observing.
    pub simulated_minutes: u64,
    /// Whether the final configuration met the objective.
    pub converged: bool,
    /// Final per-component parallelisms.
    pub final_parallelisms: Vec<(String, u32)>,
    /// Final-round sink output, tuples/min.
    pub final_sink_output: f64,
}

fn observe_round(
    topology: &Topology,
    offered_rate_per_min: f64,
    config: &HarnessConfig,
    seed: u64,
) -> RoundObservation {
    // Each round is a fresh deployment at the (true) offered rate. The
    // whole round is recorded; throughput metrics are averaged over the
    // post-stabilisation window, while the spout-visible rate is averaged
    // over (almost) the whole round — under backpressure the spout's
    // per-minute emission alternates between zero and catch-up bursts, so
    // only a long-run mean is meaningful.
    let topo = retarget(topology, offered_rate_per_min);
    let mut sim = Simulation::new(
        topo,
        SimConfig {
            seed,
            ..SimConfig::default()
        },
    )
    .expect("harness topologies are valid");
    let metrics = sim.run_minutes(config.stabilize_minutes + config.observe_minutes);
    let observe_from = (config.stabilize_minutes * 60_000) as i64;
    let long_run_from = 5 * 60_000i64;

    let mean_from = |name: &str, component: &str, from: i64| -> f64 {
        let series = metrics.component_sum(name, Some(component), from, i64::MAX);
        Aggregation::Mean.apply(series.iter().map(|s| s.value))
    };
    let mean = |name: &str, component: &str| mean_from(name, component, observe_from);
    let mut processed = Vec::new();
    let mut emitted = Vec::new();
    let mut backpressure = Vec::new();
    let mut visible_offered = 0.0;
    let mut sink_output = 0.0;
    for (idx, component) in topology.components.iter().enumerate() {
        let name = component.name.as_str();
        if component.kind.is_spout() {
            visible_offered += mean_from(metric::EMIT_COUNT, name, long_run_from);
        }
        processed.push((name.to_string(), mean(metric::EXECUTE_COUNT, name)));
        emitted.push((name.to_string(), mean(metric::EMIT_COUNT, name)));
        backpressure.push((name.to_string(), mean(metric::BACKPRESSURE_TIME, name)));
        if topology.out_edges(idx).next().is_none() {
            sink_output += mean(metric::EXECUTE_COUNT, name);
        }
    }
    RoundObservation {
        visible_offered,
        processed,
        emitted,
        backpressure_ms: backpressure,
        sink_output,
    }
}

/// Replaces every spout's rate profile with a constant at
/// `rate_per_min / #spout-components` each (totalling `rate_per_min`).
fn retarget(topology: &Topology, rate_per_min: f64) -> Topology {
    use heron_sim::profiles::RateProfile;
    use heron_sim::topology::ComponentKind;
    let mut topo = topology.clone();
    let spouts = topo.spout_indices();
    let per_spout = rate_per_min / spouts.len() as f64;
    for idx in spouts {
        if let ComponentKind::Spout { profile, .. } = &mut topo.components[idx].kind {
            *profile = RateProfile::constant_per_min(per_spout);
        }
    }
    topo
}

/// The SLO used for final verification: no backpressure in the last round
/// and the topology keeps up with the offered load.
fn meets_slo(observation: &RoundObservation, offered_rate_per_min: f64) -> bool {
    !observation.backpressured() && observation.visible_offered >= offered_rate_per_min * 0.97
}

/// Runs one policy to convergence and scores it.
pub fn run_to_convergence(
    policy: &mut dyn ScalingPolicy,
    initial: Topology,
    offered_rate_per_min: f64,
    config: HarnessConfig,
) -> Result<ConvergenceResult, CoreError> {
    let mut deployed = initial;
    let mut deployments = 1usize;
    let mut simulated_minutes = 0u64;
    let mut converged = false;
    let mut last_observation = None;

    for round in 0..config.max_rounds {
        let observation = observe_round(
            &deployed,
            offered_rate_per_min,
            &config,
            0xD0 + round as u64,
        );
        simulated_minutes += config.stabilize_minutes + config.observe_minutes;
        let decision = policy.decide(&deployed, &observation)?;
        if std::env::var("CALADRIUS_SCALE_DEBUG").is_ok() {
            eprintln!(
                "round {round}: parallelisms={:?} offered={:.2e} bottleneck={:?} decision={}",
                deployed
                    .components
                    .iter()
                    .map(|c| (c.name.clone(), c.parallelism))
                    .collect::<Vec<_>>(),
                observation.visible_offered,
                observation.bottleneck(&deployed),
                match &decision {
                    Decision::Converged => "converged".to_string(),
                    Decision::Redeploy(t) => format!(
                        "redeploy {:?}",
                        t.components
                            .iter()
                            .map(|c| (c.name.clone(), c.parallelism))
                            .collect::<Vec<_>>()
                    ),
                },
            );
        }
        let slo_ok = meets_slo(&observation, offered_rate_per_min);
        last_observation = Some(observation);
        match decision {
            Decision::Converged => {
                converged = slo_ok;
                break;
            }
            Decision::Redeploy(next) => {
                deployed = next;
                deployments += 1;
            }
        }
    }

    Ok(ConvergenceResult {
        policy: policy.name().to_string(),
        deployments,
        simulated_minutes,
        converged,
        final_parallelisms: deployed
            .components
            .iter()
            .map(|c| (c.name.clone(), c.parallelism))
            .collect(),
        final_sink_output: last_observation.map(|o| o.sink_output).unwrap_or(0.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modelled::{ModelledConfig, ModelledScaler};
    use crate::reactive::ReactiveScaler;
    use caladrius_workload::wordcount::{wordcount_topology, WordCountParallelism};

    /// Undersized WordCount: splitter p=1 against a 60 M/min target that
    /// needs p=6 (plus headroom).
    fn undersized() -> Topology {
        wordcount_topology(
            WordCountParallelism {
                spout: 8,
                splitter: 1,
                counter: 4,
            },
            60.0e6,
        )
    }

    fn fast_harness() -> HarnessConfig {
        HarnessConfig {
            stabilize_minutes: 20,
            observe_minutes: 5,
            max_rounds: 15,
        }
    }

    #[test]
    fn reactive_converges_in_several_rounds() {
        let mut policy = ReactiveScaler::default();
        let result = run_to_convergence(&mut policy, undersized(), 60.0e6, fast_harness()).unwrap();
        assert!(
            result.converged,
            "reactive scaling must converge: {result:?}"
        );
        assert!(
            result.deployments >= 3,
            "a 1→7-ish gap with bounded growth needs several rounds, got {}",
            result.deployments
        );
        let splitter = result
            .final_parallelisms
            .iter()
            .find(|(n, _)| n == "splitter")
            .map(|(_, p)| *p)
            .unwrap();
        assert!(splitter >= 6, "final splitter parallelism {splitter}");
    }

    #[test]
    fn modelled_converges_in_one_redeploy() {
        let mut policy = ModelledScaler::new(ModelledConfig {
            target_rate: 60.0e6,
            headroom: 1.1,
            max_parallelism: 64,
        });
        let result = run_to_convergence(&mut policy, undersized(), 60.0e6, fast_harness()).unwrap();
        assert!(
            result.converged,
            "modelled scaling must converge: {result:?}"
        );
        assert!(
            result.deployments <= 3,
            "model-driven scaling should need one planned redeploy (+verify), got {}",
            result.deployments
        );
    }

    #[test]
    fn healthy_deployment_converges_without_redeploys() {
        let topo = wordcount_topology(
            WordCountParallelism {
                spout: 8,
                splitter: 4,
                counter: 4,
            },
            10.0e6,
        );
        let mut policy = ReactiveScaler::default();
        let result = run_to_convergence(&mut policy, topo, 10.0e6, fast_harness()).unwrap();
        assert!(result.converged);
        assert_eq!(result.deployments, 1);
    }
}
