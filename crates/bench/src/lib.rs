//! Shared harness for the figure-reproduction benchmarks.
//!
//! Every figure of the paper's evaluation (§V, Figs. 4–12) has a bench
//! target in `benches/` that regenerates its series with the simulator
//! and the Caladrius models, prints the rows, and compares the headline
//! quantities against the values the paper reports. The helpers here
//! run sweeps with repeats, compute 90 % confidence bands (matching the
//! paper's plots) and format tables.
//!
//! Environment knobs:
//! * `CALADRIUS_BENCH_REPEATS` — observation repeats per point
//!   (default 5; the paper uses 10).
//! * `CALADRIUS_BENCH_FAST=1` — shrink sweeps for smoke runs.

use caladrius_tsdb::Aggregation;
use heron_sim::engine::{SimConfig, Simulation};
use heron_sim::metrics::{metric, SimMetrics};
use heron_sim::topology::Topology;

pub use caladrius_core::model::relative_error;

/// Number of repeats per sweep point.
pub fn repeats() -> usize {
    std::env::var("CALADRIUS_BENCH_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

/// True when sweeps should be shrunk for a smoke run.
pub fn fast_mode() -> bool {
    std::env::var("CALADRIUS_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Mean with a 90 % confidence band over repeated observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ci {
    /// Mean over repeats.
    pub mean: f64,
    /// 5th percentile.
    pub lo: f64,
    /// 95th percentile.
    pub hi: f64,
}

impl Ci {
    /// Computes the band from raw repeat values.
    pub fn from_values(values: &[f64]) -> Ci {
        assert!(!values.is_empty(), "need at least one repeat");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let q = |p: f64| -> f64 {
            let pos = p * (sorted.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            if lo == hi {
                sorted[lo]
            } else {
                sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
            }
        };
        Ci {
            mean: values.iter().sum::<f64>() / values.len() as f64,
            lo: q(0.05),
            hi: q(0.95),
        }
    }
}

/// Runs `topology` once with the given noise seed and returns its metrics
/// after `warmup` minutes of stabilisation and `measure` recorded minutes
/// (the paper lets experiments "run for several hours to attain steady
/// state before measurements were retrieved").
pub fn run_once(topology: Topology, seed: u64, warmup: u64, measure: u64) -> SimMetrics {
    run_once_cfg(
        topology,
        SimConfig {
            seed,
            ..SimConfig::default()
        },
        warmup,
        measure,
    )
}

/// [`run_once`] with full control over the simulator configuration (used
/// by experiments that need finer tick resolution).
pub fn run_once_cfg(
    topology: Topology,
    config: SimConfig,
    warmup: u64,
    measure: u64,
) -> SimMetrics {
    let mut sim = Simulation::new(topology, config).expect("benchmark topologies are valid");
    sim.warmup_minutes(warmup);
    sim.run_minutes(measure)
}

/// Mean per-minute component sum of a metric over a recorded run.
pub fn component_rate(metrics: &SimMetrics, name: &str, component: &str) -> f64 {
    let series = metrics.component_sum(name, Some(component), 0, i64::MAX);
    Aggregation::Mean.apply(series.iter().map(|s| s.value))
}

/// Observed statistics for several component metrics across shared
/// repeated runs. `queries` pairs are `(metric name, component)`.
pub fn observe_many(
    make_topology: impl Fn() -> Topology,
    queries: &[(&str, &str)],
    warmup: u64,
    measure: u64,
) -> Vec<Ci> {
    observe_many_cfg(
        make_topology,
        &SimConfig::default(),
        queries,
        warmup,
        measure,
    )
}

/// [`observe_many`] with an explicit base simulator configuration (the
/// per-repeat noise seed still varies).
pub fn observe_many_cfg(
    make_topology: impl Fn() -> Topology,
    base_config: &SimConfig,
    queries: &[(&str, &str)],
    warmup: u64,
    measure: u64,
) -> Vec<Ci> {
    let mut per_query: Vec<Vec<f64>> = vec![Vec::new(); queries.len()];
    for rep in 0..repeats() {
        let config = SimConfig {
            seed: 0xBE + rep as u64,
            ..base_config.clone()
        };
        let metrics = run_once_cfg(make_topology(), config, warmup, measure);
        for (i, (metric_name, component)) in queries.iter().enumerate() {
            per_query[i].push(component_rate(&metrics, metric_name, component));
        }
    }
    per_query
        .iter()
        .map(|values| Ci::from_values(values))
        .collect()
}

/// Mean backpressure-time (ms/min) of a component over a recorded run.
pub fn backpressure_ms(metrics: &SimMetrics, component: &str) -> f64 {
    let series = metrics.component_sum(metric::BACKPRESSURE_TIME, Some(component), 0, i64::MAX);
    Aggregation::Mean.apply(series.iter().map(|s| s.value))
}

/// Prints a benchmark header.
pub fn header(figure: &str, claim: &str) {
    println!("\n================================================================");
    println!("{figure}");
    println!("paper: {claim}");
    println!("================================================================");
}

/// Prints one table row: a label column followed by `f64` cells.
pub fn row(label: impl std::fmt::Display, cells: &[f64]) {
    print!("{label:>14}");
    for c in cells {
        print!(" {c:>14.3}");
    }
    println!();
}

/// Prints the column header for [`row`] tables.
pub fn columns(label: &str, names: &[&str]) {
    print!("{label:>14}");
    for n in names {
        print!(" {n:>14}");
    }
    println!();
}

/// Prints a paper-vs-reproduced comparison line and returns whether the
/// reproduction is within tolerance of the paper's value.
pub fn compare(what: &str, paper: f64, measured: f64, tolerance: f64) -> bool {
    let err = relative_error(measured, paper);
    let ok = err <= tolerance;
    println!(
        "  {what}: paper {paper:.4}, reproduced {measured:.4} ({:+.1}% vs paper) {}",
        (measured - paper) / paper * 100.0,
        if ok { "[shape OK]" } else { "[DIVERGES]" }
    );
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_from_values() {
        let ci = Ci::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(ci.mean, 3.0);
        assert!(ci.lo >= 1.0 && ci.lo < 2.0);
        assert!(ci.hi > 4.0 && ci.hi <= 5.0);
        let single = Ci::from_values(&[7.0]);
        assert_eq!((single.mean, single.lo, single.hi), (7.0, 7.0, 7.0));
    }

    #[test]
    fn repeats_is_positive() {
        assert!(repeats() >= 1);
    }
}
