//! Criterion micro-benchmarks: the cost of a Caladrius "dry run" and of
//! the substrates underneath it.
//!
//! The paper's motivation is latency: deploy-and-observe tuning takes
//! "weeks" while a model evaluation takes milliseconds. These benches
//! quantify the milliseconds.

use caladrius_core::model::component::{ComponentModel, ComponentObservation, GroupingKind};
use caladrius_core::model::instance::{InstanceModel, InstanceObservation};
use caladrius_core::model::topology::TopologyModel;
use caladrius_core::providers::metrics::SimMetricsProvider;
use caladrius_core::providers::tracker::StaticTracker;
use caladrius_core::service::SourceRateSpec;
use caladrius_core::Caladrius;
use caladrius_forecast::prophet::{Prophet, ProphetConfig};
use caladrius_forecast::{DataPoint, Forecaster};
use caladrius_graph::algo;
use caladrius_graph::topology_graph::{build_logical, instance_path_count, LogicalSpec};
use caladrius_tsdb::encoding::{compress, decompress};
use caladrius_tsdb::{MetricBatch, MetricsDb, Sample, SeriesKey, TagFilter};
use caladrius_workload::wordcount::{wordcount_topology, WordCountParallelism};
use criterion::{criterion_group, criterion_main, Criterion};
use heron_sim::engine::{SimConfig, Simulation};
use std::collections::HashMap;
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("wordcount_one_minute", |b| {
        let topo = wordcount_topology(WordCountParallelism::default(), 8.0e6);
        let mut sim = Simulation::new(topo, SimConfig::default()).unwrap();
        let metrics = heron_sim::metrics::SimMetrics::new("wordcount");
        b.iter(|| sim.run_minutes_into(1, &metrics));
    });
    group.finish();
}

fn sweep_observations() -> Vec<ComponentObservation> {
    (1..=60)
        .map(|i| {
            let t = i as f64 * 1.0e6;
            let per = (t / 3.0).min(11.0e6);
            let input = per * 3.0;
            ComponentObservation {
                source_rate: t,
                input_rate: input,
                output_rate: input * 7.63,
                per_instance_inputs: vec![per; 3],
                backpressured: t / 3.0 > 11.0e6,
            }
        })
        .collect()
}

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("models");
    let instance_obs: Vec<InstanceObservation> = (1..=600)
        .map(|i| {
            let t = i as f64 * 50_000.0;
            let input = t.min(11.0e6);
            InstanceObservation {
                source_rate: t,
                input_rate: input,
                output_rate: input * 7.63,
                backpressured: t > 11.0e6,
            }
        })
        .collect();
    group.bench_function("instance_fit_600_windows", |b| {
        b.iter(|| InstanceModel::fit(black_box(&instance_obs)).unwrap());
    });

    let component_obs = sweep_observations();
    group.bench_function("component_fit_60_windows", |b| {
        b.iter(|| {
            ComponentModel::fit(
                "splitter",
                3,
                GroupingKind::Shuffle,
                black_box(&component_obs),
            )
            .unwrap()
        });
    });

    let splitter =
        ComponentModel::fit("splitter", 3, GroupingKind::Shuffle, &component_obs).unwrap();
    let counter = ComponentModel {
        name: "counter".into(),
        instance: InstanceModel::from_params(1.0, None),
        ..splitter.clone()
    };
    let spec = LogicalSpec::new("wc")
        .component("spout", 2)
        .component("splitter", 3)
        .component("counter", 3)
        .edge("spout", "splitter", "shuffle")
        .edge("splitter", "counter", "fields");
    let topo = TopologyModel::new(
        spec,
        HashMap::from([
            ("splitter".to_string(), splitter),
            ("counter".to_string(), counter),
        ]),
    )
    .unwrap();
    let none = HashMap::new();
    group.bench_function("topology_dry_run_predict", |b| {
        b.iter(|| topo.predict(black_box(&none), black_box(30.0e6)).unwrap());
    });
    group.bench_function("topology_saturation_search", |b| {
        b.iter(|| topo.saturation_source_rate(black_box(&none)).unwrap());
    });
    group.finish();
}

fn bench_forecast(c: &mut Criterion) {
    let mut group = c.benchmark_group("forecast");
    group.sample_size(10);
    let history: Vec<DataPoint> = (0..2880)
        .map(|i| {
            let phase = std::f64::consts::TAU * (i % 1440) as f64 / 1440.0;
            DataPoint::new(i * 60_000, 1.0e6 * (1.0 + 0.4 * phase.sin()))
        })
        .collect();
    group.bench_function("prophet_fit_2880_minutes", |b| {
        b.iter(|| {
            let mut m = Prophet::new(ProphetConfig::default());
            m.fit(black_box(&history)).unwrap();
            m
        });
    });
    let mut fitted = Prophet::new(ProphetConfig::default());
    fitted.fit(&history).unwrap();
    let horizon: Vec<i64> = (2881..2941).map(|i| i * 60_000).collect();
    group.bench_function("prophet_predict_60_minutes", |b| {
        b.iter(|| fitted.predict(black_box(&horizon)).unwrap());
    });
    group.finish();
}

fn bench_tsdb(c: &mut Criterion) {
    let mut group = c.benchmark_group("tsdb");
    let samples: Vec<Sample> = (0..1000)
        .map(|i| Sample::new(i * 60_000, 1.0e6 + (i % 13) as f64))
        .collect();
    group.bench_function("gorilla_compress_1000", |b| {
        b.iter(|| compress(black_box(&samples)));
    });
    let block = compress(&samples);
    group.bench_function("gorilla_decompress_1000", |b| {
        b.iter(|| decompress(black_box(&block)).unwrap());
    });
    group.bench_function("ingest_1000_samples", |b| {
        b.iter(|| {
            let db = MetricsDb::new();
            let key = SeriesKey::new("m").with_tag("component", "splitter");
            for s in &samples {
                db.write(&key, s.ts, s.value);
            }
            db
        });
    });
    // Per-sample vs batched ingest over the engine's flush shape: 104
    // series (13 instances x 8 metrics), one value per series per minute.
    let keys: Vec<SeriesKey> = (0..104)
        .map(|i| {
            SeriesKey::new("execute-count")
                .with_tag("topology", "wc")
                .with_tag("component", "splitter")
                .with_tag("instance", i.to_string())
        })
        .collect();
    group.bench_function("ingest_per_sample_104x60", |b| {
        b.iter(|| {
            let db = MetricsDb::new();
            for minute in 0..60i64 {
                for key in &keys {
                    db.write(black_box(key), minute * 60_000, 1.0);
                }
            }
            db
        });
    });
    group.bench_function("ingest_batch_104x60", |b| {
        b.iter(|| {
            let db = MetricsDb::new();
            let handles: Vec<_> = keys.iter().map(|k| db.register(k)).collect();
            let mut batch = MetricBatch::with_capacity(0, handles.len());
            for minute in 0..60i64 {
                batch.reset(minute * 60_000);
                for h in &handles {
                    batch.push(black_box(h), 1.0);
                }
                db.ingest_batch(&batch);
            }
            db
        });
    });
    let db = MetricsDb::new();
    for inst in 0..8 {
        let key = SeriesKey::new("execute-count")
            .with_tag("component", "splitter")
            .with_tag("instance", inst.to_string());
        db.write_batch(&key, samples.iter().copied());
    }
    let filters = [TagFilter::eq("component", "splitter")];
    group.bench_function("aggregate_8_series_x_1000", |b| {
        b.iter(|| {
            db.aggregate(
                "execute-count",
                black_box(&filters),
                0,
                i64::MAX,
                60_000,
                caladrius_tsdb::Aggregation::Sum,
                caladrius_tsdb::Aggregation::Sum,
            )
            .unwrap()
        });
    });
    group.finish();
}

fn bench_service(c: &mut Criterion) {
    let mut group = c.benchmark_group("service");
    group.sample_size(10);
    // A source-rate sweep with linear and saturated legs, mirroring the
    // core service test fixture.
    let parallelism = WordCountParallelism {
        spout: 8,
        splitter: 2,
        counter: 3,
    };
    let metrics = heron_sim::metrics::SimMetrics::new("wordcount");
    for (leg, rate) in [6.0e6, 12.0e6, 18.0e6, 26.0e6].into_iter().enumerate() {
        let topo = wordcount_topology(parallelism, rate);
        let mut sim = Simulation::new(
            topo,
            SimConfig {
                metric_noise: 0.0,
                ..SimConfig::default()
            },
        )
        .unwrap();
        sim.skip_to_minute(leg as u64 * 60);
        sim.warmup_minutes(25);
        sim.run_minutes_into(10, &metrics);
    }
    let tracker = StaticTracker::new().with(wordcount_topology(parallelism, 20.0e6));
    let caladrius = Caladrius::new(
        std::sync::Arc::new(SimMetricsProvider::new(metrics)),
        std::sync::Arc::new(tracker),
    );
    let none = HashMap::new();
    let source = SourceRateSpec::Fixed(30.0e6);
    group.bench_function("evaluate_cold", |b| {
        b.iter(|| {
            caladrius.invalidate_model_cache(None);
            caladrius
                .evaluate(black_box("wordcount"), &none, &source)
                .unwrap()
        });
    });
    caladrius.evaluate("wordcount", &none, &source).unwrap();
    group.bench_function("evaluate_cached", |b| {
        b.iter(|| {
            caladrius
                .evaluate(black_box("wordcount"), &none, &source)
                .unwrap()
        });
    });
    group.finish();
}

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph");
    let spec = LogicalSpec::new("wide")
        .component("spout", 8)
        .component("a", 16)
        .component("b", 16)
        .component("sink", 8)
        .edge("spout", "a", "shuffle")
        .edge("a", "b", "fields")
        .edge("b", "sink", "shuffle");
    group.bench_function("build_logical", |b| {
        b.iter(|| build_logical(black_box(&spec)).unwrap());
    });
    group.bench_function("instance_path_count", |b| {
        b.iter(|| instance_path_count(black_box(&spec)).unwrap());
    });
    let logical = build_logical(&spec).unwrap();
    group.bench_function("source_sink_paths", |b| {
        b.iter(|| algo::source_sink_paths(black_box(&logical.graph)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simulator,
    bench_models,
    bench_forecast,
    bench_tsdb,
    bench_service,
    bench_graph
);
criterion_main!(benches);
