//! Observability overhead: the per-call cost of the `caladrius-obs`
//! hot paths. Instrumentation rides inside the model evaluation and
//! simulator loops, so a histogram record must stay in the tens of
//! nanoseconds — cheap enough to leave always-on.

use caladrius_obs::{
    Histogram, MetricsRegistry, RequestId, RequestScope, TraceRing, WindowedHistogram,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

fn bench_recording(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_record");
    let histogram = Histogram::detached();
    group.bench_function("histogram_record", |b| {
        let mut v = 1.0e-3;
        b.iter(|| {
            v = if v > 1.0 { 1.0e-3 } else { v * 1.001 };
            histogram.record(black_box(v));
        });
    });
    let registry = MetricsRegistry::new();
    let counter = registry.counter("bench_total", &[("k", "v")]);
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    let gauge = registry.gauge("bench_depth", &[]);
    group.bench_function("gauge_set", |b| {
        let mut v = 0.0;
        b.iter(|| {
            v += 1.0;
            gauge.set(black_box(v));
        });
    });
    group.bench_function("registry_lookup_existing", |b| {
        b.iter(|| registry.counter(black_box("bench_total"), &[("k", "v")]));
    });
    group.finish();
}

fn bench_windowed(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_windowed");
    // Steady state: every record lands in the already-claimed current
    // window slot (the amortized-clock path).
    let windowed = WindowedHistogram::detached();
    group.bench_function("windowed_record", |b| {
        let mut v = 1.0e-3;
        b.iter(|| {
            v = if v > 1.0 { 1.0e-3 } else { v * 1.001 };
            windowed.record(black_box(v));
        });
    });
    // Worst case: the clock advances one window per record, so every
    // record claims and resets a ring slot (the CAS rotation path).
    let rotating = WindowedHistogram::with_window(12, 1);
    group.bench_function("windowed_record_rotate", |b| {
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            rotating.record_at(black_box(1.0e-3), now);
        });
    });
    // Read side: merging the slot ring into a recent-window quantile.
    let read = WindowedHistogram::detached();
    for i in 1..=4096 {
        read.record(f64::from(i) * 1e-5);
    }
    group.bench_function("windowed_quantile_p99", |b| {
        b.iter(|| black_box(read.windowed_quantile(0.99)));
    });
    group.finish();

    assert_windowed_record_overhead();
}

/// The windowed record path must stay within 2× of a plain histogram
/// record — the budget that keeps it a drop-in replacement on every
/// HTTP route. Checked here rather than in unit tests so the
/// comparison runs under bench conditions (release opt, warm caches);
/// any real `cargo bench` run of this suite fires the assertion.
fn assert_windowed_record_overhead() {
    const ITERS: u32 = 2_000_000;
    fn best_of_3(f: &mut dyn FnMut()) -> f64 {
        (0..3)
            .map(|_| {
                let started = Instant::now();
                for _ in 0..ITERS {
                    f();
                }
                started.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    }
    let plain = Histogram::detached();
    let mut v = 1.0e-3;
    let plain_secs = best_of_3(&mut || {
        v = if v > 1.0 { 1.0e-3 } else { v * 1.001 };
        plain.record(black_box(v));
    });
    let windowed = WindowedHistogram::detached();
    let mut w = 1.0e-3;
    let windowed_secs = best_of_3(&mut || {
        w = if w > 1.0 { 1.0e-3 } else { w * 1.001 };
        windowed.record(black_box(w));
    });
    let ratio = windowed_secs / plain_secs.max(1e-12);
    println!(
        "windowed/plain record ratio: {ratio:.2}x \
         (windowed {:.1} ns/op, plain {:.1} ns/op)",
        windowed_secs * 1e9 / f64::from(ITERS),
        plain_secs * 1e9 / f64::from(ITERS),
    );
    assert!(
        ratio <= 2.0,
        "windowed record is {ratio:.2}x a plain histogram record (budget: 2x)"
    );
}

fn bench_spans(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_span");
    let ring = TraceRing::new(2048);
    group.bench_function("span_enter_exit", |b| {
        b.iter(|| drop(ring.span(black_box("bench.span"))));
    });
    group.bench_function("span_with_fields", |b| {
        b.iter(|| {
            let mut span = ring.span("bench.span");
            span.field("topology", "wordcount").field("minutes", 10);
        });
    });
    group.bench_function("request_scope_enter_exit", |b| {
        b.iter(|| drop(RequestScope::enter(black_box(RequestId(7)))));
    });
    group.finish();
}

fn bench_exposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_exposition");
    group.sample_size(10);
    let registry = MetricsRegistry::new();
    for i in 0..50 {
        let shard = format!("{}", i % 5);
        registry
            .counter(&format!("family_{i}_total"), &[("shard", &shard)])
            .add(i);
        let h = registry.histogram(&format!("family_{i}_seconds"), &[("shard", &shard)]);
        for j in 1..=100 {
            h.record(j as f64 * 1e-4);
        }
    }
    group.bench_function("render_prometheus_100_families", |b| {
        b.iter(|| caladrius_obs::render_prometheus(black_box(&registry)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_recording,
    bench_windowed,
    bench_spans,
    bench_exposition
);
criterion_main!(benches);
