//! Observability overhead: the per-call cost of the `caladrius-obs`
//! hot paths. Instrumentation rides inside the model evaluation and
//! simulator loops, so a histogram record must stay in the tens of
//! nanoseconds — cheap enough to leave always-on.

use caladrius_obs::{Histogram, MetricsRegistry, RequestId, RequestScope, TraceRing};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_recording(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_record");
    let histogram = Histogram::detached();
    group.bench_function("histogram_record", |b| {
        let mut v = 1.0e-3;
        b.iter(|| {
            v = if v > 1.0 { 1.0e-3 } else { v * 1.001 };
            histogram.record(black_box(v));
        });
    });
    let registry = MetricsRegistry::new();
    let counter = registry.counter("bench_total", &[("k", "v")]);
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    let gauge = registry.gauge("bench_depth", &[]);
    group.bench_function("gauge_set", |b| {
        let mut v = 0.0;
        b.iter(|| {
            v += 1.0;
            gauge.set(black_box(v));
        });
    });
    group.bench_function("registry_lookup_existing", |b| {
        b.iter(|| registry.counter(black_box("bench_total"), &[("k", "v")]));
    });
    group.finish();
}

fn bench_spans(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_span");
    let ring = TraceRing::new(2048);
    group.bench_function("span_enter_exit", |b| {
        b.iter(|| drop(ring.span(black_box("bench.span"))));
    });
    group.bench_function("span_with_fields", |b| {
        b.iter(|| {
            let mut span = ring.span("bench.span");
            span.field("topology", "wordcount").field("minutes", 10);
        });
    });
    group.bench_function("request_scope_enter_exit", |b| {
        b.iter(|| drop(RequestScope::enter(black_box(RequestId(7)))));
    });
    group.finish();
}

fn bench_exposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_exposition");
    group.sample_size(10);
    let registry = MetricsRegistry::new();
    for i in 0..50 {
        let shard = format!("{}", i % 5);
        registry
            .counter(&format!("family_{i}_total"), &[("shard", &shard)])
            .add(i);
        let h = registry.histogram(&format!("family_{i}_seconds"), &[("shard", &shard)]);
        for j in 1..=100 {
            h.record(j as f64 * 1e-4);
        }
    }
    group.bench_function("render_prometheus_100_families", |b| {
        b.iter(|| caladrius_obs::render_prometheus(black_box(&registry)));
    });
    group.finish();
}

criterion_group!(benches, bench_recording, bench_spans, bench_exposition);
criterion_main!(benches);
