//! Fleet-tier scale bench: 1k+ topologies on a sharded fleet under
//! continuous ingest with periodic cluster replans, measured at the
//! HTTP route layer.
//!
//! The paper positions Caladrius as a *service* that models "multiple
//! topologies concurrently"; this bench stresses that claim at fleet
//! scale. One simulator run is staged and replayed into every topology
//! ([`caladrius_fleet::feed`]), so the numbers isolate the fleet tier
//! itself: the tsdb ingest fan-out, the per-shard model caches, the
//! cluster budget allocator, and the admission edge.
//!
//! Phases (full mode; `CALADRIUS_BENCH_FAST=1` shrinks the fleet):
//!
//! 1. **Feed** — register 1024 topologies across 8 shards and ingest
//!    the 40-minute staged history into each (≈ 41 k batches).
//! 2. **Replans under continuous ingest** — alternate "ship one fresh
//!    minute to every topology" (watermarks advance, cached models go
//!    stale) with full cluster replans through `POST /fleet/plan`:
//!    cold (first fit), refit (after new data), warm (no new data —
//!    served from the plan caches, asserted ≥5× faster than refit),
//!    drifted (fresh data to 10 % of tenants — only those re-plan,
//!    asserted ≥2× faster than refit), plus a budget-constrained
//!    pass. Route latency is read off the shared
//!    `caladrius_http_request_duration_seconds` histograms — plan
//!    submission is async (202 + poll), so the route p99 must stay
//!    flat no matter how long planning takes.
//! 3. **Admission burst** — 256 rapid low-priority plan requests
//!    against a 64-token bucket (no refill) on a drained front door:
//!    the bucket admits its capacity and sheds the rest with 429 +
//!    `Retry-After`, giving the recorded shed rate.

use caladrius_api::json::{self, Value};
use caladrius_api::{AdmissionConfig, Request, Response};
use caladrius_bench::{columns, fast_mode, header, row};
use caladrius_fleet::{Fleet, FleetConfig, FleetService, StagedWorkload};
use caladrius_tsdb::MetricBatch;
use caladrius_workload::wordcount::{wordcount_topology, WordCountParallelism};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

fn request(method: &str, path: &str, body: &str, headers: &[(&str, &str)]) -> Request {
    Request {
        method: method.to_string(),
        path: path.to_string(),
        query: BTreeMap::new(),
        headers: headers
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
        body: body.as_bytes().to_vec(),
    }
}

fn body_json(response: &Response) -> Value {
    json::parse(std::str::from_utf8(&response.body).expect("utf-8 body")).expect("json body")
}

/// Submits a fleet plan and blocks until the job finishes, polling the
/// job route once so poll latency lands in the histograms too.
fn replan(service: &Arc<FleetService>, body: &str) -> Value {
    let accepted = service.handle(request("POST", "/fleet/plan", body, &[]));
    assert_eq!(accepted.status, 202, "{:?}", accepted.body);
    let envelope = body_json(&accepted);
    let id = envelope
        .get("job_id")
        .and_then(Value::as_f64)
        .expect("job id") as u64;
    let poll = envelope
        .get("poll")
        .and_then(Value::as_str)
        .expect("poll url");
    let polled = service.handle(request("GET", poll, "", &[]));
    assert!(polled.status == 200 || polled.status == 202);
    match service.jobs().wait(id).expect("job exists") {
        caladrius_api::jobs::JobState::Done(result) => result,
        other => panic!("fleet replan did not finish: {other:?}"),
    }
}

fn route_p99_ms(route: &str) -> f64 {
    // The route family is registered windowed by the front doors; the
    // cumulative snapshot still covers the whole bench run.
    caladrius_obs::global_registry()
        .windowed_histogram(
            "caladrius_http_request_duration_seconds",
            &[("route", route)],
        )
        .snapshot()
        .quantile(0.99)
        * 1e3
}

fn main() {
    header(
        "fleet_scale: sharded multi-tenant fleet under replans",
        "Caladrius \"is designed to model multiple topologies concurrently\" — \
         scaled to a 1k-topology fleet with a cluster container budget",
    );
    let (topologies, shards) = if fast_mode() { (128, 4) } else { (1024, 8) };

    // Phase 1: stage once, feed every topology its full history.
    let staged = StagedWorkload::stage_wordcount();
    let minutes_per_topology = staged.minutes();
    let fleet = Arc::new(Fleet::new(FleetConfig {
        shards,
        ..FleetConfig::default()
    }));
    let feed_started = Instant::now();
    let mut bindings = Vec::with_capacity(topologies);
    let mut batch = MetricBatch::new(0);
    for i in 0..topologies {
        let name = format!("tenant-{i:04}");
        let mut topology = wordcount_topology(
            WordCountParallelism {
                spout: 8,
                splitter: 2,
                counter: 3,
            },
            6.0e6,
        );
        topology.name = name.clone();
        let metrics = fleet.register(topology);
        let bound = staged.bind(&metrics);
        for idx in 0..staged.minutes() {
            bound.fill(&staged, idx, &mut batch);
            fleet.ingest(&name, &batch).expect("registered");
        }
        bindings.push((name, bound));
    }
    let feed_secs = feed_started.elapsed().as_secs_f64();
    let total_batches = (topologies * minutes_per_topology) as f64;
    println!(
        "\nfeed: {topologies} topologies x {minutes_per_topology} minutes on {shards} shards \
         in {feed_secs:.2}s ({:.0} batches/s)",
        total_batches / feed_secs
    );

    let service = FleetService::new(Arc::clone(&fleet), 2);

    // Phase 2: replans under continuous ingest. `offset` pushes each
    // recycled staged minute past every previously ingested timestamp.
    let minute_ms = 60_000i64;
    let span_ms = (staged.minute_ts(staged.minutes() - 1) - staged.minute_ts(0)) + minute_ms;
    let mut offset = span_ms;
    let mut fresh_minute = 0usize;
    // Ships one fresh staged minute to the first `count` topologies.
    let ship_minute = |fresh_minute: &mut usize, offset: &mut i64, count: usize| {
        let started = Instant::now();
        let mut batch = MetricBatch::new(0);
        for (name, bound) in bindings.iter().take(count) {
            bound.fill_at(&staged, *fresh_minute, *offset, &mut batch);
            fleet.ingest(name, &batch).expect("registered");
        }
        *fresh_minute += 1;
        if *fresh_minute == staged.minutes() {
            *fresh_minute = 0;
            *offset += span_ms;
        }
        started.elapsed().as_secs_f64()
    };

    columns(
        "replan",
        &[
            "wall s",
            "granted",
            "unchanged",
            "drifted",
            "cold",
            "errors",
        ],
    );
    let run_replan = |label: &str, body: &str| -> (Value, f64) {
        let started = Instant::now();
        let result = replan(&service, body);
        let wall = started.elapsed().as_secs_f64();
        let field = |name: &str| result.get(name).and_then(Value::as_f64).unwrap();
        row(
            label,
            &[
                wall,
                field("total_granted"),
                field("unchanged"),
                field("drifted"),
                field("cold"),
                field("errors"),
            ],
        );
        (result, wall)
    };
    let partition = |result: &Value| -> (f64, f64, f64) {
        let field = |name: &str| result.get(name).and_then(Value::as_f64).unwrap();
        (field("unchanged"), field("drifted"), field("cold"))
    };

    let (cold, _) = run_replan("cold", "{}");
    assert_eq!(cold.get("errors").and_then(Value::as_f64), Some(0.0));
    assert_eq!(partition(&cold), (0.0, 0.0, topologies as f64));
    let peak_sum = cold.get("total_granted").and_then(Value::as_f64).unwrap();
    assert!(peak_sum >= topologies as f64, "grants: {peak_sum}");

    let ingest_secs = ship_minute(&mut fresh_minute, &mut offset, topologies);
    println!(
        "  continuous ingest: one fresh minute to all {topologies} topologies in \
         {ingest_secs:.3}s ({:.0} batches/s)",
        topologies as f64 / ingest_secs
    );
    let (refit, refit_wall) = run_replan("refit", "{}");
    assert_eq!(refit.get("errors").and_then(Value::as_f64), Some(0.0));
    assert_eq!(partition(&refit), (0.0, topologies as f64, 0.0));

    // Steady traffic: every topology's plan cache holds a fingerprint-
    // current timeline, so the replan is pure cache probes — no
    // forecasting, no search — and must come back identical, fast.
    let (warm, warm_wall) = run_replan("warm", "{}");
    assert_eq!(warm.get("errors").and_then(Value::as_f64), Some(0.0));
    assert_eq!(partition(&warm), (topologies as f64, 0.0, 0.0));
    assert_eq!(
        warm.get("total_granted").and_then(Value::as_f64),
        refit.get("total_granted").and_then(Value::as_f64),
        "cached plans must match the plans they memoise"
    );
    let warm_speedup = refit_wall / warm_wall;
    println!("  warm replan speedup vs refit: {warm_speedup:.1}x");
    assert!(
        warm_speedup >= 5.0,
        "steady-traffic replan speedup {warm_speedup:.1}x < 5x"
    );

    // 10 % drift: only the drifted tenants see fresh data; the rest are
    // served from their plan caches and skip the planner pool entirely.
    let drifted_count = (topologies / 10).max(1);
    ship_minute(&mut fresh_minute, &mut offset, drifted_count);
    let (drifted, drifted_wall) = run_replan("drift 10%", "{}");
    assert_eq!(drifted.get("errors").and_then(Value::as_f64), Some(0.0));
    assert_eq!(
        partition(&drifted),
        (
            (topologies - drifted_count) as f64,
            drifted_count as f64,
            0.0
        )
    );
    let drift_speedup = refit_wall / drifted_wall;
    println!("  drifted replan speedup vs refit: {drift_speedup:.1}x");
    assert!(
        drift_speedup >= 2.0,
        "10% drift replan speedup {drift_speedup:.1}x < 2x"
    );

    // Budget-constrained pass: three quarters of unconstrained demand.
    let budget = ((peak_sum * 0.75) as u32).max(1);
    let (tight, _) = run_replan("budgeted", &format!("{{\"budget\": {budget}}}"));
    let granted = tight.get("total_granted").and_then(Value::as_f64).unwrap();
    assert!(granted <= f64::from(budget), "{granted} > {budget}");

    // Route latency while all of the above ran: submission is async,
    // so the plan route's p99 must stay in request-handling territory.
    for _ in 0..64 {
        assert_eq!(
            service
                .handle(request("GET", "/fleet/health", "", &[]))
                .status,
            200
        );
    }
    let plan_p99 = route_p99_ms("/fleet/plan");
    let health_p99 = route_p99_ms("/fleet/health");
    println!(
        "  route p99: POST /fleet/plan {plan_p99:.2} ms (submit only), \
         GET /fleet/health {health_p99:.2} ms"
    );
    assert!(plan_p99 < 250.0, "plan submission p99 {plan_p99:.2} ms");
    assert!(health_p99 < 250.0, "health p99 {health_p99:.2} ms");

    // Per-shard cache behaviour across the replan rounds: model cache
    // (fitted models) and plan cache (whole timelines) side by side.
    columns(
        "shard",
        &[
            "topologies",
            "model hit",
            "model miss",
            "plan hit",
            "plan miss",
            "warm",
            "evict",
        ],
    );
    let mut plan_hits = 0u64;
    let mut warm_starts = 0u64;
    for shard in fleet.health().shards {
        plan_hits += shard.plan_cache.hits;
        warm_starts += shard.plan_cache.warm_starts;
        row(
            format!("shard {}", shard.shard),
            &[
                shard.topologies as f64,
                shard.model_cache.hits as f64,
                shard.model_cache.misses as f64,
                shard.plan_cache.hits as f64,
                shard.plan_cache.misses as f64,
                shard.plan_cache.warm_starts as f64,
                shard.plan_cache.evictions as f64,
            ],
        );
    }
    // The warm and drifted rounds were served from the plan caches; the
    // refit and drifted re-plans warm-started from their stale entries.
    assert!(
        plan_hits >= (2 * topologies - drifted_count) as u64,
        "plan-cache hits {plan_hits} too low"
    );
    assert!(
        warm_starts >= (topologies + drifted_count) as u64,
        "warm starts {warm_starts} too low"
    );

    // Phase 3: admission burst on a drained front door (empty fleet, so
    // admitted jobs cost nothing and the numbers isolate the edge).
    let burst = 256u32;
    let bucket = 64.0;
    let edge = FleetService::with_admission(
        Arc::new(Fleet::new(FleetConfig {
            shards: 1,
            ..FleetConfig::default()
        })),
        2,
        AdmissionConfig {
            enabled: true,
            bucket_capacity: bucket,
            refill_per_second: 0.0,
            queue_depth_watermark: f64::from(burst),
            slo_p99_seconds: f64::INFINITY,
            ..AdmissionConfig::default()
        },
    );
    let mut admitted = 0u32;
    let mut shed = 0u32;
    let burst_started = Instant::now();
    for _ in 0..burst {
        match edge
            .handle(request("POST", "/fleet/plan", "{}", &[]))
            .status
        {
            202 => admitted += 1,
            429 => shed += 1,
            other => panic!("unexpected status {other}"),
        }
    }
    let burst_secs = burst_started.elapsed().as_secs_f64();
    let shed_rate = f64::from(shed) / f64::from(burst);
    println!(
        "\nadmission burst: {burst} low-priority plan requests in {burst_secs:.3}s -> \
         {admitted} admitted, {shed} shed (shed rate {:.1}%)",
        shed_rate * 100.0
    );
    assert_eq!(
        admitted, bucket as u32,
        "bucket admits exactly its capacity"
    );
    assert!(shed_rate > 0.5, "burst must overrun the bucket");

    println!("\nfleet_scale: OK ({topologies} topologies, {shards} shards)");
}
