//! Figure 6 — instance backpressure time vs source throughput.
//!
//! Paper: "backpressure occurs when the source throughput reaches around
//! 11 million (the SP identified earlier). The time spent in backpressure
//! rises steeply from 0 to around 60000 milliseconds (1 minute) after it
//! is triggered" — i.e. the metric is bimodal, which is the assumption
//! behind treating the backpressure state as binary (§IV-B1).

use caladrius_bench::{columns, fast_mode, header, observe_many, row};
use caladrius_workload::wordcount::{wordcount_topology, WordCountParallelism};
use heron_sim::metrics::metric;

fn main() {
    header(
        "Fig. 6: instance backpressure time vs source throughput",
        "0 below SP ~ 11 M/min, then a steep rise towards ~60000 ms/min",
    );
    let parallelism = WordCountParallelism {
        spout: 8,
        splitter: 1,
        counter: 3,
    };
    let step = if fast_mode() { 4 } else { 1 };
    let rates: Vec<f64> = (1..=20).step_by(step).map(|m| m as f64 * 1.0e6).collect();

    columns(
        "source (M/min)",
        &["bp ms mean", "bp ms 0.9lo", "bp ms 0.9hi"],
    );
    let mut below = Vec::new();
    let mut above = Vec::new();
    for rate in &rates {
        let stats = observe_many(
            || wordcount_topology(parallelism, *rate),
            &[(metric::BACKPRESSURE_TIME, "splitter")],
            40,
            10,
        );
        let bp = stats[0];
        row(format!("{:.0}", rate / 1e6), &[bp.mean, bp.lo, bp.hi]);
        // Collect well away from the knee, where steady state is clean.
        if *rate <= 10.0e6 {
            below.push(bp.mean);
        } else if *rate >= 13.0e6 {
            above.push(bp.mean);
        }
    }

    let max_below = below.iter().cloned().fold(0.0, f64::max);
    let min_above = above.iter().cloned().fold(f64::INFINITY, f64::min);
    println!();
    println!("  below SP: max backpressure time {max_below:.0} ms/min (paper: 0)");
    println!("  above SP: min backpressure time {min_above:.0} ms/min (paper: ~60000)");
    assert!(
        max_below == 0.0,
        "no backpressure may appear below the knee"
    );
    assert!(
        min_above > 45_000.0,
        "above the knee the metric must sit near the 60000 ms ceiling (bimodality)"
    );
    println!("  bimodal step at the SP [shape OK]");
    println!("fig06: OK");
}
