//! model_fit: incremental vs full model refit under steady ingest.
//!
//! The watermark-advance path is the service's hot loop: every fresh
//! minute of metrics stales the cached models of a topology, and before
//! the delta-aware cache every advance meant a full refit over the
//! sliding observation window. This bench measures both paths on the
//! same store — a WordCount topology carrying more than 24 hours of
//! recorded history with the training window spanning a full day — and
//! gates the headline claim: absorbing a one-minute append through the
//! streaming sufficient statistics must be at least 5× faster than
//! refitting the window from scratch.
//!
//! Phases:
//!
//! 1. **Feed** — stage the reference WordCount sweep once and replay it
//!    cyclically (shifted past the previous cycle each round) until the
//!    store holds ≥ 24 h of recorded minutes.
//! 2. **Steady ingest** — alternate "ship one fresh minute" with a
//!    refit on two services over the same store: one rides the
//!    incremental (Stale) cache path, the other is invalidated every
//!    round so it refits cold. Wall times, the ≥ 5× gate, and the
//!    decoded-tail cache traffic are reported at the end.

use caladrius_bench::{columns, fast_mode, header, row};
use caladrius_core::config::CaladriusConfig;
use caladrius_core::providers::{SimMetricsProvider, StaticTracker};
use caladrius_core::Caladrius;
use caladrius_fleet::StagedWorkload;
use caladrius_tsdb::MetricBatch;
use caladrius_workload::wordcount::{wordcount_topology, WordCountParallelism};
use heron_sim::metrics::SimMetrics;
use std::sync::Arc;
use std::time::Instant;

const MINUTE_MS: i64 = 60_000;

fn main() {
    header(
        "model_fit: incremental refit vs full refit on steady ingest",
        "\"the model needs to be re-fitted as new data arrives\" — made \
         O(new minutes) by streaming sufficient statistics",
    );
    // ≥ 24 h of recorded minutes; the training window spans the day.
    let window_minutes = 1440u32;
    let target_minutes = if fast_mode() { 360 } else { 1500 };
    let refit_rounds = if fast_mode() { 10 } else { 30 };

    // Phase 1: stage once, replay cyclically into one topology's store.
    let staged = StagedWorkload::stage_wordcount();
    let metrics = SimMetrics::new("wordcount");
    let bound = staged.bind(&metrics);
    let span_ms = (staged.minute_ts(staged.minutes() - 1) - staged.minute_ts(0)) + MINUTE_MS;
    let feed_started = Instant::now();
    let mut batch = MetricBatch::new(0);
    let mut shipped = 0usize;
    let mut offset = 0i64;
    while shipped < target_minutes {
        for idx in 0..staged.minutes() {
            bound.fill_at(&staged, idx, offset, &mut batch);
            metrics.ingest(&batch);
            shipped += 1;
            if shipped == target_minutes {
                break;
            }
        }
        offset += span_ms;
    }
    let history_hours = shipped as f64 / 60.0;
    println!(
        "\nfeed: {shipped} recorded minutes ({history_hours:.1} h of data) in {:.2}s",
        feed_started.elapsed().as_secs_f64()
    );

    // Two services over the same store: one rides the incremental cache
    // path, the other is invalidated per round so every refit is cold.
    let service = || {
        Caladrius::with_config(
            Arc::new(SimMetricsProvider::new(metrics.clone())),
            Arc::new(StaticTracker::new().with(wordcount_topology(
                WordCountParallelism {
                    spout: 8,
                    splitter: 2,
                    counter: 3,
                },
                26.0e6,
            ))),
            CaladriusConfig {
                source_window_minutes: window_minutes,
                ..CaladriusConfig::default()
            },
        )
    };
    let incremental = service();
    let full = service();

    // Cold fits populate both caches (and are themselves timed).
    let cold_started = Instant::now();
    incremental.fitted_models("wordcount").expect("cold fit");
    let cold_secs = cold_started.elapsed().as_secs_f64();
    full.fitted_models("wordcount").expect("cold fit");
    let tail_before = metrics.db().tail_cache_stats();

    // Phase 2: steady ingest — one fresh minute per round, then one
    // refit on each service.
    let mut fresh_idx = shipped % staged.minutes();
    let mut inc_total = 0.0f64;
    let mut full_total = 0.0f64;
    columns("round", &["inc ms", "full ms", "speedup"]);
    for round in 0..refit_rounds {
        if fresh_idx == 0 {
            offset += span_ms;
        }
        bound.fill_at(&staged, fresh_idx, offset, &mut batch);
        metrics.ingest(&batch);
        fresh_idx = (fresh_idx + 1) % staged.minutes();

        let started = Instant::now();
        incremental.fitted_models("wordcount").expect("stale refit");
        let inc_secs = started.elapsed().as_secs_f64();
        inc_total += inc_secs;

        full.invalidate_model_cache(Some("wordcount"));
        let started = Instant::now();
        full.fitted_models("wordcount").expect("cold refit");
        let full_secs = started.elapsed().as_secs_f64();
        full_total += full_secs;

        if round < 5 || round == refit_rounds - 1 {
            row(
                format!("round {round}"),
                &[inc_secs * 1e3, full_secs * 1e3, full_secs / inc_secs],
            );
        }
    }

    // The incremental service must have ridden the Stale path on every
    // round — one cold fit, everything else absorbed as deltas.
    let stats = incremental.model_cache_stats();
    assert!(
        stats.incremental_fits > 0,
        "steady ingest must refit incrementally"
    );
    assert_eq!(
        stats.fits,
        stats.full_fits + stats.incremental_fits,
        "every fit is either full or incremental"
    );
    let tail = metrics.db().tail_cache_stats();
    assert!(
        tail.hits > tail_before.hits,
        "incremental refits must ride the decoded-tail cache"
    );

    let inc_mean_ms = inc_total / refit_rounds as f64 * 1e3;
    let full_mean_ms = full_total / refit_rounds as f64 * 1e3;
    let speedup = full_total / inc_total;
    println!(
        "\nsteady ingest over {refit_rounds} rounds ({window_minutes}-minute window, \
         {history_hours:.1} h history):"
    );
    println!("  cold fit:               {:.2} ms", cold_secs * 1e3);
    println!("  full refit (mean):      {full_mean_ms:.2} ms");
    println!("  incremental refit (mean): {inc_mean_ms:.3} ms");
    println!(
        "  incremental fits {} / full fits {} (incremental service)",
        stats.incremental_fits, stats.full_fits
    );
    println!(
        "  decoded-tail cache: +{} hits / +{} misses over the steady phase",
        tail.hits - tail_before.hits,
        tail.misses - tail_before.misses
    );
    println!("  speedup: {speedup:.1}x");
    assert!(
        speedup >= 5.0,
        "incremental refit speedup {speedup:.1}x < 5x"
    );

    println!("\nmodel_fit: OK");
}
