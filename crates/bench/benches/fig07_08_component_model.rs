//! Figures 7 and 8 — component (Splitter) throughput model and its
//! validation at new parallelisms.
//!
//! Fig. 7 (paper §V-C): observe the Splitter component at parallelism 3
//! over a source sweep (2 → 68 M tuples/min), fit the piecewise-linear
//! component model, and draw the predicted input/output lines for
//! parallelisms 2 and 4 by scaling (Eq. 9). Paper: p=3 knee ≈ 30 M
//! (ours: 33 M — the paper's own p=2/p=4 predictions use 18→22/36→44 M
//! knees, i.e. per-instance SP ≈ 11 M, same as ours).
//!
//! Fig. 8: deploy parallelisms 2 and 4 and compare the measured curves
//! with the predictions. Paper ST errors: 2.9 % (p=2) and 2.5 % (p=4).

use caladrius_bench::{columns, compare, fast_mode, header, observe_many, relative_error, row};
use caladrius_core::model::component::{ComponentModel, ComponentObservation, GroupingKind};
use caladrius_workload::wordcount::{
    wordcount_topology, WordCountParallelism, ALPHA, SPLITTER_CAPACITY_PER_MIN,
};
use heron_sim::metrics::metric;

/// Measures the Splitter component at one parallelism and source rate.
fn measure(splitter_p: u32, rate: f64) -> ComponentObservation {
    let parallelism = WordCountParallelism {
        spout: 8,
        splitter: splitter_p,
        counter: 8,
    };
    let stats = observe_many(
        || wordcount_topology(parallelism, rate),
        &[
            (metric::EXECUTE_COUNT, "splitter"),
            (metric::EMIT_COUNT, "splitter"),
            (metric::BACKPRESSURE_TIME, "splitter"),
        ],
        40,
        10,
    );
    ComponentObservation {
        source_rate: rate,
        input_rate: stats[0].mean,
        output_rate: stats[1].mean,
        per_instance_inputs: vec![stats[0].mean / f64::from(splitter_p); splitter_p as usize],
        backpressured: stats[2].mean > 1_000.0,
    }
}

fn main() {
    header(
        "Fig. 7: Splitter component model at p=3 + p=2/p=4 predictions",
        "piecewise linear; p=3 input knee at 3 x 11 M; predictions scale by gamma",
    );
    let step = if fast_mode() { 12.0e6 } else { 6.0e6 };
    let mut rate = 2.0e6;
    let mut observations = Vec::new();
    columns(
        "source (M/min)",
        &["input (M/min)", "output (M/min)", "backpressured"],
    );
    while rate <= 68.0e6 {
        let obs = measure(3, rate);
        row(
            format!("{:.0}", rate / 1e6),
            &[
                obs.input_rate / 1e6,
                obs.output_rate / 1e6,
                if obs.backpressured { 1.0 } else { 0.0 },
            ],
        );
        observations.push(obs);
        rate += step;
    }

    let model = ComponentModel::fit("splitter", 3, GroupingKind::Shuffle, &observations).unwrap();
    let sat = model.instance.saturation.expect("sweep saturates p=3");
    println!();
    let mut ok = true;
    ok &= compare("fitted alpha", ALPHA, model.instance.alpha, 0.02);
    ok &= compare(
        "p=3 component input knee (M/min)",
        3.0 * SPLITTER_CAPACITY_PER_MIN / 1e6,
        3.0 * sat.input_sp / 1e6,
        0.10,
    );

    // Predicted knees for p=2 and p=4 (paper: input knees 18 and 36 M in
    // its calibration; with SP=11 M/instance: 22 and 44 M).
    for p in [2u32, 4] {
        let knee = model.saturation_source_rate(p).unwrap().unwrap();
        println!(
            "  predicted p={p}: input knee {:.1} M/min, output plateau {:.1} M/min",
            knee / 1e6,
            model.predict(p, knee * 2.0).unwrap().output_rate / 1e6
        );
    }

    header(
        "Fig. 8: validation of the p=2 and p=4 predictions",
        "ST prediction errors 2.9% (p=2) and 2.5% (p=4)",
    );
    columns("config", &["predicted ST", "measured ST", "error %"]);
    for (p, probe) in [(2u32, 34.0e6), (4u32, 66.0e6)] {
        let predicted_st = model.predict(p, probe).unwrap().output_rate;
        let measured = measure(p, probe);
        let err = relative_error(predicted_st, measured.output_rate);
        row(
            format!("p={p}"),
            &[predicted_st / 1e6, measured.output_rate / 1e6, err * 100.0],
        );
        assert!(
            err < 0.05,
            "p={p} ST error {:.1}% exceeds the paper-comparable 5% band",
            err * 100.0
        );
        // And the linear region must also match.
        let linear_probe = 4.0e6 * f64::from(p);
        let predicted = model.predict(p, linear_probe).unwrap();
        let measured = measure(p, linear_probe);
        assert!(relative_error(predicted.output_rate, measured.output_rate) < 0.03);
    }
    assert!(ok, "figure 7 shape diverges from the paper");
    println!("\nfig07/fig08: OK (errors within the paper's few-percent regime)");
}
