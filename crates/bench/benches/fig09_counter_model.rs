//! Figure 9 — Counter component input throughput: observation at
//! parallelism 3 and prediction for parallelism 4.
//!
//! The Counter sits behind a fields-grouped connection; the paper
//! "observed the test dataset is unbiased fortunately, thus we use
//! Equation 9 for the sink bolt". We reproduce exactly that: observe the
//! input-throughput curve at p=3 (saturating around 3 × 70 M words/min),
//! verify the keys are unbiased, and predict/validate p=4.

use caladrius_bench::{columns, compare, fast_mode, header, observe_many_cfg, relative_error, row};
use caladrius_core::model::component::{ComponentModel, ComponentObservation, GroupingKind};
use caladrius_workload::wordcount::{
    wordcount_topology, WordCountParallelism, ALPHA, COUNTER_CAPACITY_PER_MIN,
};
use heron_sim::engine::SimConfig;
use heron_sim::metrics::metric;

/// Measures the Counter component. The Counter's source is the Splitter's
/// emission; we size the Splitter fleet so it never bottlenecks, and
/// express the sweep in Counter source words/min.
fn measure(counter_p: u32, counter_source_words: f64) -> ComponentObservation {
    let sentences = counter_source_words / ALPHA;
    let parallelism = WordCountParallelism {
        spout: 8,
        splitter: 8,
        counter: counter_p,
    };
    let queries: Vec<(&str, &str)> = vec![
        (metric::EXECUTE_COUNT, "counter"),
        (metric::EMIT_COUNT, "counter"),
        (metric::BACKPRESSURE_TIME, "counter"),
        (metric::EMIT_COUNT, "splitter"),
    ];
    // The Counter's word tuples are tiny (8 B), so its 100 MB queue holds
    // only seconds of work at 280 M words/min; a finer tick resolves the
    // drain/refill dynamics that 1 s ticks would alias into starvation.
    let config = SimConfig {
        ticks_per_second: 10,
        ..SimConfig::default()
    };
    let stats = observe_many_cfg(
        || wordcount_topology(parallelism, sentences),
        &config,
        &queries,
        40,
        10,
    );
    ComponentObservation {
        source_rate: stats[3].mean, // actual words offered by the splitter
        input_rate: stats[0].mean,
        output_rate: stats[1].mean,
        per_instance_inputs: vec![stats[0].mean / f64::from(counter_p); counter_p as usize],
        backpressured: stats[2].mean > 1_000.0,
    }
}

fn main() {
    header(
        "Fig. 9: Counter input throughput — observed p=3, predicted p=4",
        "p=3 saturates near 3 x 70 M = 210 M words/min; p=4 predicted at 280 M",
    );
    let step = if fast_mode() { 100.0e6 } else { 50.0e6 };
    let mut source = 50.0e6;
    let mut observations = Vec::new();
    columns("words (M/min)", &["counter in", "backpressured"]);
    while source <= 500.0e6 {
        let obs = measure(3, source);
        row(
            format!("{:.0}", source / 1e6),
            &[
                obs.input_rate / 1e6,
                if obs.backpressured { 1.0 } else { 0.0 },
            ],
        );
        observations.push(obs);
        source += step;
    }

    let model = ComponentModel::fit("counter", 3, GroupingKind::Fields, &observations).unwrap();
    println!();
    println!(
        "  observed key bias: {:.2}% (paper: 'the test dataset is unbiased')",
        model.bias() * 100.0
    );
    assert!(
        model.is_unbiased(),
        "the uniform-key corpus must register as unbiased"
    );
    let sat = model.instance.saturation.expect("sweep saturates p=3");
    let mut ok = true;
    ok &= compare(
        "p=3 saturation input (M words/min)",
        3.0 * COUNTER_CAPACITY_PER_MIN / 1e6,
        3.0 * sat.input_sp / 1e6,
        0.10,
    );

    // Prediction for p=4 via Eq. 9 (valid because the keys are unbiased).
    let predicted_knee = model.saturation_source_rate(4).unwrap().unwrap();
    println!(
        "  predicted p=4 saturation: {:.0} M words/min",
        predicted_knee / 1e6
    );
    ok &= compare(
        "p=4 predicted knee (M words/min)",
        4.0 * COUNTER_CAPACITY_PER_MIN / 1e6,
        predicted_knee / 1e6,
        0.10,
    );

    // Validate: deploy p=4 beyond its knee and in the linear regime.
    let saturated = measure(4, predicted_knee * 1.5);
    let err = relative_error(
        model.predict(4, saturated.source_rate).unwrap().input_rate,
        saturated.input_rate,
    );
    println!(
        "  p=4 saturated-input prediction error: {:.1}%",
        err * 100.0
    );
    assert!(err < 0.05);
    let linear = measure(4, predicted_knee * 0.5);
    let err = relative_error(
        model.predict(4, linear.source_rate).unwrap().input_rate,
        linear.input_rate,
    );
    println!("  p=4 linear-input prediction error: {:.1}%", err * 100.0);
    assert!(err < 0.05);
    assert!(ok, "figure 9 shape diverges from the paper");
    println!("\nfig09: OK");
}
