//! Traffic-forecast evaluation (extension).
//!
//! The paper depends on Prophet for the source-throughput forecast and
//! explicitly does not evaluate it ("the performance evaluation of
//! Caladrius' traffic prediction will not be discussed here"). Since this
//! repository substitutes its own Prophet-style implementation, this
//! bench validates the substitution: rolling-origin backtests on
//! strongly seasonal synthetic traffic (the regime §IV-A describes),
//! comparing the additive model against the statistics-summary model the
//! paper suggests for stable traffic, plus Holt-Winters and AR baselines.

use caladrius_bench::{columns, fast_mode, header, row};
use caladrius_forecast::ar::ArModel;
use caladrius_forecast::eval::{backtest, Accuracy, BacktestConfig};
use caladrius_forecast::holtwinters::{HoltWinters, HoltWintersConfig};
use caladrius_forecast::prophet::{Prophet, ProphetConfig};
use caladrius_forecast::seasonality::Seasonality;
use caladrius_forecast::stats::StatsSummaryModel;
use caladrius_forecast::{DataPoint, Forecaster};
use caladrius_workload::traffic::{with_gaps, with_outliers, SeasonalTraffic};

fn series(days: u32, step_minutes: u32) -> Vec<DataPoint> {
    let raw = SeasonalTraffic {
        base: 8.0e6,
        daily_amplitude: 0.4,
        weekend_delta: -0.25,
        growth_per_day: 0.01,
        noise: 0.03,
        seed: 0xF0CA,
    }
    .generate(days, step_minutes);
    // Production pathologies: 2% outlier spikes, 5% missing windows.
    let spiked = with_outliers(raw, 0.02, 4.0, 7);
    with_gaps(spiked, 0.05, 11)
        .into_iter()
        .map(|p| DataPoint::new(p.ts, p.tuples_per_min))
        .collect()
}

fn run(
    name: &str,
    model: &mut dyn Forecaster,
    data: &[DataPoint],
    config: BacktestConfig,
) -> Option<Accuracy> {
    match backtest_dyn(model, data, config) {
        Ok(acc) => {
            row(
                name,
                &[
                    acc.mape,
                    acc.mae / 1e6,
                    acc.rmse / 1e6,
                    acc.coverage * 100.0,
                    acc.n as f64,
                ],
            );
            Some(acc)
        }
        Err(e) => {
            println!("{name:>14}  (skipped: {e})");
            None
        }
    }
}

/// `backtest` is generic over `F: Forecaster`; re-expose it for trait
/// objects.
fn backtest_dyn(
    model: &mut dyn Forecaster,
    series: &[DataPoint],
    config: BacktestConfig,
) -> Result<Accuracy, caladrius_forecast::ForecastError> {
    struct Shim<'a>(&'a mut dyn Forecaster);
    impl Forecaster for Shim<'_> {
        fn fit(&mut self, history: &[DataPoint]) -> Result<(), caladrius_forecast::ForecastError> {
            self.0.fit(history)
        }
        fn predict(
            &self,
            timestamps: &[i64],
        ) -> Result<Vec<caladrius_forecast::ForecastPoint>, caladrius_forecast::ForecastError>
        {
            self.0.predict(timestamps)
        }
        fn name(&self) -> &'static str {
            "shim"
        }
    }
    backtest(&mut Shim(model), series, config)
}

fn main() {
    header(
        "Traffic forecast evaluation (Prophet-substitute validation)",
        "seasonal traffic 'lends itself well to prediction'; additive model beats naive summaries",
    );
    let step_minutes = 10u32;
    let days = if fast_mode() { 10 } else { 21 };
    let data = series(days, step_minutes);
    let per_day = (1440 / step_minutes) as usize;
    let config = BacktestConfig {
        initial_train: per_day * (days as usize - 3),
        horizon: per_day / 2, // 12-hour horizon
        step: per_day / 2,
    };
    println!(
        "{} days of {}-minute data, {} observations; 12h rolling-origin horizon\n",
        days,
        step_minutes,
        data.len()
    );
    columns(
        "model",
        &["MAPE %", "MAE (M)", "RMSE (M)", "coverage %", "n"],
    );

    let mut prophet = Prophet::new(ProphetConfig {
        seasonalities: vec![Seasonality::daily(6), Seasonality::weekly(3)],
        ..ProphetConfig::default()
    });
    let prophet_acc = run("prophet", &mut prophet, &data, config).expect("prophet fits");

    let mut mean_model = StatsSummaryModel::mean();
    let mean_acc = run("stats_mean", &mut mean_model, &data, config).expect("stats fits");

    let mut hw = HoltWinters::new(HoltWintersConfig {
        season_length: per_day,
        params: None,
        interval_width: 0.9,
    });
    run("holt_winters", &mut hw, &data, config);

    let mut ar = ArModel::new(per_day, 0.9);
    run("ar", &mut ar, &data, config);

    println!();
    println!(
        "  prophet MAPE {:.1}% vs stats-summary MAPE {:.1}%",
        prophet_acc.mape, mean_acc.mape
    );
    assert!(
        prophet_acc.mape < mean_acc.mape * 0.6,
        "the seasonal model must clearly beat the flat summary on seasonal traffic"
    );
    assert!(
        prophet_acc.mape < 12.0,
        "prophet MAPE {:.1}% too high",
        prophet_acc.mape
    );
    assert!(
        prophet_acc.coverage > 0.6,
        "interval coverage {:.0}% too low",
        prophet_acc.coverage * 100.0
    );
    println!("traffic_forecast_eval: OK");
}
