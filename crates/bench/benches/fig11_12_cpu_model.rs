//! Figures 11 and 12 — CPU-load observation, prediction and validation
//! (paper §V-E).
//!
//! Fig. 11: the Splitter's CPU load at parallelism 3 is linear in the
//! source rate until saturation; fitting `cpu = base + psi * input_rate`
//! and chaining it behind the throughput model yields predicted CPU
//! lines for parallelisms 2 and 4.
//!
//! Fig. 12: deploy parallelisms 2 and 4 and compare. Paper errors: 4.8 %
//! (p=2) and 3 % (p=4) — "higher than the output rate prediction error
//! ... because error has accumulated for the chained prediction steps".

use caladrius_bench::{columns, fast_mode, header, observe_many, relative_error, row};
use caladrius_core::providers::{SimMetricsProvider, StaticTracker};
use caladrius_core::Caladrius;
use caladrius_workload::wordcount::{wordcount_topology, WordCountParallelism};
use heron_sim::engine::{SimConfig, Simulation};
use heron_sim::metrics::{metric, SimMetrics};
use std::sync::Arc;

fn measure_cpu(splitter_p: u32, rate: f64) -> f64 {
    let parallelism = WordCountParallelism {
        spout: 8,
        splitter: splitter_p,
        counter: 6,
    };
    let stats = observe_many(
        || wordcount_topology(parallelism, rate),
        &[(metric::CPU_LOAD, "splitter")],
        35,
        10,
    );
    stats[0].mean
}

fn main() {
    header(
        "Fig. 11: Splitter CPU load at p=3 with p=2/p=4 predicted lines",
        "CPU ~ linear in source rate until saturation, then flat",
    );

    // Observation deployment at p=3 over a sweep.
    let observed = WordCountParallelism {
        spout: 8,
        splitter: 3,
        counter: 6,
    };
    let metrics = SimMetrics::new("wordcount");
    let legs: Vec<f64> = if fast_mode() {
        vec![10.0e6, 22.0e6, 40.0e6]
    } else {
        vec![6.0e6, 12.0e6, 18.0e6, 24.0e6, 30.0e6, 40.0e6]
    };
    for (leg, rate) in legs.iter().enumerate() {
        let mut sim =
            Simulation::new(wordcount_topology(observed, *rate), SimConfig::default()).unwrap();
        sim.skip_to_minute(leg as u64 * 100);
        sim.warmup_minutes(35);
        sim.run_minutes_into(10, &metrics);
    }
    let caladrius = Caladrius::new(
        Arc::new(SimMetricsProvider::new(metrics)),
        Arc::new(StaticTracker::new().with(wordcount_topology(observed, 30.0e6))),
    );
    let throughput = caladrius.fit_topology_model("wordcount").unwrap();
    let splitter = throughput.component_model("splitter").unwrap();
    let cpu = caladrius.fit_cpu_models("wordcount").unwrap()["splitter"];
    println!(
        "fitted CPU model: cpu = {:.3} + {:.3e} * input_rate (cores/instance)",
        cpu.base, cpu.psi
    );
    // The observed p=3 CPU curve with predicted lines for p=2 and p=4.
    columns(
        "source (M/min)",
        &["p=3 observed", "p=2 predicted", "p=4 predicted"],
    );
    for rate in &legs {
        let p3 = cpu.predict_component(splitter, 3, *rate).unwrap();
        let p2 = cpu.predict_component(splitter, 2, *rate).unwrap();
        let p4 = cpu.predict_component(splitter, 4, *rate).unwrap();
        row(format!("{:.0}", rate / 1e6), &[p3, p2, p4]);
    }

    header(
        "Fig. 12: validation of the CPU predictions at p=2 and p=4",
        "errors 4.8% (p=2) and 3% (p=4): chained predictions accumulate error",
    );
    columns(
        "config",
        &["rate (M/min)", "predicted", "measured", "error %"],
    );
    let mut worst: f64 = 0.0;
    for p in [2u32, 4] {
        for rate in [8.0e6, 16.0e6, 28.0e6] {
            let predicted = cpu.predict_component(splitter, p, rate).unwrap();
            let measured = measure_cpu(p, rate);
            let err = relative_error(predicted, measured);
            worst = worst.max(err);
            row(
                format!("p={p}"),
                &[rate / 1e6, predicted, measured, err * 100.0],
            );
        }
    }
    println!();
    println!(
        "  worst CPU prediction error: {:.1}% (paper: up to 4.8%)",
        worst * 100.0
    );
    assert!(
        worst < 0.10,
        "CPU error {:.1}% outside the paper-comparable band",
        worst * 100.0
    );
    println!("fig11/fig12: OK");
}
