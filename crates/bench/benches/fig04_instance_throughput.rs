//! Figure 4 — instance throughput (input and output) vs topology source
//! throughput.
//!
//! Setup (paper §V-B): Splitter parallelism 1, Counter parallelism 3,
//! spout parallelism 8, source rate swept 1 → 20 M tuples/min in 1 M
//! steps, repeated observations with 90 % confidence bands.
//!
//! Expected shape: both series rise linearly to the saturation point
//! (paper: SP ≈ 11 M tuples/min), then flatten; the output plateau is
//! the saturation throughput (paper: ST ≈ 84 M tuples/min ≈ 11 M × 7.63).

use caladrius_bench::{columns, compare, fast_mode, header, observe_many, row, Ci};
use caladrius_core::model::instance::{InstanceModel, InstanceObservation};
use caladrius_workload::wordcount::{
    wordcount_topology, WordCountParallelism, ALPHA, SPLITTER_CAPACITY_PER_MIN,
};
use heron_sim::metrics::metric;

fn main() {
    header(
        "Fig. 4: instance input/output throughput vs source throughput",
        "linear to SP ~ 11 M/min, then flat; output plateau (ST) ~ 84 M/min",
    );
    let parallelism = WordCountParallelism {
        spout: 8,
        splitter: 1,
        counter: 3,
    };
    let step = if fast_mode() { 4 } else { 1 };
    let rates: Vec<f64> = (1..=20).step_by(step).map(|m| m as f64 * 1.0e6).collect();

    columns(
        "source (M/min)",
        &[
            "in mean",
            "in 0.9lo",
            "in 0.9hi",
            "out mean",
            "out 0.9lo",
            "out 0.9hi",
        ],
    );
    let mut fit_data = Vec::new();
    for rate in &rates {
        let stats: Vec<Ci> = observe_many(
            || wordcount_topology(parallelism, *rate),
            &[
                (metric::EXECUTE_COUNT, "splitter"),
                (metric::EMIT_COUNT, "splitter"),
                (metric::BACKPRESSURE_TIME, "splitter"),
            ],
            40,
            10,
        );
        let (input, output, bp) = (stats[0], stats[1], stats[2]);
        row(
            format!("{:.0}", rate / 1e6),
            &[
                input.mean / 1e6,
                input.lo / 1e6,
                input.hi / 1e6,
                output.mean / 1e6,
                output.lo / 1e6,
                output.hi / 1e6,
            ],
        );
        fit_data.push(InstanceObservation {
            source_rate: *rate,
            input_rate: input.mean,
            output_rate: output.mean,
            backpressured: bp.mean > 1_000.0,
        });
    }

    // Locate the knee exactly the way Caladrius would: fit the instance
    // model on the sweep.
    let model = InstanceModel::fit(&fit_data).expect("sweep contains both regimes");
    let sat = model.saturation.expect("sweep saturates the instance");
    println!();
    let mut ok = true;
    ok &= compare(
        "SP (M tuples/min)",
        SPLITTER_CAPACITY_PER_MIN / 1e6,
        sat.input_sp / 1e6,
        0.10,
    );
    ok &= compare(
        "ST (M tuples/min)",
        SPLITTER_CAPACITY_PER_MIN * ALPHA / 1e6,
        sat.output_st / 1e6,
        0.10,
    );
    ok &= compare("alpha (out/in slope)", ALPHA, model.alpha, 0.02);
    assert!(ok, "figure 4 shape diverges from the paper");
    println!("fig04: OK");
}
