//! Scaling-convergence ablation (extension).
//!
//! The paper's introduction motivates Caladrius with the cost of
//! trial-based tuning: reactive systems like Dhalion "use several scaling
//! rounds to converge on the users' expected throughput SLO, which is a
//! time-consuming process", while a dry-run model evaluation replaces the
//! trial ladder. This bench quantifies that claim on the simulator: both
//! policies start from the same undersized WordCount deployment and must
//! reach an SLO at the target rate; we count deployments and simulated
//! stabilisation time.

use caladrius_autoscale::harness::{run_to_convergence, ConvergenceResult, HarnessConfig};
use caladrius_autoscale::modelled::{ModelledConfig, ModelledScaler};
use caladrius_autoscale::reactive::ReactiveScaler;
use caladrius_bench::{columns, fast_mode, header, row};
use caladrius_workload::wordcount::{wordcount_topology, WordCountParallelism};
use heron_sim::topology::Topology;

fn undersized() -> Topology {
    // Splitter p=1 (11 M/min) and Counter p=4 (280 M words/min) against a
    // 60 M/min target that needs roughly splitter 6-7 and counter 7-8.
    wordcount_topology(
        WordCountParallelism {
            spout: 8,
            splitter: 1,
            counter: 4,
        },
        60.0e6,
    )
}

fn print_result(result: &ConvergenceResult) {
    row(
        result.policy.clone(),
        &[
            result.deployments as f64,
            result.simulated_minutes as f64,
            if result.converged { 1.0 } else { 0.0 },
            result.final_sink_output / 1e6,
        ],
    );
    let parallelisms: Vec<String> = result
        .final_parallelisms
        .iter()
        .map(|(n, p)| format!("{n}={p}"))
        .collect();
    println!("{:>14}  final: {}", "", parallelisms.join(", "));
}

fn main() {
    header(
        "Scaling convergence: Dhalion-style trials vs Caladrius dry-run",
        "reactive scalers 'use several scaling rounds to converge'; modelling needs ~one planned redeploy",
    );
    let target = 60.0e6;
    let config = if fast_mode() {
        HarnessConfig {
            stabilize_minutes: 15,
            observe_minutes: 5,
            max_rounds: 15,
        }
    } else {
        HarnessConfig {
            stabilize_minutes: 30,
            observe_minutes: 10,
            max_rounds: 20,
        }
    };
    println!(
        "target {:.0} M tuples/min; each round costs {} simulated minutes\n",
        target / 1e6,
        config.stabilize_minutes + config.observe_minutes
    );
    columns(
        "policy",
        &["deployments", "sim minutes", "converged", "sink (M/min)"],
    );

    let mut reactive = ReactiveScaler::default();
    let reactive_result = run_to_convergence(&mut reactive, undersized(), target, config).unwrap();
    print_result(&reactive_result);

    let mut modelled = ModelledScaler::new(ModelledConfig {
        target_rate: target,
        headroom: 1.1,
        max_parallelism: 64,
    });
    let modelled_result = run_to_convergence(&mut modelled, undersized(), target, config).unwrap();
    print_result(&modelled_result);

    println!();
    assert!(
        reactive_result.converged,
        "reactive must converge eventually"
    );
    assert!(modelled_result.converged, "modelled must converge");
    assert!(
        modelled_result.deployments < reactive_result.deployments,
        "modelling must beat trial-and-error: {} vs {}",
        modelled_result.deployments,
        reactive_result.deployments
    );
    let speedup =
        reactive_result.simulated_minutes as f64 / modelled_result.simulated_minutes as f64;
    println!(
        "  tuning-loop speedup from modelling: {speedup:.1}x fewer stabilisation minutes \
         ({} vs {} deployments)",
        modelled_result.deployments, reactive_result.deployments
    );
    println!("scaling_convergence: OK");
}
