//! Figure 5 — instance output/input ratio vs instance source throughput.
//!
//! The ratio is the Splitter's I/O coefficient, i.e. the average sentence
//! length of the corpus. Paper: between 7.63 and 7.64 everywhere, "can be
//! roughly treated as a constant value", with a slight dip in the
//! non-saturation interval attributed to gateway-thread contention.

use caladrius_bench::{columns, compare, fast_mode, header, observe_many, row};
use caladrius_workload::wordcount::{wordcount_topology, WordCountParallelism, ALPHA};
use heron_sim::metrics::metric;

fn main() {
    header(
        "Fig. 5: instance output/input ratio vs source throughput",
        "ratio ~ 7.63-7.64 (mean sentence length), approximately constant",
    );
    let parallelism = WordCountParallelism {
        spout: 8,
        splitter: 1,
        counter: 3,
    };
    let step = if fast_mode() { 4 } else { 1 };
    let rates: Vec<f64> = (1..=20).step_by(step).map(|m| m as f64 * 1.0e6).collect();

    columns(
        "source (M/min)",
        &["ratio mean", "ratio 0.9lo", "ratio 0.9hi"],
    );
    let mut ratios = Vec::new();
    for rate in &rates {
        // Ratio computed per repeat from the same runs (input & output
        // noise are independent observations, as in a real metrics path).
        let stats = observe_many(
            || wordcount_topology(parallelism, *rate),
            &[
                (metric::EMIT_COUNT, "splitter"),
                (metric::EXECUTE_COUNT, "splitter"),
            ],
            40,
            10,
        );
        let ratio = stats[0].mean / stats[1].mean;
        row(
            format!("{:.0}", rate / 1e6),
            &[ratio, stats[0].lo / stats[1].hi, stats[0].hi / stats[1].lo],
        );
        ratios.push(ratio);
    }

    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!();
    println!("  ratio range across the sweep: [{min:.4}, {max:.4}]");
    let mut ok = true;
    ok &= compare(
        "mean ratio",
        ALPHA,
        ratios.iter().sum::<f64>() / ratios.len() as f64,
        0.01,
    );
    // The paper's fluctuation band is ~0.05 wide (7.63-7.68 over the
    // whole figure); ours must be comparably tight.
    let spread_ok = (max - min) / ALPHA < 0.02;
    println!(
        "  ratio spread {:.3}% of alpha {}",
        (max - min) / ALPHA * 100.0,
        if spread_ok {
            "[shape OK]"
        } else {
            "[DIVERGES]"
        }
    );
    ok &= spread_ok;
    assert!(ok, "figure 5 shape diverges from the paper");
    println!("fig05: OK");
}
