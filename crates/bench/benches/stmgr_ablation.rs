//! Stream-manager bottleneck ablation (extension).
//!
//! The paper's first modelling assumption (§IV-B1) is that "the
//! throughput bottleneck is not the stream manager", justified by the
//! operating regime: "almost all users in the field allocate a large
//! number of containers to their topologies", so each stream manager
//! serves few instances. This bench tests both sides of the assumption
//! with the simulator's finite-capacity stream managers:
//!
//! * **spread** deployment (many containers, few instances each): the
//!   instance-level model predicts throughput accurately;
//! * **consolidated** deployment (everything on one container): the
//!   shared stream manager saturates first and the instance-level model
//!   overpredicts — quantifying exactly when Caladrius's assumption (and
//!   the deployment practice that justifies it) is load-bearing.

use caladrius_bench::{columns, header, relative_error, row};
use caladrius_core::providers::{SimMetricsProvider, StaticTracker};
use caladrius_core::Caladrius;
use caladrius_tsdb::Aggregation;
use caladrius_workload::wordcount::{wordcount_topology, WordCountParallelism, ALPHA};
use heron_sim::engine::{SimConfig, Simulation};
use heron_sim::metrics::{metric, SimMetrics};
use heron_sim::packing::PackingAlgorithm;
use std::collections::HashMap;
use std::sync::Arc;

/// Stream-manager routing capacity: ample for one or two instances per
/// container, saturating when 14 instances share one.
const STMGR_CAPACITY: f64 = 2.0e6; // tuples/sec

fn run(containers: usize, rate_per_min: f64) -> (f64, f64) {
    let parallelism = WordCountParallelism {
        spout: 8,
        splitter: 3,
        counter: 3,
    };
    let cfg = SimConfig {
        packing: Some(PackingAlgorithm::RoundRobin {
            num_containers: containers,
        }),
        stmgr_capacity: Some(STMGR_CAPACITY),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(wordcount_topology(parallelism, rate_per_min), cfg)
        .expect("ablation topology is valid");
    sim.warmup_minutes(40);
    let metrics = sim.run_minutes(10);
    let mean = |name: &str, component: &str| {
        let series = metrics.component_sum(name, Some(component), 0, i64::MAX);
        Aggregation::Mean.apply(series.iter().map(|s| s.value))
    };
    (
        mean(metric::EXECUTE_COUNT, "splitter"),
        mean(metric::EXECUTE_COUNT, "counter"),
    )
}

/// Instance-level model prediction fitted from a *spread* deployment (the
/// regime the paper's models are built for).
fn fitted_prediction(rate_per_min: f64) -> f64 {
    let parallelism = WordCountParallelism {
        spout: 8,
        splitter: 3,
        counter: 3,
    };
    let metrics = SimMetrics::new("wordcount");
    for (leg, rate) in [8.0e6, 16.0e6, 24.0e6, 30.0e6, 40.0e6]
        .into_iter()
        .enumerate()
    {
        let cfg = SimConfig {
            packing: Some(PackingAlgorithm::RoundRobin { num_containers: 14 }),
            stmgr_capacity: Some(STMGR_CAPACITY),
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(wordcount_topology(parallelism, rate), cfg).unwrap();
        sim.skip_to_minute(leg as u64 * 100);
        sim.warmup_minutes(40);
        sim.run_minutes_into(10, &metrics);
    }
    let caladrius = Caladrius::new(
        Arc::new(SimMetricsProvider::new(metrics)),
        Arc::new(StaticTracker::new().with(wordcount_topology(parallelism, rate_per_min))),
    );
    let model = caladrius.fit_topology_model("wordcount").unwrap();
    model
        .predict(&HashMap::new(), rate_per_min)
        .unwrap()
        .sink_output_rate
}

fn main() {
    header(
        "Stream-manager bottleneck ablation (paper assumption §IV-B1)",
        "'the stream manager is not a bottleneck' holds with few instances per container",
    );
    // 20 M sentences/min: below the splitter knee (33 M at p=3), so the
    // only possible bottleneck is the stream manager.
    let rate = 20.0e6;
    let predicted = fitted_prediction(rate);
    println!(
        "instance-level model prediction at {:.0} M/min: {:.1} M words/min\n",
        rate / 1e6,
        predicted / 1e6
    );

    columns(
        "containers",
        &["splitter in (M)", "counter in (M)", "model error %"],
    );
    let mut spread_err = 0.0;
    let mut consolidated_err = 0.0;
    for containers in [14usize, 7, 2, 1] {
        let (splitter_in, counter_in) = run(containers, rate);
        let err = relative_error(predicted, counter_in);
        row(
            containers.to_string(),
            &[splitter_in / 1e6, counter_in / 1e6, err * 100.0],
        );
        if containers == 14 {
            spread_err = err;
        }
        if containers == 1 {
            consolidated_err = err;
        }
    }

    println!();
    println!(
        "  spread (14 containers): model error {:.1}% — assumption holds",
        spread_err * 100.0
    );
    println!(
        "  consolidated (1 container): model error {:.0}% — the shared stream \
         manager is the real bottleneck and the instance model overpredicts",
        consolidated_err * 100.0
    );
    assert!(spread_err < 0.05, "spread deployment must match the model");
    assert!(
        consolidated_err > 0.2,
        "consolidation must break the assumption measurably (got {:.0}%)",
        consolidated_err * 100.0
    );
    // Sanity: the unthrottled expectation for reference.
    let unthrottled = rate * ALPHA;
    println!(
        "  (unthrottled counter input would be {:.1} M words/min)",
        unthrottled / 1e6
    );
    println!("stmgr_ablation: OK");
}
