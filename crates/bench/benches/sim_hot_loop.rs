//! Simulator hot-loop throughput: SoA kernel vs the retained seed kernel.
//!
//! The engine's per-tick loop was rebuilt as a flat struct-of-arrays
//! kernel (CSR edge tables, hoisted per-instance constants, reusable
//! scratch buffers), and — just as important for planner throughput —
//! made *reusable*: `Simulation::reset_with` rewinds a built simulation
//! to a new window's rate without re-packing or re-routing, and the
//! per-run sink handles are cached across runs against the same store.
//! `heron_sim::reference::ReferenceSimulation` keeps the seed kernel
//! verbatim, which also means the seed's usage model: every window
//! builds a topology, packs it, registers its series and simulates.
//!
//! This bench therefore measures both kernels the way the planner uses
//! them, replaying a sequence of 30-minute windows whose offered rate
//! changes window to window:
//!
//! * `seed` — fresh simulation + fresh store per window (the pre-rewrite
//!   `planner::replay` pattern, and the only mode the seed kernel has);
//! * `soa` — one pooled simulation + one store, truncated between
//!   windows (`planner::replay`'s pattern after the rewrite), with
//!   macro-stepping off: every tick executes exactly and every emitted
//!   sample is bit-identical to the seed kernel's (enforced by
//!   `tests/sim_kernel_equivalence.rs`);
//! * `soa+macro` — the same with `SimConfig::macro_step` on, reported as
//!   simulated (executed + skipped) ticks per second.
//!
//! Acceptance floor for the rewrite: the exact (macro off) SoA kernel
//! sustains at least 2x the seed kernel's ticks/sec.

use caladrius_bench::{columns, fast_mode, header, repeats, row};
use caladrius_workload::diamond::{diamond_topology, DiamondParallelism};
use caladrius_workload::traffic::DiurnalTraffic;
use caladrius_workload::wordcount::{
    wordcount_topology, wordcount_topology_with, WordCountParallelism,
};
use heron_sim::engine::{SimConfig, Simulation};
use heron_sim::metrics::SimMetrics;
use heron_sim::profiles::RateProfile;
use heron_sim::reference::ReferenceSimulation;
use heron_sim::topology::Topology;
use std::time::Instant;

/// Windows per replay sequence; rates sweep 0.75x..1.10x of the base so
/// every window rewinds the pooled sim to a different (healthy) load.
const WINDOWS: usize = 8;

fn window_rates(base: f64) -> Vec<f64> {
    (0..WINDOWS)
        .map(|w| base * (0.75 + 0.05 * w as f64))
        .collect()
}

/// Best-of-N wall-clock seconds for one closure.
fn best_secs(n: usize, mut f: impl FnMut()) -> f64 {
    (0..n.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

struct Measurement {
    /// Wall-clock ticks/sec actually executed.
    executed_per_sec: f64,
    /// Simulated ticks/sec covered (executed + macro-skipped).
    simulated_per_sec: f64,
}

/// Seed pattern: every window constructs the topology at the window's
/// rate, packs a fresh simulation and registers a fresh store.
fn measure_reference(
    build: &dyn Fn(f64) -> Topology,
    rates: &[f64],
    minutes: u64,
    reps: usize,
) -> Measurement {
    let ticks = (rates.len() as u64 * minutes * 60) as f64;
    let secs = best_secs(reps, || {
        for &rate in rates {
            let topology = build(rate);
            let metrics = SimMetrics::new(topology.name.clone());
            let mut sim = ReferenceSimulation::new(topology, SimConfig::default()).unwrap();
            sim.run_minutes_into(minutes, &metrics);
        }
    });
    Measurement {
        executed_per_sec: ticks / secs,
        simulated_per_sec: ticks / secs,
    }
}

/// Rewrite pattern: one pooled simulation and store for the whole
/// sequence; each window truncates the store and rewinds via
/// `reset_with` (pool fill — construction + registration — is included
/// in the first window).
fn measure_soa(
    build: &dyn Fn(f64) -> Topology,
    rates: &[f64],
    minutes: u64,
    reps: usize,
    macro_step: bool,
) -> Measurement {
    let config = SimConfig {
        macro_step,
        ..SimConfig::default()
    };
    let mut executed = 0u64;
    let secs = best_secs(reps, || {
        let topology = build(rates[0]);
        let metrics = SimMetrics::new(topology.name.clone());
        let mut sim = Simulation::new(topology, config.clone()).unwrap();
        let before = sim.ticks_executed();
        for &rate in rates {
            metrics.db().truncate_before(i64::MAX).unwrap();
            sim.reset_with(&[], rate).unwrap();
            sim.run_minutes_into(minutes, &metrics);
        }
        executed = sim.ticks_executed() - before;
    });
    Measurement {
        executed_per_sec: executed as f64 / secs,
        simulated_per_sec: (rates.len() as u64 * minutes * 60) as f64 / secs,
    }
}

/// Diurnal pattern: the spout follows a sinusoidal day, so the
/// constant-rate `reset_with` rewind does not apply — each window
/// rewinds the pooled simulation via `reset_with_profile` with the
/// window's scaled profile (the planner's pooled idiom). One priming
/// window runs before the clock starts so the one-time costs every
/// kernel shares — series registration, table packing, the event
/// kernel's flow-term build — don't skew the steady-state comparison.
fn measure_diurnal(
    base: &Topology,
    profiles: &[RateProfile],
    minutes: u64,
    reps: usize,
    config: &SimConfig,
) -> Measurement {
    let metrics = SimMetrics::new(base.name.clone());
    let mut sim = Simulation::new(base.clone(), config.clone()).unwrap();
    sim.run_minutes_into(1, &metrics);
    let mut executed = 0u64;
    let secs = best_secs(reps, || {
        let before = sim.ticks_executed();
        for profile in profiles {
            metrics.db().truncate_before(i64::MAX).unwrap();
            sim.reset_with_profile(&[], profile).unwrap();
            sim.run_minutes_into(minutes, &metrics);
        }
        executed = sim.ticks_executed() - before;
    });
    Measurement {
        executed_per_sec: executed as f64 / secs,
        simulated_per_sec: (profiles.len() as u64 * minutes * 60) as f64 / secs,
    }
}

fn main() {
    header(
        "Simulator hot-loop throughput (SoA kernel vs seed kernel)",
        "extension: the modelling substrate itself must be cheap to evaluate",
    );
    let minutes = if fast_mode() { 5 } else { 30 };
    let reps = repeats();
    println!(
        "{WINDOWS} windows x {minutes} min, best of {reps} repeats; \
         kticks/s = 1000 simulated ticks per wall second\n"
    );

    type BuildFn = Box<dyn Fn(f64) -> Topology>;
    let workloads: [(&str, BuildFn, f64); 2] = [
        (
            "wordcount",
            Box::new(|rate| wordcount_topology(WordCountParallelism::default(), rate)),
            8.0e6,
        ),
        (
            "diamond",
            Box::new(|rate| diamond_topology(DiamondParallelism::default(), rate)),
            12.0e6,
        ),
    ];

    let mut min_speedup = f64::INFINITY;
    for (name, build, base_rate) in &workloads {
        let rates = window_rates(*base_rate);
        println!("[{name}]");
        columns("kernel", &["exec kticks/s", "sim kticks/s", "vs seed"]);
        let seed = measure_reference(build.as_ref(), &rates, minutes, reps);
        row(
            "seed",
            &[
                seed.executed_per_sec / 1e3,
                seed.simulated_per_sec / 1e3,
                1.0,
            ],
        );
        let soa = measure_soa(build.as_ref(), &rates, minutes, reps, false);
        let speedup = soa.executed_per_sec / seed.executed_per_sec;
        min_speedup = min_speedup.min(speedup);
        row(
            "soa",
            &[
                soa.executed_per_sec / 1e3,
                soa.simulated_per_sec / 1e3,
                speedup,
            ],
        );
        let fast = measure_soa(build.as_ref(), &rates, minutes, reps, true);
        row(
            "soa+macro",
            &[
                fast.executed_per_sec / 1e3,
                fast.simulated_per_sec / 1e3,
                fast.simulated_per_sec / seed.simulated_per_sec,
            ],
        );
        println!();
    }

    println!("  worst-case SoA speedup vs seed kernel (macro off): {min_speedup:.2}x");
    assert!(
        min_speedup >= 2.0,
        "SoA kernel must sustain at least 2x the seed kernel (got {min_speedup:.2}x)"
    );

    // Diurnal workload on a wide deployment: the rate never settles, so
    // steady-state macro-stepping cannot engage (~1x) — only the event
    // scheduler's closed-form advancement between breakpoint events
    // pays off, and it pays most where exact ticks are expensive (tick
    // cost grows with routing pairs, closed form with instances).
    let wide = WordCountParallelism {
        spout: 256,
        splitter: 64,
        counter: 96,
    };
    let diurnal_profile = |rate_per_min: f64| {
        DiurnalTraffic {
            base_rate: rate_per_min / 60.0,
            amplitude: 0.25,
            period_secs: 600,
            phase_secs: 0,
            knots_per_period: 12,
        }
        .to_profile(30 * 60)
    };
    let profiles: Vec<_> = window_rates(32.0 * 6.0e6)
        .into_iter()
        .map(diurnal_profile)
        .collect();
    let base = wordcount_topology_with(wide, profiles[0].clone(), None);
    println!("[wordcount x32, diurnal spout]");
    columns("kernel", &["exec kticks/s", "sim kticks/s", "vs exact"]);
    let exact_cfg = SimConfig::default();
    let macro_cfg = SimConfig {
        macro_step: true,
        ..SimConfig::default()
    };
    let event_cfg = SimConfig {
        event_mode: true,
        ..SimConfig::default()
    };
    let exact = measure_diurnal(&base, &profiles, minutes, reps, &exact_cfg);
    row(
        "exact",
        &[
            exact.executed_per_sec / 1e3,
            exact.simulated_per_sec / 1e3,
            1.0,
        ],
    );
    let stepped = measure_diurnal(&base, &profiles, minutes, reps, &macro_cfg);
    row(
        "soa+macro",
        &[
            stepped.executed_per_sec / 1e3,
            stepped.simulated_per_sec / 1e3,
            stepped.simulated_per_sec / exact.simulated_per_sec,
        ],
    );
    let event = measure_diurnal(&base, &profiles, minutes, reps, &event_cfg);
    let event_speedup = event.simulated_per_sec / exact.simulated_per_sec;
    row(
        "soa+event",
        &[
            event.executed_per_sec / 1e3,
            event.simulated_per_sec / 1e3,
            event_speedup,
        ],
    );
    println!("\n  event-scheduler speedup vs exact kernel on diurnal load: {event_speedup:.2}x");
    assert!(
        event_speedup >= 10.0,
        "event mode must cover the diurnal workload at least 10x faster than \
         exact ticking (got {event_speedup:.2}x)"
    );
    println!("sim_hot_loop: OK");
}
