//! Structured-parallelism benchmark: the compute-plane paths that fan
//! out on `caladrius-exec` pools — horizon planning, sim-replay
//! validation, and the cold model fit — timed on a forced 1-thread
//! pool (the sequential reference) vs a multi-thread pool.
//!
//! The determinism suite (`tests/exec_determinism.rs`) proves both
//! pools return byte-identical output, so these numbers compare *only*
//! wall-clock. On hosts with a single hardware thread the multi-thread
//! pool degrades to real threads contending for one core, so expect
//! parity there and ≥ 2× on ≥ 4 hardware threads (replay windows are
//! fully independent simulations).

use caladrius_core::providers::metrics::SimMetricsProvider;
use caladrius_core::providers::tracker::StaticTracker;
use caladrius_core::service::SourceRateSpec;
use caladrius_core::Caladrius;
use caladrius_exec::ExecPool;
use caladrius_planner::{
    plan_horizon_with, replay_timeline_with, Assessment, CapacityOracle, PlanError, PlanTimeline,
    PlannerConfig, ReplayConfig, ResourceLimits, WindowSpec,
};
use caladrius_workload::wordcount::{wordcount_topology, WordCountParallelism};
use criterion::{criterion_group, criterion_main, Criterion};
use heron_sim::engine::{SimConfig, Simulation};
use std::collections::HashMap;
use std::hint::black_box;

/// Closed-form 4-component chain (same shape as `planner_search`).
struct AnalyticOracle {
    components: Vec<(String, f64, f64)>,
}

impl AnalyticOracle {
    fn chain(n: usize) -> Self {
        let components = (0..n)
            .map(|i| {
                (
                    format!("bolt{i}"),
                    1.0 + i as f64 * 0.5,
                    8.0e6 + i as f64 * 2.0e6,
                )
            })
            .collect();
        Self { components }
    }
}

impl CapacityOracle for AnalyticOracle {
    fn components(&self) -> Vec<String> {
        self.components.iter().map(|(n, ..)| n.clone()).collect()
    }

    fn assess(&self, parallelisms: &[(String, u32)], rate: f64) -> Result<Assessment, PlanError> {
        let mut saturation = f64::INFINITY;
        let mut bottleneck = None;
        let mut cpu_per_instance = Vec::with_capacity(self.components.len());
        for (name, ratio, service) in &self.components {
            let p = parallelisms
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, p)| *p)
                .unwrap_or(1);
            let sat = service * f64::from(p) / ratio;
            if sat < saturation {
                saturation = sat;
                bottleneck = Some(name.clone());
            }
            cpu_per_instance.push((name.clone(), 0.05 + 2.0e-8 * ratio * rate / f64::from(p)));
        }
        Ok(Assessment {
            feasible: rate < saturation * 0.95,
            bottleneck,
            saturation_rate: saturation,
            cpu_per_instance,
        })
    }
}

fn planner_config() -> PlannerConfig {
    PlannerConfig {
        limits: ResourceLimits {
            max_parallelism: 64,
            ..ResourceLimits::default()
        },
        ..PlannerConfig::default()
    }
}

/// A diurnal 24 h horizon at 15-minute windows (96 windows).
fn diurnal_windows() -> Vec<WindowSpec> {
    (0..96)
        .map(|i| {
            let phase = i as f64 / 96.0 * std::f64::consts::TAU;
            WindowSpec {
                start_ts: i as i64 * 900_000,
                end_ts: (i as i64 + 1) * 900_000,
                peak_rate: 30.0e6 + 25.0e6 * phase.sin(),
            }
        })
        .collect()
}

/// The bench's multi-thread width: at least 4 so the comparison is
/// meaningful even where `available_parallelism` reports fewer (the
/// pool honours explicit widths; on a small host the threads simply
/// share cores).
fn wide() -> usize {
    caladrius_exec::configured_threads().max(4)
}

fn bench_plan_horizon(c: &mut Criterion) {
    let oracle = AnalyticOracle::chain(4);
    let windows = diurnal_windows();
    let config = planner_config();
    let initial: Vec<(String, u32)> = oracle.components().into_iter().map(|n| (n, 1)).collect();
    let sequential = ExecPool::with_threads("bench-plan-seq", 1);
    let parallel = ExecPool::with_threads("bench-plan-par", wide());

    let timeline = plan_horizon_with(&oracle, &initial, &windows, &config, &sequential).unwrap();
    // What the pre-dedup planner spent: one full search per window.
    let naive_evals: u64 = windows
        .iter()
        .map(|w| {
            caladrius_planner::plan_window(&oracle, w.peak_rate * config.headroom, &config)
                .unwrap()
                .evals
        })
        .sum();
    println!(
        "horizon plan: 96 windows, {} oracle evals after rate-dedup + smoothing memo \
         vs {} for one search per window (hardware threads: {})",
        timeline.oracle_evals,
        naive_evals,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );

    let mut group = c.benchmark_group("exec_plan_horizon");
    group.sample_size(20);
    group.bench_function("sequential_1_thread", |b| {
        b.iter(|| {
            plan_horizon_with(&oracle, &initial, black_box(&windows), &config, &sequential).unwrap()
        });
    });
    group.bench_function(format!("parallel_{}_threads", wide()), |b| {
        b.iter(|| {
            plan_horizon_with(&oracle, &initial, black_box(&windows), &config, &parallel).unwrap()
        });
    });
    group.finish();
}

fn bench_replay_validation(c: &mut Criterion) {
    // Plan a wordcount-shaped horizon analytically, then validate the
    // first 8 windows in the simulator — the acceptance path of
    // `POST /topology/{t}/plan` with replay validation.
    let oracle = AnalyticOracle::chain(3);
    let config = planner_config();
    let windows: Vec<WindowSpec> = diurnal_windows().into_iter().take(8).collect();
    let sequential = ExecPool::with_threads("bench-replay-seq", 1);
    let parallel = ExecPool::with_threads("bench-replay-par", wide());
    let timeline: PlanTimeline =
        plan_horizon_with(&oracle, &[], &windows, &config, &sequential).unwrap();
    // Rename the analytic components onto the deployable wordcount
    // bolts: replay only needs (name, parallelism) pairs that exist in
    // the base topology.
    let timeline = PlanTimeline {
        windows: timeline
            .windows
            .into_iter()
            .map(|mut w| {
                w.parallelisms = vec![
                    ("splitter".to_string(), w.parallelisms[0].1.clamp(1, 16)),
                    ("counter".to_string(), w.parallelisms[1].1.clamp(1, 16)),
                ];
                w.peak_rate = w.peak_rate.min(20.0e6);
                w
            })
            .collect(),
        ..timeline
    };
    let base = wordcount_topology(
        WordCountParallelism {
            spout: 8,
            splitter: 2,
            counter: 3,
        },
        10.0e6,
    );
    let replay_config = ReplayConfig {
        warmup_minutes: 5,
        measure_minutes: 3,
        ..ReplayConfig::default()
    };

    let mut group = c.benchmark_group("exec_replay_validation");
    group.sample_size(10);
    group.bench_function("sequential_1_thread_8_windows", |b| {
        b.iter(|| {
            replay_timeline_with(&base, black_box(&timeline), &replay_config, &sequential).unwrap()
        });
    });
    group.bench_function(format!("parallel_{}_threads_8_windows", wide()), |b| {
        b.iter(|| {
            replay_timeline_with(&base, black_box(&timeline), &replay_config, &parallel).unwrap()
        });
    });
    group.finish();
}

fn bench_cold_evaluate(c: &mut Criterion) {
    // Cold evaluate fits one throughput model per bolt and one CPU
    // model per bolt concurrently on the shared "fit" pool (its width
    // is `configured_threads`, so set CALADRIUS_THREADS to compare).
    let parallelism = WordCountParallelism {
        spout: 8,
        splitter: 2,
        counter: 3,
    };
    let metrics = heron_sim::metrics::SimMetrics::new("wordcount");
    for (leg, rate) in [6.0e6, 12.0e6, 18.0e6, 26.0e6].into_iter().enumerate() {
        let topo = wordcount_topology(parallelism, rate);
        let mut sim = Simulation::new(
            topo,
            SimConfig {
                metric_noise: 0.0,
                ..SimConfig::default()
            },
        )
        .unwrap();
        sim.skip_to_minute(leg as u64 * 60);
        sim.warmup_minutes(25);
        sim.run_minutes_into(10, &metrics);
    }
    let caladrius = Caladrius::new(
        std::sync::Arc::new(SimMetricsProvider::new(metrics)),
        std::sync::Arc::new(StaticTracker::new().with(wordcount_topology(parallelism, 20.0e6))),
    );
    let none = HashMap::new();
    let source = SourceRateSpec::Fixed(30.0e6);

    let mut group = c.benchmark_group("exec_cold_evaluate");
    group.sample_size(10);
    group.bench_function(
        format!("fit_pool_{}_threads", caladrius_exec::configured_threads()),
        |b| {
            b.iter(|| {
                caladrius.invalidate_model_cache(None);
                caladrius
                    .evaluate(black_box("wordcount"), &none, &source)
                    .unwrap()
            });
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_plan_horizon,
    bench_replay_validation,
    bench_cold_evaluate
);
criterion_main!(benches);
