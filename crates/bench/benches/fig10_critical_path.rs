//! Figure 10 — topology output throughput: critical-path prediction vs
//! measurement (paper §V-D).
//!
//! The component models fitted in the Fig. 7/Fig. 9 experiments are
//! chained along the critical path (Eq. 12) for the Fig. 1 parallelisms
//! (spout 2, Splitter 2, Counter 4), producing the predicted topology
//! output curve; the same configuration is then deployed and measured.
//! Paper: prediction error 2.8 % at the plateau.

use caladrius_bench::{columns, compare, fast_mode, header, observe_many, relative_error, row};
use caladrius_core::providers::{SimMetricsProvider, StaticTracker};
use caladrius_core::Caladrius;
use caladrius_workload::wordcount::{
    wordcount_topology, WordCountParallelism, ALPHA, SPLITTER_CAPACITY_PER_MIN,
};
use heron_sim::engine::{SimConfig, Simulation};
use heron_sim::metrics::{metric, SimMetrics};
use std::collections::HashMap;
use std::sync::Arc;

fn main() {
    header(
        "Fig. 10: topology output (critical path) — predicted vs measured",
        "prediction matches measurement with ~2.8% error at the plateau",
    );

    // Fit the component models from an observation deployment (splitter
    // p=3, counter p=6) swept through both regimes — the paper's "we have
    // built a model for the Splitter ... we did the same for the Counter".
    let observed = WordCountParallelism {
        spout: 8,
        splitter: 3,
        counter: 6,
    };
    let metrics = SimMetrics::new("wordcount");
    let legs: Vec<f64> = if fast_mode() {
        vec![10.0e6, 25.0e6, 40.0e6]
    } else {
        vec![8.0e6, 16.0e6, 24.0e6, 30.0e6, 36.0e6, 42.0e6]
    };
    for (leg, rate) in legs.iter().enumerate() {
        let mut sim =
            Simulation::new(wordcount_topology(observed, *rate), SimConfig::default()).unwrap();
        sim.skip_to_minute(leg as u64 * 100);
        sim.warmup_minutes(40);
        sim.run_minutes_into(10, &metrics);
    }
    let caladrius = Caladrius::new(
        Arc::new(SimMetricsProvider::new(metrics)),
        Arc::new(StaticTracker::new().with(wordcount_topology(observed, 30.0e6))),
    );
    let model = caladrius.fit_topology_model("wordcount").unwrap();

    // The critical path is the only source→sink path.
    let paths = model.critical_path_candidates().unwrap();
    println!("critical path candidates: {paths:?}");
    assert_eq!(paths.len(), 1);

    // Fig. 1 parallelisms for the prediction and validation runs.
    let fig1 = HashMap::from([
        ("spout".to_string(), 2u32),
        ("splitter".to_string(), 2u32),
        ("counter".to_string(), 4u32),
    ]);
    let deploy = WordCountParallelism {
        spout: 2,
        splitter: 2,
        counter: 4,
    };

    let step = if fast_mode() { 20.0e6 } else { 8.0e6 };
    columns(
        "source (M/min)",
        &["predicted out", "measured out", "error %"],
    );
    let mut max_err: f64 = 0.0;
    let mut source = 6.0e6;
    let mut plateau_prediction = 0.0;
    let mut plateau_measurement = 0.0;
    while source <= 62.0e6 {
        let predicted = model.predict_path(&paths[0], &fig1, source).unwrap();
        let stats = observe_many(
            || wordcount_topology(deploy, source),
            &[(metric::EXECUTE_COUNT, "counter")],
            40,
            10,
        );
        let measured = stats[0].mean;
        let err = relative_error(predicted, measured);
        row(
            format!("{:.0}", source / 1e6),
            &[predicted / 1e6, measured / 1e6, err * 100.0],
        );
        max_err = max_err.max(err);
        if source > 40.0e6 {
            plateau_prediction = predicted;
            plateau_measurement = measured;
        }
        source += step;
    }

    println!();
    let plateau_err = relative_error(plateau_prediction, plateau_measurement);
    println!(
        "  plateau: predicted {:.1} M, measured {:.1} M, error {:.1}% (paper: 2.8%)",
        plateau_prediction / 1e6,
        plateau_measurement / 1e6,
        plateau_err * 100.0
    );
    // The plateau itself is set by the splitter knee at p=2.
    compare(
        "plateau output (M words/min)",
        2.0 * SPLITTER_CAPACITY_PER_MIN * ALPHA / 1e6,
        plateau_measurement / 1e6,
        0.10,
    );
    assert!(
        max_err < 0.07,
        "max error {:.1}% exceeds the paper-comparable band",
        max_err * 100.0
    );
    println!("fig10: OK (max error {:.1}%)", max_err * 100.0);
}
