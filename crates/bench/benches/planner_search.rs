//! Planner search benchmark: the bottleneck-first joint search of
//! `caladrius-planner` vs the naive exhaustive grid scan over the same
//! parallelism space, plus a full 24 h horizon plan.
//!
//! The searches run against a closed-form analytic oracle (no
//! simulator), so the numbers isolate search strategy cost: how many
//! oracle evaluations each strategy spends and what that costs in wall
//! time.

use caladrius_planner::{
    grid_min_cost, plan_horizon, plan_window, Assessment, CapacityOracle, PlanError, PlannerConfig,
    ResourceLimits, WindowSpec,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A closed-form capacity model: component `i` sees `ratio` times the
/// source rate and each instance serves `service` tuples/min, so the
/// saturation rate of an assignment is `min_i(service_i * p_i /
/// ratio_i)` — the same monotone structure the fitted Caladrius models
/// expose, at zero evaluation cost.
struct AnalyticOracle {
    components: Vec<(String, f64, f64, f64)>, // (name, ratio, service, cpu_per_tuple)
}

impl AnalyticOracle {
    fn chain(n: usize) -> Self {
        let components = (0..n)
            .map(|i| {
                (
                    format!("bolt{i}"),
                    1.0 + i as f64 * 0.5,
                    8.0e6 + i as f64 * 2.0e6,
                    2.0e-8,
                )
            })
            .collect();
        Self { components }
    }
}

impl CapacityOracle for AnalyticOracle {
    fn components(&self) -> Vec<String> {
        self.components.iter().map(|(n, ..)| n.clone()).collect()
    }

    fn assess(&self, parallelisms: &[(String, u32)], rate: f64) -> Result<Assessment, PlanError> {
        let mut saturation = f64::INFINITY;
        let mut bottleneck = None;
        let mut cpu_per_instance = Vec::with_capacity(self.components.len());
        for (name, ratio, service, cpu_per_tuple) in &self.components {
            let p = parallelisms
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, p)| *p)
                .unwrap_or(1);
            let sat = service * f64::from(p) / ratio;
            if sat < saturation {
                saturation = sat;
                bottleneck = Some(name.clone());
            }
            cpu_per_instance.push((
                name.clone(),
                0.05 + cpu_per_tuple * ratio * rate / f64::from(p),
            ));
        }
        Ok(Assessment {
            feasible: rate < saturation * 0.95,
            bottleneck,
            saturation_rate: saturation,
            cpu_per_instance,
        })
    }
}

fn config(max_parallelism: u32) -> PlannerConfig {
    PlannerConfig {
        limits: ResourceLimits {
            max_parallelism,
            ..ResourceLimits::default()
        },
        ..PlannerConfig::default()
    }
}

fn bench_window_search(c: &mut Criterion) {
    let oracle = AnalyticOracle::chain(4);
    let rate = 50.0e6;

    // Report the evaluation counts once, outside the timing loop.
    let joint = plan_window(&oracle, rate, &config(64)).unwrap();
    let (_, grid_evals) = grid_min_cost(&oracle, rate, &config(12), 12).unwrap();
    println!(
        "evals at 50 M/min over 4 components: joint search {} (max_p 64) vs grid scan {} (max_p 12)",
        joint.evals, grid_evals
    );

    let mut group = c.benchmark_group("planner_search");
    group.sample_size(10);
    group.bench_function("joint_bottleneck_first_maxp64", |b| {
        b.iter(|| plan_window(&oracle, black_box(rate), &config(64)).unwrap());
    });
    group.bench_function("naive_grid_scan_maxp12", |b| {
        b.iter(|| grid_min_cost(&oracle, black_box(rate), &config(12), 12).unwrap());
    });
    group.finish();
}

fn bench_horizon(c: &mut Criterion) {
    let oracle = AnalyticOracle::chain(4);
    // A diurnal 24 h horizon at 15-minute windows (96 windows).
    let windows: Vec<WindowSpec> = (0..96)
        .map(|i| {
            let phase = i as f64 / 96.0 * std::f64::consts::TAU;
            WindowSpec {
                start_ts: i as i64 * 900_000,
                end_ts: (i as i64 + 1) * 900_000,
                peak_rate: 30.0e6 + 25.0e6 * phase.sin(),
            }
        })
        .collect();
    let initial: Vec<(String, u32)> = oracle.components().into_iter().map(|n| (n, 1)).collect();

    let mut group = c.benchmark_group("planner_horizon");
    group.sample_size(10);
    group.bench_function("diurnal_24h_96_windows", |b| {
        b.iter(|| plan_horizon(&oracle, &initial, black_box(&windows), &config(64)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_window_search, bench_horizon);
criterion_main!(benches);
