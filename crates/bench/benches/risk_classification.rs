//! Backpressure-risk classification (Eq. 14, extension).
//!
//! The paper defines the risk rule but plots no figure for it. This
//! bench sweeps offered rates around the topology's predicted saturation
//! point `t'0` and checks the classification against ground truth from
//! the simulator: below the knee no backpressure may appear; above it,
//! backpressure must.

use caladrius_bench::{columns, fast_mode, header, row};
use caladrius_core::model::topology::BackpressureRisk;
use caladrius_core::providers::{SimMetricsProvider, StaticTracker};
use caladrius_core::Caladrius;
use caladrius_tsdb::Aggregation;
use caladrius_workload::wordcount::{wordcount_topology, WordCountParallelism};
use heron_sim::engine::{SimConfig, Simulation};
use heron_sim::metrics::{metric, SimMetrics};
use std::collections::HashMap;
use std::sync::Arc;

fn simulated_backpressure(rate: f64) -> bool {
    let parallelism = WordCountParallelism {
        spout: 8,
        splitter: 2,
        counter: 3,
    };
    let mut sim =
        Simulation::new(wordcount_topology(parallelism, rate), SimConfig::default()).unwrap();
    sim.warmup_minutes(45);
    let metrics = sim.run_minutes(10);
    let series = metrics.component_sum(metric::BACKPRESSURE_TIME, None, 0, i64::MAX);
    Aggregation::Max.apply(series.iter().map(|s| s.value)) > 1_000.0
}

fn main() {
    header(
        "Backpressure risk classification (Eq. 14)",
        "risk is low for t0 < t'0 and high for t0 ~ t'0 or beyond",
    );

    // Fit over a sweep of the deployed config.
    let parallelism = WordCountParallelism {
        spout: 8,
        splitter: 2,
        counter: 3,
    };
    let metrics = SimMetrics::new("wordcount");
    for (leg, rate) in [8.0e6, 14.0e6, 20.0e6, 26.0e6].into_iter().enumerate() {
        let mut sim =
            Simulation::new(wordcount_topology(parallelism, rate), SimConfig::default()).unwrap();
        sim.skip_to_minute(leg as u64 * 100);
        sim.warmup_minutes(40);
        sim.run_minutes_into(10, &metrics);
    }
    let caladrius = Caladrius::new(
        Arc::new(SimMetricsProvider::new(metrics)),
        Arc::new(StaticTracker::new().with(wordcount_topology(parallelism, 20.0e6))),
    );
    let model = caladrius.fit_topology_model("wordcount").unwrap();
    let none = HashMap::new();
    let knee = model
        .saturation_source_rate(&none)
        .unwrap()
        .expect("sweep saturates");
    println!(
        "predicted topology saturation t'0 = {:.2} M tuples/min\n",
        knee / 1e6
    );

    let factors: Vec<f64> = if fast_mode() {
        vec![0.6, 0.9, 1.1, 1.4]
    } else {
        vec![0.5, 0.7, 0.85, 0.9, 0.97, 1.03, 1.1, 1.25, 1.5]
    };
    columns("t0/t'0", &["risk(Eq.14)", "sim backpressure", "agree"]);
    let mut agreements = 0usize;
    let mut decisive = 0usize;
    for factor in &factors {
        let rate = knee * factor;
        let (risk, _) = model.backpressure_risk(&none, rate).unwrap();
        let truth = simulated_backpressure(rate);
        let risk_high = risk == BackpressureRisk::High;
        let agree = risk_high == truth;
        row(
            format!("{factor:.2}"),
            &[
                if risk_high { 1.0 } else { 0.0 },
                if truth { 1.0 } else { 0.0 },
                if agree { 1.0 } else { 0.0 },
            ],
        );
        // Near the knee (within 10%) the call is genuinely ambiguous —
        // Eq. 14's margin exists exactly for that band. Score only the
        // decisive region.
        if (factor - 1.0).abs() > 0.10 {
            decisive += 1;
            if agree {
                agreements += 1;
            }
        }
    }
    println!();
    println!("  decisive-region agreement: {agreements}/{decisive}");
    assert_eq!(
        agreements, decisive,
        "Eq. 14 must agree with simulated ground truth away from the knee"
    );
    println!("risk_classification: OK");
}
