//! Zero-dependency observability substrate for Caladrius.
//!
//! Three pieces, each usable standalone:
//!
//! * [`registry`] — a sharded [`MetricsRegistry`] of atomic
//!   [`Counter`]s, [`Gauge`]s and lock-free log-bucketed
//!   [`Histogram`]s (p50/p90/p99/max at read time).
//! * [`span`] — [`RequestId`] propagation via thread-local
//!   [`RequestScope`]s, RAII [`SpanGuard`] timing, and a bounded
//!   [`TraceRing`] of recent [`SpanEvent`]s.
//! * [`prom`] — Prometheus text-format exposition of a registry
//!   snapshot.
//! * [`windowed`] — sliding-window [`WindowedHistogram`]s answering
//!   recent-horizon quantiles next to the lifetime view.
//! * [`slo`] — multi-window SLO burn-rate engine
//!   ([`SloRegistry`]/[`SloObjective`], Google-SRE style alerts).
//! * [`flight`] — a bounded [`FlightRecorder`] of periodic metric
//!   snapshots, SLO transitions and shed decisions.
//!
//! [`global::registry()`](global::registry) and
//! [`global::tracer()`](global::tracer) are the process-wide instances
//! everything in the workspace records into; `GET /metrics/service`
//! and `GET /trace/recent` in `caladrius-api` read them back out.

#![warn(missing_docs)]

pub mod clock;
pub mod flight;
pub mod global;
pub mod prom;
pub mod registry;
pub mod slo;
pub mod span;
pub mod windowed;

pub use flight::{
    FlightConfig, FlightRecorder, FlightSample, FlightSnapshot, ShedEvent, SloTransition,
};
pub use global::{
    evaluate_slos, flight as global_flight, next_scope_id, registry as global_registry,
    slos as global_slos, span as global_span, tracer,
};
pub use prom::{render as render_prometheus, PROMETHEUS_CONTENT_TYPE};
pub use registry::{
    BucketCount, Counter, Gauge, Histogram, HistogramSnapshot, MetricFamily, MetricHandle,
    MetricKind, MetricRow, MetricsRegistry, HISTOGRAM_BUCKETS,
};
pub use slo::{SloConfig, SloObjective, SloRegistry, SloState, SloStatus, BURN_RATE_METRIC};
pub use span::{
    current_request_id, current_span_id, next_request_id, ParentSpanScope, RequestId, RequestScope,
    SpanEvent, SpanGuard, TraceRing,
};
pub use windowed::{WindowedHistogram, DEFAULT_WINDOW_SECS, DEFAULT_WINDOW_SLOTS};
