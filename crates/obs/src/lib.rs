//! Zero-dependency observability substrate for Caladrius.
//!
//! Three pieces, each usable standalone:
//!
//! * [`registry`] — a sharded [`MetricsRegistry`] of atomic
//!   [`Counter`]s, [`Gauge`]s and lock-free log-bucketed
//!   [`Histogram`]s (p50/p90/p99/max at read time).
//! * [`span`] — [`RequestId`] propagation via thread-local
//!   [`RequestScope`]s, RAII [`SpanGuard`] timing, and a bounded
//!   [`TraceRing`] of recent [`SpanEvent`]s.
//! * [`prom`] — Prometheus text-format exposition of a registry
//!   snapshot.
//!
//! [`global::registry()`](global::registry) and
//! [`global::tracer()`](global::tracer) are the process-wide instances
//! everything in the workspace records into; `GET /metrics/service`
//! and `GET /trace/recent` in `caladrius-api` read them back out.

#![warn(missing_docs)]

pub mod global;
pub mod prom;
pub mod registry;
pub mod span;

pub use global::{next_scope_id, registry as global_registry, span as global_span, tracer};
pub use prom::{render as render_prometheus, PROMETHEUS_CONTENT_TYPE};
pub use registry::{
    BucketCount, Counter, Gauge, Histogram, HistogramSnapshot, MetricFamily, MetricHandle,
    MetricKind, MetricRow, MetricsRegistry, HISTOGRAM_BUCKETS,
};
pub use span::{
    current_request_id, next_request_id, RequestId, RequestScope, SpanEvent, SpanGuard, TraceRing,
};
