//! Sliding-window histograms: a cumulative histogram plus a ring of
//! rotating sub-histograms, so readers can ask for the quantile of the
//! *recent* past instead of the process lifetime.
//!
//! The ring holds `slots` sub-histograms of `window_secs` each
//! (12 × 10 s by default, a 2-minute horizon). A recorded value lands
//! in the slot of its wall-clock window; the first recorder to touch a
//! slot whose tag is stale claims it with a CAS and zeroes it, so
//! rotation is lazy and the record path stays lock-free. Readers merge
//! every slot whose tag falls inside the horizon and ignore the rest —
//! expired windows vanish without any background sweeper.
//!
//! The record path stays within 2× of a plain [`Histogram`] record: the
//! cumulative update plus one tag load, one bucket increment, one max
//! and an amortised coarse-clock refresh (every 64th record). Slot
//! resets race concurrent recorders at window boundaries; a handful of
//! samples may be attributed to the wrong window or dropped from the
//! windowed view at each rotation, which is acceptable for telemetry
//! (the cumulative histogram is exact).

use crate::clock::coarse_now_secs;
use crate::registry::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, BucketCount, Histogram,
    HistogramSnapshot, HISTOGRAM_BUCKETS,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default number of ring slots.
pub const DEFAULT_WINDOW_SLOTS: usize = 12;

/// Default width of one slot in seconds.
pub const DEFAULT_WINDOW_SECS: u64 = 10;

/// Tag value marking a slot that has never been claimed.
const EMPTY_TAG: u64 = u64::MAX;

/// The cached coarse clock is refreshed every this-many records.
const CLOCK_REFRESH: u64 = 64;

/// One rotating sub-histogram of the ring.
#[derive(Debug)]
struct WindowSlot {
    /// Window number (`now_secs / window_secs`) this slot holds, or
    /// [`EMPTY_TAG`] before first use.
    tag: AtomicU64,
    /// Maximum recorded value in this window, stored as `f64` bits.
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl WindowSlot {
    fn new() -> Self {
        WindowSlot {
            tag: AtomicU64::new(EMPTY_TAG),
            max: AtomicU64::new(0f64.to_bits()),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn reset(&self) {
        self.max.store(0f64.to_bits(), Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

#[derive(Debug)]
struct WindowedCore {
    cumulative: Histogram,
    slots: Box<[WindowSlot]>,
    window_secs: u64,
    /// Record counter driving the amortised clock refresh.
    ops: AtomicU64,
    /// Cached [`coarse_now_secs`] value.
    cached_now: AtomicU64,
}

/// A lock-free histogram that answers both lifetime and recent-window
/// quantiles. See the module docs for the rotation scheme.
#[derive(Debug, Clone)]
pub struct WindowedHistogram(Arc<WindowedCore>);

impl WindowedHistogram {
    /// A windowed histogram detached from any registry, with the
    /// default 12 × 10 s ring.
    pub fn detached() -> Self {
        Self::with_window(DEFAULT_WINDOW_SLOTS, DEFAULT_WINDOW_SECS)
    }

    /// A detached windowed histogram with `slots` windows of
    /// `window_secs` each (both clamped to at least 1).
    pub fn with_window(slots: usize, window_secs: u64) -> Self {
        let slots = slots.max(1);
        WindowedHistogram(Arc::new(WindowedCore {
            cumulative: Histogram::detached(),
            slots: (0..slots).map(|_| WindowSlot::new()).collect(),
            window_secs: window_secs.max(1),
            ops: AtomicU64::new(0),
            cached_now: AtomicU64::new(0),
        }))
    }

    /// Width of one window in seconds.
    pub fn window_secs(&self) -> u64 {
        self.0.window_secs
    }

    /// Total horizon covered by the ring in seconds.
    pub fn horizon_secs(&self) -> u64 {
        self.0.window_secs * self.0.slots.len() as u64
    }

    /// Records one value at the current coarse time.
    pub fn record(&self, v: f64) {
        let now = self.amortized_now();
        self.record_at(v, now);
    }

    /// Records a [`std::time::Duration`] in seconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_secs_f64());
    }

    /// Records one value as if the coarse clock read `now_secs`
    /// (deterministic test hook; production uses [`record`]).
    ///
    /// [`record`]: WindowedHistogram::record
    pub fn record_at(&self, v: f64, now_secs: u64) {
        let core = &*self.0;
        core.cumulative.record(v);
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        let window = now_secs / core.window_secs;
        let slot = &core.slots[(window % core.slots.len() as u64) as usize];
        loop {
            let tag = slot.tag.load(Ordering::Acquire);
            if tag == window {
                break;
            }
            if tag != EMPTY_TAG && tag > window {
                // A recorder with a fresher clock already rotated this
                // slot forward; drop the windowed attribution rather
                // than corrupting the newer window (the cumulative
                // histogram kept the sample).
                return;
            }
            if slot
                .tag
                .compare_exchange_weak(tag, window, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                slot.reset();
                break;
            }
        }
        slot.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        if v > 0.0 {
            slot.max.fetch_max(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Cached coarse clock, refreshed from the real clock every
    /// [`CLOCK_REFRESH`] records.
    fn amortized_now(&self) -> u64 {
        let core = &*self.0;
        if core
            .ops
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(CLOCK_REFRESH)
        {
            let now = coarse_now_secs();
            core.cached_now.store(now, Ordering::Relaxed);
            now
        } else {
            core.cached_now.load(Ordering::Relaxed)
        }
    }

    /// Lifetime count of recorded values.
    pub fn count(&self) -> u64 {
        self.0.cumulative.count()
    }

    /// Point-in-time copy of the lifetime (cumulative) state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.cumulative.snapshot()
    }

    /// Estimated `q`-quantile over the ring's horizon (last
    /// [`horizon_secs`](WindowedHistogram::horizon_secs) seconds).
    pub fn windowed_quantile(&self, q: f64) -> f64 {
        self.windowed_snapshot().quantile(q)
    }

    /// Deterministic variant of
    /// [`windowed_quantile`](WindowedHistogram::windowed_quantile).
    pub fn quantile_at(&self, q: f64, now_secs: u64) -> f64 {
        self.windowed_snapshot_at(now_secs).quantile(q)
    }

    /// Merged snapshot of every in-horizon window.
    pub fn windowed_snapshot(&self) -> HistogramSnapshot {
        self.windowed_snapshot_at(coarse_now_secs())
    }

    /// Merged snapshot of every window within the horizon ending at
    /// `now_secs`. The reported `sum` is a mid-bucket estimate (the
    /// ring does not track per-window sums to keep recording cheap).
    pub fn windowed_snapshot_at(&self, now_secs: u64) -> HistogramSnapshot {
        let core = &*self.0;
        let window = now_secs / core.window_secs;
        let oldest = (window + 1).saturating_sub(core.slots.len() as u64);
        let mut merged = [0u64; HISTOGRAM_BUCKETS];
        let mut max = 0f64;
        for slot in core.slots.iter() {
            let tag = slot.tag.load(Ordering::Acquire);
            if tag == EMPTY_TAG || tag < oldest || tag > window {
                continue;
            }
            max = max.max(f64::from_bits(slot.max.load(Ordering::Relaxed)));
            for (i, b) in slot.buckets.iter().enumerate() {
                merged[i] += b.load(Ordering::Relaxed);
            }
        }
        let mut buckets = Vec::new();
        let mut count = 0u64;
        let mut sum = 0f64;
        for (i, &own) in merged.iter().enumerate() {
            if own == 0 {
                continue;
            }
            let lower = bucket_lower_bound(i);
            let upper = bucket_upper_bound(i);
            count += own;
            let representative = if upper.is_infinite() {
                max.max(lower)
            } else {
                ((lower + upper) / 2.0).min(if max > 0.0 { max } else { upper })
            };
            sum += representative * own as f64;
            buckets.push(BucketCount {
                lower,
                upper,
                count: own,
            });
        }
        HistogramSnapshot {
            count,
            sum,
            max,
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_quantile_tracks_recent_values_only() {
        let h = WindowedHistogram::with_window(6, 10);
        for _ in 0..100 {
            h.record_at(5.0, 0);
        }
        // The burst dominates both views while it is in the horizon.
        assert!(h.quantile_at(0.99, 0) > 4.0);
        assert!(h.quantile_at(0.99, 59) > 4.0, "still inside the horizon");
        // After the horizon passes, the windowed view is empty...
        assert_eq!(h.quantile_at(0.99, 60), 0.0);
        assert_eq!(h.windowed_snapshot_at(60).count, 0);
        // ...while the cumulative view still remembers the burst.
        assert!(h.snapshot().quantile(0.99) > 4.0);
        assert_eq!(h.count(), 100);
    }

    #[test]
    fn recovery_after_burst_flips_windowed_p99_but_not_lifetime() {
        let h = WindowedHistogram::with_window(6, 10);
        for _ in 0..100 {
            h.record_at(5.0, 0);
        }
        for _ in 0..100 {
            h.record_at(0.01, 70);
        }
        assert!(h.quantile_at(0.99, 70) < 0.1, "recent view recovered");
        assert!(h.snapshot().quantile(0.99) > 4.0, "lifetime still high");
    }

    #[test]
    fn ring_slots_are_reclaimed_on_wraparound() {
        let h = WindowedHistogram::with_window(4, 1);
        h.record_at(1.0, 0);
        // Window 4 maps to the same slot as window 0 and must evict it.
        h.record_at(8.0, 4);
        let s = h.windowed_snapshot_at(4);
        assert_eq!(s.count, 1);
        assert_eq!(s.max, 8.0);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn stale_recorder_cannot_roll_a_slot_backwards() {
        let h = WindowedHistogram::with_window(4, 1);
        h.record_at(8.0, 4);
        // A racing recorder with a stale clock maps to the same slot;
        // its windowed attribution is dropped, not merged backwards.
        h.record_at(1.0, 0);
        let s = h.windowed_snapshot_at(4);
        assert_eq!(s.count, 1);
        assert_eq!(s.max, 8.0);
        assert_eq!(h.count(), 2, "cumulative still keeps the sample");
    }

    #[test]
    fn partial_current_window_is_included() {
        let h = WindowedHistogram::with_window(12, 10);
        h.record_at(0.25, 115);
        let q = h.quantile_at(1.0, 115);
        assert_eq!(q, 0.25, "single sample is exact");
    }

    #[test]
    fn real_clock_path_records() {
        let h = WindowedHistogram::detached();
        for _ in 0..200 {
            h.record(0.5);
        }
        assert_eq!(h.count(), 200);
        assert_eq!(h.windowed_snapshot().count, 200);
        let q = h.windowed_quantile(0.5);
        assert!(q > 0.4 && q <= 0.5 + 0.5 * 0.2, "{q}");
    }
}
