//! The sharded metrics registry: counters, gauges and log-bucketed
//! latency histograms behind cheap cloneable handles.
//!
//! Handles are resolved once (a shard lookup under a read lock, or an
//! insert under a write lock the first time) and then recorded through
//! with plain atomic operations — the hot path never touches a lock.
//! Callers on genuinely hot paths should hold the handle; occasional
//! callers (one lookup per HTTP request, say) can re-resolve each time.

use crate::windowed::WindowedHistogram;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of registry shards (must be a power of two).
const SHARDS: usize = 16;

/// Number of histogram buckets (see [`bucket_index`]).
pub const HISTOGRAM_BUCKETS: usize = 256;

/// Sub-buckets per power of two: 4 ⇒ bucket bounds grow by ×2^(1/4),
/// so any recorded value is attributed within ~19 % of its true value.
const SUB_BUCKETS_PER_OCTAVE: u64 = 4;

/// Smallest finite bucket exponent: bucket 1 starts at 2^MIN_EXP
/// (~4.7e-10 — well under a nanosecond when recording seconds).
const MIN_EXP: i64 = -31;

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter detached from any registry (for tests and defaults).
    pub fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding an arbitrary `f64` (stored as bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge detached from any registry (for tests and defaults).
    pub fn detached() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }

    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative) with a compare-and-swap loop.
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Internals of a [`Histogram`].
#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    /// Sum of recorded values, stored as `f64` bits.
    sum: AtomicU64,
    /// Maximum recorded value, stored as `f64` bits (monotone under
    /// `fetch_max` because non-negative IEEE 754 bit patterns order the
    /// same way as the values they encode).
    max: AtomicU64,
}

/// A lock-free, log-bucketed histogram of non-negative values.
///
/// Values are attributed to geometric buckets with 4 sub-buckets per
/// power of two (≤ ~19 % relative bucket width), covering ~4.7e-10
/// through ~7.4e9 with explicit underflow/overflow buckets. Recording is
/// a handful of relaxed atomic operations; quantiles are estimated at
/// read time by walking the cumulative counts and interpolating within
/// the landing bucket.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

/// Bucket index of a value. `0` is the underflow bucket (zero,
/// negatives, NaN and subnormals); the last bucket catches overflow.
pub(crate) fn bucket_index(v: f64) -> usize {
    if !(v.is_finite() && v > 0.0) {
        return if v == f64::INFINITY {
            HISTOGRAM_BUCKETS - 1
        } else {
            0
        };
    }
    let bits = v.to_bits();
    let biased_exp = (bits >> 52) & 0x7ff;
    if biased_exp == 0 {
        return 0; // subnormal: below every finite bucket bound
    }
    let exp = biased_exp as i64 - 1023;
    let sub = ((bits >> 50) & 0b11) as i64;
    let raw = (exp - MIN_EXP) * SUB_BUCKETS_PER_OCTAVE as i64 + sub + 1;
    raw.clamp(0, (HISTOGRAM_BUCKETS - 1) as i64) as usize
}

/// Inclusive lower value bound of a bucket (0 for the underflow bucket).
pub(crate) fn bucket_lower_bound(index: usize) -> f64 {
    if index == 0 {
        return 0.0;
    }
    let slot = (index - 1) as i64;
    let exp = slot.div_euclid(SUB_BUCKETS_PER_OCTAVE as i64) + MIN_EXP;
    let sub = slot.rem_euclid(SUB_BUCKETS_PER_OCTAVE as i64);
    2f64.powi(exp as i32) * (1.0 + sub as f64 / SUB_BUCKETS_PER_OCTAVE as f64)
}

/// Exclusive upper value bound of a bucket (`+Inf` for the last).
pub(crate) fn bucket_upper_bound(index: usize) -> f64 {
    if index >= HISTOGRAM_BUCKETS - 1 {
        f64::INFINITY
    } else {
        bucket_lower_bound(index + 1)
    }
}

/// One non-empty bucket of a [`HistogramSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketCount {
    /// Inclusive lower value bound.
    pub lower: f64,
    /// Exclusive upper value bound (`+Inf` for the overflow bucket).
    pub upper: f64,
    /// Values recorded into this bucket (not cumulative).
    pub count: u64,
}

/// A point-in-time copy of a histogram's state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Largest recorded value (0 when empty).
    pub max: f64,
    /// Every non-empty bucket, ascending.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by interpolating
    /// within the bucket containing the target rank. Returns 0 when
    /// empty. The estimate always lies within the value bounds of the
    /// bucket holding the true rank-`q` sample.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for b in &self.buckets {
            if cumulative + b.count >= rank {
                if b.upper.is_infinite() {
                    return self.max.max(b.lower);
                }
                let fraction = (rank - cumulative) as f64 / b.count as f64;
                // The true rank-q sample can never exceed the largest
                // recorded value, so clamp the interpolation: a bucket
                // whose samples all equal `max` (e.g. a single-sample
                // histogram) reports `max` exactly instead of the
                // bucket's upper bound.
                let estimate = b.lower + (b.upper - b.lower) * fraction;
                return estimate.min(self.max.max(b.lower));
            }
            cumulative += b.count;
        }
        self.max
    }
}

impl Histogram {
    /// A histogram detached from any registry (for tests and defaults).
    pub fn detached() -> Self {
        Histogram(Arc::new(HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0f64.to_bits()),
            max: AtomicU64::new(0f64.to_bits()),
        }))
    }

    /// Records one value. Negative, NaN and subnormal values land in the
    /// underflow bucket and contribute 0 to the sum. Lock-free: five
    /// relaxed atomic operations.
    pub fn record(&self, v: f64) {
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        let core = &*self.0;
        core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        if v > 0.0 {
            // f64 bit patterns of non-negative values are order-isomorphic
            // to the values, so integer fetch_max implements float max.
            core.max.fetch_max(v.to_bits(), Ordering::Relaxed);
            let mut cur = core.sum.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + v).to_bits();
                match core.sum.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Records a [`std::time::Duration`] in seconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_secs_f64());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Copies out the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &*self.0;
        let mut buckets = Vec::new();
        for (i, b) in core.buckets.iter().enumerate() {
            let own = b.load(Ordering::Relaxed);
            if own > 0 {
                buckets.push(BucketCount {
                    lower: bucket_lower_bound(i),
                    upper: bucket_upper_bound(i),
                    count: own,
                });
            }
        }
        HistogramSnapshot {
            count: core.count.load(Ordering::Relaxed),
            sum: f64::from_bits(core.sum.load(Ordering::Relaxed)),
            max: f64::from_bits(core.max.load(Ordering::Relaxed)),
            buckets,
        }
    }
}

/// The kind of a registered metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Arbitrary instantaneous value.
    Gauge,
    /// Log-bucketed distribution.
    Histogram,
    /// Log-bucketed distribution with a sliding recent-window view.
    WindowedHistogram,
}

/// One registered metric handle.
#[derive(Debug, Clone)]
pub enum MetricHandle {
    /// A [`Counter`].
    Counter(Counter),
    /// A [`Gauge`].
    Gauge(Gauge),
    /// A [`Histogram`].
    Histogram(Histogram),
    /// A [`WindowedHistogram`].
    Windowed(WindowedHistogram),
}

impl MetricHandle {
    fn kind(&self) -> MetricKind {
        match self {
            MetricHandle::Counter(_) => MetricKind::Counter,
            MetricHandle::Gauge(_) => MetricKind::Gauge,
            MetricHandle::Histogram(_) => MetricKind::Histogram,
            MetricHandle::Windowed(_) => MetricKind::WindowedHistogram,
        }
    }
}

/// Identity of a metric: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

/// One `(labels, handle)` row of a snapshot, grouped under its family.
#[derive(Debug, Clone)]
pub struct MetricRow {
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The live handle (reads are point-in-time).
    pub handle: MetricHandle,
}

/// All rows of one metric name.
#[derive(Debug, Clone)]
pub struct MetricFamily {
    /// Metric name.
    pub name: String,
    /// Optional help text (from [`MetricsRegistry::describe`]).
    pub help: Option<String>,
    /// The family's kind.
    pub kind: MetricKind,
    /// Rows sorted by labels.
    pub rows: Vec<MetricRow>,
}

/// A sharded, get-or-create registry of named metrics.
///
/// Registration of the same `(name, labels)` pair always yields a handle
/// to the same underlying metric, so independent components may hold
/// independent handles to one logical series.
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: Vec<RwLock<HashMap<MetricKey, MetricHandle>>>,
    help: RwLock<HashMap<String, String>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

fn shard_of(name: &str) -> usize {
    let mut hasher = DefaultHasher::new();
    name.hash(&mut hasher);
    (hasher.finish() as usize) & (SHARDS - 1)
}

fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut owned: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    owned.sort();
    owned
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            help: RwLock::new(HashMap::new()),
        }
    }

    fn get_or_insert(&self, name: &str, labels: &[(&str, &str)], kind: MetricKind) -> MetricHandle {
        let key = MetricKey {
            name: name.to_string(),
            labels: sorted_labels(labels),
        };
        let shard = &self.shards[shard_of(name)];
        if let Some(existing) = shard
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
        {
            assert_eq!(
                existing.kind(),
                kind,
                "metric {name:?} already registered with a different kind"
            );
            return existing.clone();
        }
        let mut guard = shard
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let entry = guard.entry(key).or_insert_with(|| match kind {
            MetricKind::Counter => MetricHandle::Counter(Counter::detached()),
            MetricKind::Gauge => MetricHandle::Gauge(Gauge::detached()),
            MetricKind::Histogram => MetricHandle::Histogram(Histogram::detached()),
            MetricKind::WindowedHistogram => MetricHandle::Windowed(WindowedHistogram::detached()),
        });
        assert_eq!(
            entry.kind(),
            kind,
            "metric {name:?} already registered with a different kind"
        );
        entry.clone()
    }

    /// Returns (registering on first use) the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, labels, MetricKind::Counter) {
            MetricHandle::Counter(c) => c,
            _ => unreachable!("kind checked in get_or_insert"),
        }
    }

    /// Returns (registering on first use) the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, labels, MetricKind::Gauge) {
            MetricHandle::Gauge(g) => g,
            _ => unreachable!("kind checked in get_or_insert"),
        }
    }

    /// Returns (registering on first use) the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.get_or_insert(name, labels, MetricKind::Histogram) {
            MetricHandle::Histogram(h) => h,
            _ => unreachable!("kind checked in get_or_insert"),
        }
    }

    /// Returns (registering on first use) the windowed histogram
    /// `name{labels}` with the default 12 × 10 s ring. The Prometheus
    /// exposition renders its cumulative state under `name` plus
    /// recent-window quantile gauges under `name_windowed`.
    pub fn windowed_histogram(&self, name: &str, labels: &[(&str, &str)]) -> WindowedHistogram {
        match self.get_or_insert(name, labels, MetricKind::WindowedHistogram) {
            MetricHandle::Windowed(w) => w,
            _ => unreachable!("kind checked in get_or_insert"),
        }
    }

    /// Attaches help text to a metric name (`# HELP` in the exposition).
    pub fn describe(&self, name: &str, help: &str) {
        self.help
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(name.to_string(), help.to_string());
    }

    /// Snapshot of every registered family, sorted by name with rows
    /// sorted by labels.
    pub fn families(&self) -> Vec<MetricFamily> {
        let help = self
            .help
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        let mut grouped: BTreeMap<String, Vec<MetricRow>> = BTreeMap::new();
        for shard in &self.shards {
            for (key, handle) in shard
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .iter()
            {
                grouped
                    .entry(key.name.clone())
                    .or_default()
                    .push(MetricRow {
                        labels: key.labels.clone(),
                        handle: handle.clone(),
                    });
            }
        }
        grouped
            .into_iter()
            .map(|(name, mut rows)| {
                rows.sort_by(|a, b| a.labels.cmp(&b.labels));
                let kind = rows[0].handle.kind();
                MetricFamily {
                    help: help.get(&name).cloned(),
                    name,
                    kind,
                    rows,
                }
            })
            .collect()
    }

    /// Number of registered metrics (all kinds, all label sets).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len()
            })
            .sum()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = MetricsRegistry::new();
        let c = r.counter("requests_total", &[("route", "/health")]);
        c.inc();
        c.add(4);
        // A second resolution sees the same underlying counter.
        assert_eq!(
            r.counter("requests_total", &[("route", "/health")]).get(),
            5
        );
        // Label order does not matter.
        let g1 = r.gauge("depth", &[("a", "1"), ("b", "2")]);
        let g2 = r.gauge("depth", &[("b", "2"), ("a", "1")]);
        g1.set(3.5);
        assert_eq!(g2.get(), 3.5);
        g2.add(-1.5);
        assert_eq!(g1.get(), 2.0);
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("x", &[]);
        r.gauge("x", &[]);
    }

    #[test]
    fn bucket_bounds_are_monotone_and_cover_values() {
        let mut prev = 0.0;
        for i in 0..HISTOGRAM_BUCKETS {
            let lower = bucket_lower_bound(i);
            let upper = bucket_upper_bound(i);
            assert!(lower >= prev, "bucket {i} lower {lower} < prev {prev}");
            assert!(upper > lower || (i == 0 && lower == 0.0));
            prev = lower;
        }
        for v in [1e-9, 3.2e-4, 0.5, 1.0, 7.0, 1234.5, 9.9e8] {
            let i = bucket_index(v);
            assert!(
                bucket_lower_bound(i) <= v && v < bucket_upper_bound(i),
                "{v} misassigned to bucket {i} [{}, {})",
                bucket_lower_bound(i),
                bucket_upper_bound(i)
            );
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::INFINITY), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(1e300), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_summary_statistics() {
        let h = Histogram::detached();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        h.record(-1.0); // underflow: counted, sums 0
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 10.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean(), 2.0);
        // The median of [0,1,2,3,4] is 2.0: the estimate must fall
        // inside 2.0's bucket.
        let q = s.quantile(0.5);
        let i = bucket_index(2.0);
        assert!(bucket_lower_bound(i) <= q && q <= bucket_upper_bound(i));
    }

    #[test]
    fn empty_histogram_is_zero() {
        let s = Histogram::detached().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.quantile(0.99), 0.0);
        assert_eq!(s.quantile(1.0), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        // Regression: interpolation used to report the landing bucket's
        // upper bound for a single-sample histogram; the estimate is
        // now clamped to the recorded max, which is exact here.
        let h = Histogram::detached();
        h.record(0.25);
        let s = h.snapshot();
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 0.25, "q={q}");
        }
        // A zero-valued sample (underflow bucket) is also exact.
        let h = Histogram::detached();
        h.record(0.0);
        assert_eq!(h.snapshot().quantile(0.99), 0.0);
    }

    #[test]
    fn quantile_estimate_never_exceeds_max() {
        let h = Histogram::detached();
        for v in [0.001, 0.4, 0.41, 0.42, 1.9] {
            h.record(v);
        }
        let s = h.snapshot();
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            assert!(
                s.quantile(q) <= s.max,
                "q={q}: {} > {}",
                s.quantile(q),
                s.max
            );
        }
        assert_eq!(s.quantile(1.0), 1.9);
    }

    #[test]
    fn families_group_rows() {
        let r = MetricsRegistry::new();
        r.counter("a_total", &[("x", "1")]).inc();
        r.counter("a_total", &[("x", "2")]).add(2);
        r.histogram("lat", &[]).record(0.5);
        r.describe("a_total", "a thing");
        let families = r.families();
        assert_eq!(families.len(), 2);
        assert_eq!(families[0].name, "a_total");
        assert_eq!(families[0].help.as_deref(), Some("a thing"));
        assert_eq!(families[0].rows.len(), 2);
        assert_eq!(families[0].rows[0].labels, vec![("x".into(), "1".into())]);
        assert_eq!(families[1].kind, MetricKind::Histogram);
    }
}
