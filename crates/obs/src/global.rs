//! Process-wide default registry and trace ring.
//!
//! Components may also construct private [`MetricsRegistry`] /
//! [`TraceRing`] instances (tests do), but production code records into
//! these singletons so one `/metrics/service` scrape sees everything.
//! Because the registry is shared across every service instance in the
//! process, components that need exact per-instance counts register
//! their series with an instance-id label from [`next_scope_id`].

use crate::flight::FlightRecorder;
use crate::registry::MetricsRegistry;
use crate::slo::{SloRegistry, SloStatus};
use crate::span::{SpanGuard, TraceRing};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Default capacity of the global trace ring.
const TRACE_RING_CAPACITY: usize = 2048;

static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
static TRACER: OnceLock<TraceRing> = OnceLock::new();
static SLOS: OnceLock<SloRegistry> = OnceLock::new();
static FLIGHT: OnceLock<FlightRecorder> = OnceLock::new();
static NEXT_SCOPE_ID: AtomicU64 = AtomicU64::new(0);

/// The process-wide metrics registry.
pub fn registry() -> &'static MetricsRegistry {
    REGISTRY.get_or_init(MetricsRegistry::new)
}

/// The process-wide trace ring (capacity 2048, oldest overwritten).
pub fn tracer() -> &'static TraceRing {
    TRACER.get_or_init(|| TraceRing::new(TRACE_RING_CAPACITY))
}

/// Starts a span recording into the global ring when dropped.
pub fn span(name: &'static str) -> SpanGuard<'static> {
    tracer().span(name)
}

/// The process-wide SLO objective directory.
pub fn slos() -> &'static SloRegistry {
    SLOS.get_or_init(SloRegistry::new)
}

/// The process-wide flight recorder (default bounds).
pub fn flight() -> &'static FlightRecorder {
    FLIGHT.get_or_init(FlightRecorder::default)
}

/// Evaluates every global SLO objective: refreshes the
/// `caladrius_slo_burn_rate` gauges in the global registry and records
/// state transitions into the global flight recorder.
pub fn evaluate_slos() -> Vec<SloStatus> {
    slos().evaluate(Some(registry()), Some(flight()))
}

/// Mints a process-unique id for labelling per-instance metric series
/// (e.g. `service="3"`), so exact per-instance counts survive many
/// instances sharing the global registry (tests run in one process).
pub fn next_scope_id() -> u64 {
    NEXT_SCOPE_ID.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_and_tracer_are_singletons() {
        let c = registry().counter("obs_selftest_total", &[]);
        c.inc();
        assert!(registry().counter("obs_selftest_total", &[]).get() >= 1);
        let before = tracer().total_recorded();
        drop(span("obs.selftest"));
        assert!(tracer().total_recorded() > before);
        assert_ne!(next_scope_id(), next_scope_id());
    }
}
