//! Multi-window SLO burn-rate engine (Google-SRE style).
//!
//! Components register an [`SloObjective`] ("99 % of plan requests
//! good") and feed it good/bad verdicts. Each objective keeps a ring of
//! good/bad tallies per time slot — the same lazy CAS rotation as
//! [`WindowedHistogram`](crate::windowed::WindowedHistogram) — and the
//! burn rate over a window is
//!
//! ```text
//! burn = (bad / (good + bad)) / (1 - target)
//! ```
//!
//! i.e. how many times faster than "exactly on target" the error budget
//! is being spent. Alerts use two windows so a short blip neither pages
//! (the slow window vetoes) nor hides a sustained burn (the fast window
//! confirms it is still happening): **firing** when both the fast
//! (default 5 m) and slow (default 1 h) burn rates exceed
//! [`SloConfig::page_burn`] (14.4 ⇒ a 30-day budget gone in 2 days),
//! **warning** when both exceed [`SloConfig::warn_burn`] (6.0).
//!
//! [`SloRegistry::evaluate`] surfaces every objective's state, exports
//! `caladrius_slo_burn_rate{objective,window}` gauges into a metrics
//! registry, and logs state transitions into the flight recorder.

use crate::clock::{coarse_now_secs, unix_now_ms};
use crate::flight::{FlightRecorder, SloTransition};
use crate::registry::MetricsRegistry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Metric family name for exported burn-rate gauges.
pub const BURN_RATE_METRIC: &str = "caladrius_slo_burn_rate";

/// Tag value marking a slot that has never been claimed.
const EMPTY_TAG: u64 = u64::MAX;

/// Shape of one SLO objective's windows and thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Fraction of events that must be good (e.g. `0.99`).
    pub target: f64,
    /// Width of one ring slot in seconds.
    pub slot_secs: u64,
    /// Ring length; the slow window spans all of it.
    pub slots: usize,
    /// Number of most-recent slots forming the fast window.
    pub fast_slots: usize,
    /// Both windows at or above this burn rate ⇒ firing.
    pub page_burn: f64,
    /// Both windows at or above this burn rate ⇒ warning.
    pub warn_burn: f64,
}

impl Default for SloConfig {
    /// 99 % target, fast 5 m / slow 1 h, page at 14.4× / warn at 6×.
    fn default() -> Self {
        SloConfig {
            target: 0.99,
            slot_secs: 300,
            slots: 12,
            fast_slots: 1,
            page_burn: 14.4,
            warn_burn: 6.0,
        }
    }
}

impl SloConfig {
    /// Same windows and thresholds, different good-fraction target.
    pub fn with_target(target: f64) -> Self {
        SloConfig {
            target,
            ..SloConfig::default()
        }
    }
}

/// Health of one objective after a burn-rate evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloState {
    /// Burn rates below every threshold.
    Ok,
    /// Sustained burn above the warning threshold.
    Warning,
    /// Sustained burn above the paging threshold.
    Firing,
}

impl SloState {
    /// Lower-case name used in JSON payloads and flight events.
    pub fn as_str(&self) -> &'static str {
        match self {
            SloState::Ok => "ok",
            SloState::Warning => "warning",
            SloState::Firing => "firing",
        }
    }
}

/// One time slot of good/bad tallies.
#[derive(Debug)]
struct SloSlot {
    tag: AtomicU64,
    good: AtomicU64,
    bad: AtomicU64,
}

#[derive(Debug)]
struct ObjectiveCore {
    name: String,
    config: SloConfig,
    slots: Box<[SloSlot]>,
    /// State seen by the previous evaluation (for transition events).
    last_state: Mutex<Option<SloState>>,
}

/// A cheap cloneable handle to one registered objective.
#[derive(Debug, Clone)]
pub struct SloObjective(Arc<ObjectiveCore>);

/// Point-in-time evaluation of one objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// Objective name (e.g. `route:/fleet/plan`).
    pub name: String,
    /// Good-fraction target.
    pub target: f64,
    /// Evaluated state.
    pub state: SloState,
    /// Burn rate over the fast window.
    pub fast_burn: f64,
    /// Burn rate over the slow window.
    pub slow_burn: f64,
    /// Fast window width in seconds.
    pub fast_window_secs: u64,
    /// Slow window width in seconds.
    pub slow_window_secs: u64,
    /// Good events inside the slow window.
    pub good: u64,
    /// Bad events inside the slow window.
    pub bad: u64,
}

fn burn_rate(good: u64, bad: u64, target: f64) -> f64 {
    let total = good + bad;
    if total == 0 {
        return 0.0;
    }
    let bad_fraction = bad as f64 / total as f64;
    bad_fraction / (1.0 - target).max(1e-9)
}

impl SloObjective {
    fn new(name: &str, config: SloConfig) -> Self {
        let slots = config.slots.max(1);
        let config = SloConfig {
            slots,
            slot_secs: config.slot_secs.max(1),
            fast_slots: config.fast_slots.clamp(1, slots),
            ..config
        };
        SloObjective(Arc::new(ObjectiveCore {
            name: name.to_string(),
            config,
            slots: (0..slots)
                .map(|_| SloSlot {
                    tag: AtomicU64::new(EMPTY_TAG),
                    good: AtomicU64::new(0),
                    bad: AtomicU64::new(0),
                })
                .collect(),
            last_state: Mutex::new(None),
        }))
    }

    /// Objective name.
    pub fn name(&self) -> &str {
        &self.0.name
    }

    /// The objective's window/threshold configuration.
    pub fn config(&self) -> SloConfig {
        self.0.config
    }

    /// Records one good (`true`) or bad (`false`) event now.
    pub fn record(&self, good: bool) {
        self.record_at(good, coarse_now_secs());
    }

    /// Deterministic variant of [`record`](SloObjective::record).
    pub fn record_at(&self, good: bool, now_secs: u64) {
        let core = &*self.0;
        let window = now_secs / core.config.slot_secs;
        let slot = &core.slots[(window % core.slots.len() as u64) as usize];
        loop {
            let tag = slot.tag.load(Ordering::Acquire);
            if tag == window {
                break;
            }
            if tag != EMPTY_TAG && tag > window {
                return; // stale clock: drop rather than pollute a newer window
            }
            if slot
                .tag
                .compare_exchange_weak(tag, window, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                slot.good.store(0, Ordering::Relaxed);
                slot.bad.store(0, Ordering::Relaxed);
                break;
            }
        }
        if good {
            slot.good.fetch_add(1, Ordering::Relaxed);
        } else {
            slot.bad.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Good/bad tallies over the most recent `window_slots` slots
    /// (including the in-progress one) ending at `now_secs`.
    fn window_counts(&self, now_secs: u64, window_slots: usize) -> (u64, u64) {
        let core = &*self.0;
        let window = now_secs / core.config.slot_secs;
        let oldest = (window + 1).saturating_sub(window_slots as u64);
        let mut good = 0u64;
        let mut bad = 0u64;
        for slot in core.slots.iter() {
            let tag = slot.tag.load(Ordering::Acquire);
            if tag == EMPTY_TAG || tag < oldest || tag > window {
                continue;
            }
            good += slot.good.load(Ordering::Relaxed);
            bad += slot.bad.load(Ordering::Relaxed);
        }
        (good, bad)
    }

    /// Evaluates the objective's burn rates and state now.
    pub fn status(&self) -> SloStatus {
        self.status_at(coarse_now_secs())
    }

    /// Deterministic variant of [`status`](SloObjective::status).
    pub fn status_at(&self, now_secs: u64) -> SloStatus {
        let config = self.0.config;
        let (fast_good, fast_bad) = self.window_counts(now_secs, config.fast_slots);
        let (slow_good, slow_bad) = self.window_counts(now_secs, config.slots);
        let fast_burn = burn_rate(fast_good, fast_bad, config.target);
        let slow_burn = burn_rate(slow_good, slow_bad, config.target);
        let state = if fast_burn >= config.page_burn && slow_burn >= config.page_burn {
            SloState::Firing
        } else if fast_burn >= config.warn_burn && slow_burn >= config.warn_burn {
            SloState::Warning
        } else {
            SloState::Ok
        };
        SloStatus {
            name: self.0.name.clone(),
            target: config.target,
            state,
            fast_burn,
            slow_burn,
            fast_window_secs: config.fast_slots as u64 * config.slot_secs,
            slow_window_secs: config.slots as u64 * config.slot_secs,
            good: slow_good,
            bad: slow_bad,
        }
    }

    /// Swaps in the freshly evaluated state, returning the previous one
    /// (None on the very first evaluation).
    fn swap_state(&self, state: SloState) -> Option<SloState> {
        let mut guard = self
            .0
            .last_state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.replace(state)
    }
}

/// Get-or-create directory of [`SloObjective`]s.
#[derive(Debug, Default)]
pub struct SloRegistry {
    objectives: RwLock<BTreeMap<String, SloObjective>>,
}

impl SloRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SloRegistry::default()
    }

    /// Returns (registering on first use) the objective `name`. The
    /// first caller's `config` wins; later callers share it.
    pub fn objective(&self, name: &str, config: SloConfig) -> SloObjective {
        if let Some(existing) = self
            .objectives
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(name)
        {
            return existing.clone();
        }
        let mut guard = self
            .objectives
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard
            .entry(name.to_string())
            .or_insert_with(|| SloObjective::new(name, config))
            .clone()
    }

    /// Number of registered objectives.
    pub fn len(&self) -> usize {
        self.objectives
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// True when no objectives are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evaluates every objective now: returns statuses sorted by name,
    /// exports burn-rate gauges into `metrics`, and records state
    /// transitions into `flight` when provided.
    pub fn evaluate(
        &self,
        metrics: Option<&MetricsRegistry>,
        flight: Option<&FlightRecorder>,
    ) -> Vec<SloStatus> {
        self.evaluate_at(metrics, flight, coarse_now_secs())
    }

    /// Deterministic variant of [`evaluate`](SloRegistry::evaluate).
    pub fn evaluate_at(
        &self,
        metrics: Option<&MetricsRegistry>,
        flight: Option<&FlightRecorder>,
        now_secs: u64,
    ) -> Vec<SloStatus> {
        let objectives: Vec<SloObjective> = self
            .objectives
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
            .cloned()
            .collect();
        let mut statuses = Vec::with_capacity(objectives.len());
        for objective in objectives {
            let status = objective.status_at(now_secs);
            if let Some(metrics) = metrics {
                for (window, burn) in [("fast", status.fast_burn), ("slow", status.slow_burn)] {
                    metrics
                        .gauge(
                            BURN_RATE_METRIC,
                            &[("objective", status.name.as_str()), ("window", window)],
                        )
                        .set(burn);
                }
            }
            let previous = objective.swap_state(status.state);
            if let (Some(flight), Some(previous)) = (flight, previous) {
                if previous != status.state {
                    flight.record_slo_transition(SloTransition {
                        ts_unix_ms: unix_now_ms(),
                        objective: status.name.clone(),
                        from: previous,
                        to: status.state,
                        fast_burn: status.fast_burn,
                        slow_burn: status.slow_burn,
                    });
                }
            }
            statuses.push(status);
        }
        statuses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-second slots so tests can drive windows directly. Thresholds
    /// sit below the 10× all-bad ceiling of a 0.9 target.
    fn test_config() -> SloConfig {
        SloConfig {
            target: 0.9,
            slot_secs: 1,
            slots: 12,
            fast_slots: 2,
            page_burn: 9.0,
            warn_burn: 6.0,
        }
    }

    #[test]
    fn burn_rate_math() {
        // All good: zero burn. On-target: burn 1. All bad: 1/(1-target).
        assert_eq!(burn_rate(100, 0, 0.9), 0.0);
        assert!((burn_rate(90, 10, 0.9) - 1.0).abs() < 1e-9);
        assert!((burn_rate(0, 10, 0.9) - 10.0).abs() < 1e-9);
        assert_eq!(burn_rate(0, 0, 0.9), 0.0);
    }

    #[test]
    fn firing_requires_both_windows() {
        let o = SloObjective::new("x", test_config());
        // Old slow-window traffic is healthy.
        for t in 0..10 {
            o.record_at(true, t);
        }
        // A fresh total outage: fast window all bad.
        for _ in 0..10 {
            o.record_at(false, 11);
        }
        let s = o.status_at(11);
        assert!((s.fast_burn - 10.0).abs() < 1e-9, "{s:?}"); // all-bad ceiling
                                                             // Slow burn is 10 bad / 20 total => 5 < 6: fast alone must not page.
        assert_eq!(s.state, SloState::Ok);
        // Sustain the outage so the slow window crosses too.
        for t in 12..20 {
            for _ in 0..10 {
                o.record_at(false, t);
            }
        }
        let s = o.status_at(19);
        assert_eq!(s.state, SloState::Firing, "{s:?}");
        assert!(s.fast_burn >= s.slow_burn);
    }

    #[test]
    fn old_slots_expire_out_of_the_windows() {
        let o = SloObjective::new("x", test_config());
        for _ in 0..50 {
            o.record_at(false, 0);
        }
        let s = o.status_at(0);
        assert!(s.slow_burn > 0.0);
        // 12 slots later the outage has aged out entirely.
        let s = o.status_at(12);
        assert_eq!((s.good, s.bad), (0, 0));
        assert_eq!(s.slow_burn, 0.0);
        assert_eq!(s.state, SloState::Ok);
    }

    #[test]
    fn registry_get_or_create_shares_objectives() {
        let r = SloRegistry::new();
        let a = r.objective("route:/x", SloConfig::with_target(0.5));
        a.record_at(false, 0);
        let b = r.objective("route:/x", SloConfig::default());
        assert_eq!(b.config().target, 0.5, "first config wins");
        assert_eq!(b.status_at(0).bad, 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn evaluate_exports_gauges_and_transitions() {
        let slos = SloRegistry::new();
        let metrics = MetricsRegistry::new();
        let flight = FlightRecorder::default();
        let o = slos.objective("obj", test_config());
        for t in 0..12 {
            for _ in 0..10 {
                o.record_at(false, t);
            }
        }
        let statuses = slos.evaluate_at(Some(&metrics), Some(&flight), 11);
        assert_eq!(statuses.len(), 1);
        assert_eq!(statuses[0].state, SloState::Firing);
        let gauge = metrics.gauge(
            BURN_RATE_METRIC,
            &[("objective", "obj"), ("window", "fast")],
        );
        assert!(gauge.get() >= 6.0);
        // First evaluation has no previous state: no transition yet.
        assert!(flight.transitions().is_empty());
        // Recovery: the next evaluation (fully aged out) transitions
        // Firing -> Ok and lands in the flight recorder.
        let statuses = slos.evaluate_at(Some(&metrics), Some(&flight), 40);
        assert_eq!(statuses[0].state, SloState::Ok);
        let transitions = flight.transitions();
        assert_eq!(transitions.len(), 1);
        assert_eq!(transitions[0].from, SloState::Firing);
        assert_eq!(transitions[0].to, SloState::Ok);
    }
}
