//! Prometheus text-format exposition (version 0.0.4) over a
//! [`MetricsRegistry`] snapshot.
//!
//! Counters and gauges render one sample per row; histograms render the
//! standard cumulative `_bucket{le="..."}` series (non-empty buckets
//! plus the mandatory `+Inf`), `_sum` and `_count`. Label values are
//! escaped per the spec (`\\`, `\"`, `\n`), and metric names are
//! sanitised to the `[a-zA-Z_:][a-zA-Z0-9_:]*` charset so the output
//! always parses.

use crate::registry::{MetricFamily, MetricHandle, MetricKind, MetricsRegistry};
use std::fmt::Write as _;

/// Content type for the text exposition format.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Replaces characters outside `[a-zA-Z0-9_:]` with `_`, prefixing `_`
/// when the first character is a digit.
fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok =
            ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || (i > 0 && ch.is_ascii_digit());
        if ok {
            out.push(ch);
        } else if i == 0 && ch.is_ascii_digit() {
            out.push('_');
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value: backslash, double quote and newline.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Escapes help text: backslash and newline (quotes are legal here).
fn escape_help(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Formats a sample value the way Prometheus expects (`+Inf`, integers
/// without an exponent, everything else via shortest-round-trip `{}`).
fn format_value(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else {
        format!("{v}")
    }
}

fn write_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}=\"{}\"", sanitize_name(k), escape_label_value(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{}=\"{}\"", k, escape_label_value(v));
    }
    out.push('}');
}

fn kind_str(kind: MetricKind) -> &'static str {
    match kind {
        MetricKind::Counter => "counter",
        MetricKind::Gauge => "gauge",
        // A windowed histogram's cumulative state renders as a standard
        // histogram family; its recent-window quantiles follow as a
        // synthetic `<name>_windowed` gauge family.
        MetricKind::Histogram | MetricKind::WindowedHistogram => "histogram",
    }
}

/// Quantiles exported for each windowed histogram row.
const WINDOWED_QUANTILES: [(&str, f64); 3] = [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)];

fn render_histogram_rows(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    snapshot: &crate::registry::HistogramSnapshot,
) {
    let mut cumulative = 0u64;
    for bucket in &snapshot.buckets {
        cumulative += bucket.count;
        if bucket.upper.is_infinite() {
            continue; // folded into the +Inf row below
        }
        let _ = write!(out, "{name}_bucket");
        write_labels(out, labels, Some(("le", &format_value(bucket.upper))));
        let _ = writeln!(out, " {cumulative}");
    }
    let _ = write!(out, "{name}_bucket");
    write_labels(out, labels, Some(("le", "+Inf")));
    let _ = writeln!(out, " {}", snapshot.count);
    let _ = write!(out, "{name}_sum");
    write_labels(out, labels, None);
    let _ = writeln!(out, " {}", format_value(snapshot.sum));
    let _ = write!(out, "{name}_count");
    write_labels(out, labels, None);
    let _ = writeln!(out, " {}", snapshot.count);
}

/// Renders the synthetic `<name>_windowed` gauge family: recent-window
/// quantile rows for every windowed-histogram row of `family`.
fn render_windowed_family(out: &mut String, family: &MetricFamily) {
    let name = format!("{}_windowed", sanitize_name(&family.name));
    let _ = writeln!(out, "# TYPE {name} gauge");
    for row in &family.rows {
        let MetricHandle::Windowed(w) = &row.handle else {
            continue;
        };
        let snapshot = w.windowed_snapshot();
        for (label, q) in WINDOWED_QUANTILES {
            out.push_str(&name);
            write_labels(out, &row.labels, Some(("quantile", label)));
            let _ = writeln!(out, " {}", format_value(snapshot.quantile(q)));
        }
    }
}

fn render_family(out: &mut String, family: &MetricFamily) {
    let name = sanitize_name(&family.name);
    if let Some(help) = &family.help {
        let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
    }
    let _ = writeln!(out, "# TYPE {name} {}", kind_str(family.kind));
    for row in &family.rows {
        match &row.handle {
            MetricHandle::Counter(c) => {
                out.push_str(&name);
                write_labels(out, &row.labels, None);
                let _ = writeln!(out, " {}", c.get());
            }
            MetricHandle::Gauge(g) => {
                out.push_str(&name);
                write_labels(out, &row.labels, None);
                let _ = writeln!(out, " {}", format_value(g.get()));
            }
            MetricHandle::Histogram(h) => {
                render_histogram_rows(out, &name, &row.labels, &h.snapshot());
            }
            MetricHandle::Windowed(w) => {
                render_histogram_rows(out, &name, &row.labels, &w.snapshot());
            }
        }
    }
    if family.kind == MetricKind::WindowedHistogram {
        render_windowed_family(out, family);
    }
}

/// Renders every family of `registry` in the Prometheus text format.
pub fn render(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for family in registry.families() {
        render_family(&mut out, &family);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_gauges_and_histograms() {
        let r = MetricsRegistry::new();
        r.describe("req_total", "requests served");
        r.counter("req_total", &[("route", "/health")]).add(3);
        r.gauge("depth", &[]).set(2.5);
        let h = r.histogram("lat_seconds", &[("route", "/x")]);
        h.record(0.5);
        h.record(0.5);
        h.record(2.0);
        let text = render(&r);
        assert!(text.contains("# HELP req_total requests served\n"));
        assert!(text.contains("# TYPE req_total counter\n"));
        assert!(text.contains("req_total{route=\"/health\"} 3\n"));
        assert!(text.contains("# TYPE depth gauge\n"));
        assert!(text.contains("depth 2.5\n"));
        assert!(text.contains("# TYPE lat_seconds histogram\n"));
        assert!(text.contains("lat_seconds_bucket{route=\"/x\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_seconds_sum{route=\"/x\"} 3\n"));
        assert!(text.contains("lat_seconds_count{route=\"/x\"} 3\n"));
        // Cumulative counts: the bucket containing 0.5 must report 2.
        assert!(text
            .lines()
            .any(|l| l.starts_with("lat_seconds_bucket") && l.ends_with(" 2")));
    }

    #[test]
    fn renders_windowed_histograms_with_quantile_gauges() {
        let r = MetricsRegistry::new();
        let w = r.windowed_histogram("route_lat_seconds", &[("route", "/plan")]);
        for _ in 0..10 {
            w.record(0.5);
        }
        let text = render(&r);
        // Cumulative rows keep the plain histogram contract.
        assert!(text.contains("# TYPE route_lat_seconds histogram\n"));
        assert!(text.contains("route_lat_seconds_bucket{route=\"/plan\",le=\"+Inf\"} 10\n"));
        assert!(text.contains("route_lat_seconds_count{route=\"/plan\"} 10\n"));
        // The synthetic windowed gauge family follows.
        assert!(text.contains("# TYPE route_lat_seconds_windowed gauge\n"));
        for q in ["0.5", "0.9", "0.99"] {
            let row = text
                .lines()
                .find(|l| {
                    l.starts_with("route_lat_seconds_windowed{")
                        && l.contains(&format!("quantile=\"{q}\""))
                })
                .unwrap_or_else(|| panic!("missing windowed quantile {q}:\n{text}"));
            assert!(row.contains("route=\"/plan\""), "{row}");
            let value: f64 = row.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(value > 0.4 && value <= 0.5, "{row}");
        }
    }

    #[test]
    fn escapes_labels_and_sanitizes_names() {
        let r = MetricsRegistry::new();
        r.counter("weird.name-1", &[("path", "a\\b\"c\nd")]).inc();
        let text = render(&r);
        assert!(text.contains("# TYPE weird_name_1 counter\n"));
        assert!(text.contains("weird_name_1{path=\"a\\\\b\\\"c\\nd\"} 1\n"));
    }

    #[test]
    fn empty_registry_renders_empty() {
        assert!(render(&MetricsRegistry::new()).is_empty());
    }
}
