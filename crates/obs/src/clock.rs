//! Coarse process clocks shared by windowed histograms, SLO slots and
//! the flight recorder.
//!
//! Windowed telemetry only needs second-granularity, monotone time, so
//! everything in this crate keys off whole seconds elapsed since the
//! clock was first touched in this process. Tests bypass the clock
//! entirely through the `*_at(now_secs)` variants of the recording and
//! reading APIs.

use std::sync::OnceLock;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

static PROCESS_START: OnceLock<Instant> = OnceLock::new();

/// Whole seconds elapsed since this clock was first used in the
/// process. Monotone and cheap (one `Instant::elapsed`).
pub fn coarse_now_secs() -> u64 {
    PROCESS_START.get_or_init(Instant::now).elapsed().as_secs()
}

/// Wall-clock milliseconds since the Unix epoch (0 if the system clock
/// is before the epoch).
pub fn unix_now_ms() -> i64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as i64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_clock_is_monotone() {
        let a = coarse_now_secs();
        let b = coarse_now_secs();
        assert!(b >= a);
        assert!(unix_now_ms() > 0);
    }
}
