//! Flight recorder: a bounded ring of periodic metrics snapshots plus
//! the most recent SLO state transitions and admission shed decisions.
//!
//! Scrape infrastructure answers "what is happening now"; the flight
//! recorder answers "what happened in the minutes before this shed
//! storm / replan stall" without any external collector. Request paths
//! call [`FlightRecorder::maybe_snapshot`] opportunistically — it is a
//! single atomic compare until the snapshot interval elapses — and
//! `GET /debug/flight` dumps the whole recorder as JSON.

use crate::clock::{coarse_now_secs, unix_now_ms};
use crate::registry::{MetricHandle, MetricsRegistry};
use crate::slo::SloState;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Bounds and cadence of a [`FlightRecorder`].
#[derive(Debug, Clone, Copy)]
pub struct FlightConfig {
    /// Minimum seconds between periodic snapshots.
    pub snapshot_interval_secs: u64,
    /// Snapshots retained (oldest evicted first).
    pub max_snapshots: usize,
    /// SLO transitions and shed events retained, each.
    pub max_events: usize,
}

impl Default for FlightConfig {
    /// Snapshot every 10 s, keep 32 snapshots (~5 minutes) and the last
    /// 128 transitions/sheds.
    fn default() -> Self {
        FlightConfig {
            snapshot_interval_secs: 10,
            max_snapshots: 32,
            max_events: 128,
        }
    }
}

/// One flattened metric sample inside a [`FlightSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlightSample {
    /// Sample name; histograms contribute `<name>_count` and
    /// `<name>_p99` rows, windowed histograms additionally
    /// `<name>_windowed_p99`.
    pub name: String,
    /// The series' label pairs.
    pub labels: Vec<(String, String)>,
    /// Sampled value.
    pub value: f64,
}

/// A point-in-time flattening of a whole metrics registry.
#[derive(Debug, Clone)]
pub struct FlightSnapshot {
    /// Wall-clock capture time, milliseconds since the Unix epoch.
    pub ts_unix_ms: i64,
    /// Coarse process uptime at capture, seconds.
    pub uptime_secs: u64,
    /// Every sampled series.
    pub samples: Vec<FlightSample>,
}

/// An SLO objective changing state between two evaluations.
#[derive(Debug, Clone)]
pub struct SloTransition {
    /// Wall-clock transition time, milliseconds since the Unix epoch.
    pub ts_unix_ms: i64,
    /// Objective name.
    pub objective: String,
    /// State before.
    pub from: SloState,
    /// State after.
    pub to: SloState,
    /// Fast-window burn rate at evaluation time.
    pub fast_burn: f64,
    /// Slow-window burn rate at evaluation time.
    pub slow_burn: f64,
}

/// One admission-control shed decision.
#[derive(Debug, Clone)]
pub struct ShedEvent {
    /// Wall-clock shed time, milliseconds since the Unix epoch.
    pub ts_unix_ms: i64,
    /// Route that shed the request.
    pub route: String,
    /// Priority of the shed request.
    pub priority: String,
    /// Why admission refused it (e.g. `slo`, `queue`, `tokens`).
    pub reason: String,
}

/// Tag value marking "no snapshot taken yet".
const NEVER: u64 = u64::MAX;

/// The bounded recorder; see the module docs.
#[derive(Debug)]
pub struct FlightRecorder {
    config: FlightConfig,
    /// Interval number of the last periodic snapshot ([`NEVER`] at start).
    last_interval: AtomicU64,
    snapshots: Mutex<VecDeque<FlightSnapshot>>,
    transitions: Mutex<VecDeque<SloTransition>>,
    sheds: Mutex<VecDeque<ShedEvent>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(FlightConfig::default())
    }
}

fn push_bounded<T>(queue: &Mutex<VecDeque<T>>, cap: usize, item: T) {
    let mut guard = queue
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if guard.len() >= cap.max(1) {
        guard.pop_front();
    }
    guard.push_back(item);
}

fn drain<T: Clone>(queue: &Mutex<VecDeque<T>>) -> Vec<T> {
    queue
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .cloned()
        .collect()
}

impl FlightRecorder {
    /// A recorder with the given bounds.
    pub fn new(config: FlightConfig) -> Self {
        FlightRecorder {
            config,
            last_interval: AtomicU64::new(NEVER),
            snapshots: Mutex::new(VecDeque::new()),
            transitions: Mutex::new(VecDeque::new()),
            sheds: Mutex::new(VecDeque::new()),
        }
    }

    /// The recorder's bounds and cadence.
    pub fn config(&self) -> FlightConfig {
        self.config
    }

    /// Takes a periodic snapshot of `registry` if the snapshot interval
    /// has elapsed since the last one; returns whether it captured.
    /// Cheap when not due (one relaxed load + compare).
    pub fn maybe_snapshot(&self, registry: &MetricsRegistry) -> bool {
        let interval = coarse_now_secs() / self.config.snapshot_interval_secs.max(1);
        let prev = self.last_interval.load(Ordering::Relaxed);
        if prev != NEVER && interval <= prev {
            return false;
        }
        if self
            .last_interval
            .compare_exchange(prev, interval, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return false; // another thread is capturing this interval
        }
        self.force_snapshot(registry);
        true
    }

    /// Unconditionally captures a snapshot of `registry`.
    pub fn force_snapshot(&self, registry: &MetricsRegistry) {
        let mut samples = Vec::new();
        for family in registry.families() {
            for row in &family.rows {
                match &row.handle {
                    MetricHandle::Counter(c) => samples.push(FlightSample {
                        name: family.name.clone(),
                        labels: row.labels.clone(),
                        value: c.get() as f64,
                    }),
                    MetricHandle::Gauge(g) => samples.push(FlightSample {
                        name: family.name.clone(),
                        labels: row.labels.clone(),
                        value: g.get(),
                    }),
                    MetricHandle::Histogram(h) => {
                        let snapshot = h.snapshot();
                        samples.push(FlightSample {
                            name: format!("{}_count", family.name),
                            labels: row.labels.clone(),
                            value: snapshot.count as f64,
                        });
                        samples.push(FlightSample {
                            name: format!("{}_p99", family.name),
                            labels: row.labels.clone(),
                            value: snapshot.quantile(0.99),
                        });
                    }
                    MetricHandle::Windowed(w) => {
                        samples.push(FlightSample {
                            name: format!("{}_count", family.name),
                            labels: row.labels.clone(),
                            value: w.count() as f64,
                        });
                        samples.push(FlightSample {
                            name: format!("{}_windowed_p99", family.name),
                            labels: row.labels.clone(),
                            value: w.windowed_quantile(0.99),
                        });
                    }
                }
            }
        }
        push_bounded(
            &self.snapshots,
            self.config.max_snapshots,
            FlightSnapshot {
                ts_unix_ms: unix_now_ms(),
                uptime_secs: coarse_now_secs(),
                samples,
            },
        );
    }

    /// Appends an SLO state transition (oldest evicted at capacity).
    pub fn record_slo_transition(&self, transition: SloTransition) {
        push_bounded(&self.transitions, self.config.max_events, transition);
    }

    /// Appends a shed decision (oldest evicted at capacity).
    pub fn record_shed(&self, route: &str, priority: &str, reason: &str) {
        push_bounded(
            &self.sheds,
            self.config.max_events,
            ShedEvent {
                ts_unix_ms: unix_now_ms(),
                route: route.to_string(),
                priority: priority.to_string(),
                reason: reason.to_string(),
            },
        );
    }

    /// Retained snapshots, oldest first.
    pub fn snapshots(&self) -> Vec<FlightSnapshot> {
        drain(&self.snapshots)
    }

    /// Retained SLO transitions, oldest first.
    pub fn transitions(&self) -> Vec<SloTransition> {
        drain(&self.transitions)
    }

    /// Retained shed events, oldest first.
    pub fn sheds(&self) -> Vec<ShedEvent> {
        drain(&self.sheds)
    }

    /// Number of retained snapshots.
    pub fn snapshot_count(&self) -> usize {
        self.snapshots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_flatten_every_metric_kind() {
        let registry = MetricsRegistry::new();
        registry.counter("reqs_total", &[("route", "/x")]).add(3);
        registry.gauge("depth", &[]).set(2.5);
        registry.histogram("lat_seconds", &[]).record(0.5);
        registry
            .windowed_histogram("lat_w_seconds", &[])
            .record(1.0);
        let flight = FlightRecorder::default();
        flight.force_snapshot(&registry);
        let snapshots = flight.snapshots();
        assert_eq!(snapshots.len(), 1);
        let find = |name: &str| {
            snapshots[0]
                .samples
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing sample {name}"))
                .value
        };
        assert_eq!(find("reqs_total"), 3.0);
        assert_eq!(find("depth"), 2.5);
        assert_eq!(find("lat_seconds_count"), 1.0);
        assert!(find("lat_seconds_p99") > 0.0);
        assert_eq!(find("lat_w_seconds_count"), 1.0);
        assert!(find("lat_w_seconds_windowed_p99") > 0.0);
    }

    #[test]
    fn rings_are_bounded() {
        let flight = FlightRecorder::new(FlightConfig {
            snapshot_interval_secs: 10,
            max_snapshots: 2,
            max_events: 3,
        });
        let registry = MetricsRegistry::new();
        for _ in 0..5 {
            flight.force_snapshot(&registry);
        }
        assert_eq!(flight.snapshot_count(), 2);
        for i in 0..5 {
            flight.record_shed(&format!("/r{i}"), "low", "slo");
        }
        let sheds = flight.sheds();
        assert_eq!(sheds.len(), 3);
        assert_eq!(sheds[0].route, "/r2", "oldest evicted first");
        assert_eq!(sheds[2].reason, "slo");
    }

    #[test]
    fn maybe_snapshot_captures_once_per_interval() {
        let flight = FlightRecorder::new(FlightConfig {
            snapshot_interval_secs: 3600, // far beyond any test run
            ..FlightConfig::default()
        });
        let registry = MetricsRegistry::new();
        assert!(flight.maybe_snapshot(&registry), "first call captures");
        assert!(!flight.maybe_snapshot(&registry), "same interval skips");
        assert_eq!(flight.snapshot_count(), 1);
    }
}
