//! Span timing, request-id propagation and the structured trace ring.
//!
//! A [`RequestId`] is minted at the service edge (the HTTP layer) and
//! installed for the current thread with a [`RequestScope`] guard; any
//! code downstream — model fits, simulator runs, planner searches — can
//! read it with [`current_request_id`] without plumbing it through every
//! signature. Finished spans are pushed into a bounded [`TraceRing`]
//! that overwrites oldest-first, so tracing is always on and never
//! grows without bound.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Identifier tying every span recorded while serving one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl RequestId {
    /// Parses the hex form produced by `Display` (also accepts plain
    /// decimal for hand-written requests).
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        u64::from_str_radix(s, 16)
            .ok()
            .or_else(|| s.parse().ok())
            .map(RequestId)
    }
}

static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// Mints a fresh process-unique request id.
pub fn next_request_id() -> RequestId {
    RequestId(NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed))
}

thread_local! {
    static CURRENT_REQUEST: Cell<Option<u64>> = const { Cell::new(None) };
}

/// The request id installed on this thread, if any.
pub fn current_request_id() -> Option<RequestId> {
    CURRENT_REQUEST.with(|c| c.get().map(RequestId))
}

/// Guard installing a request id for the current thread; dropping it
/// restores whatever was installed before (scopes nest correctly).
#[derive(Debug)]
pub struct RequestScope {
    previous: Option<u64>,
}

impl RequestScope {
    /// Installs `id` as the current thread's request id.
    pub fn enter(id: RequestId) -> Self {
        let previous = CURRENT_REQUEST.with(|c| c.replace(Some(id.0)));
        RequestScope { previous }
    }
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        CURRENT_REQUEST.with(|c| c.set(self.previous));
    }
}

/// A finished span as stored in the [`TraceRing`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Monotone sequence number (total order of ring insertion).
    pub seq: u64,
    /// Wall-clock completion time, milliseconds since the Unix epoch.
    pub ts_unix_ms: i64,
    /// Span name, e.g. `"core.evaluate"`.
    pub name: String,
    /// Span duration in microseconds.
    pub duration_us: u64,
    /// Request the span belongs to (None for background work).
    pub request_id: Option<RequestId>,
    /// Free-form `key=value` annotations.
    pub fields: Vec<(String, String)>,
}

/// Bounded ring of recent [`SpanEvent`]s; pushes overwrite the oldest
/// entry once `capacity` is reached.
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    seq: AtomicU64,
    events: Mutex<VecDeque<SpanEvent>>,
}

impl TraceRing {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            capacity,
            seq: AtomicU64::new(0),
            events: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Records a finished span. `request_id` defaults to the thread's
    /// current scope when `None` is passed explicitly by [`SpanGuard`].
    pub fn record(
        &self,
        name: &str,
        duration: Duration,
        request_id: Option<RequestId>,
        fields: Vec<(String, String)>,
    ) {
        let ts_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as i64)
            .unwrap_or(0);
        let mut guard = self
            .events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Allocated under the lock: seq order must match ring order, or
        // concurrent recorders could insert a lower seq after a higher
        // one and break `recent()`'s newest-first contract.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let event = SpanEvent {
            seq,
            ts_unix_ms,
            name: name.to_string(),
            duration_us: duration.as_micros() as u64,
            request_id,
            fields,
        };
        if guard.len() == self.capacity {
            guard.pop_front();
        }
        guard.push_back(event);
    }

    /// The most recent `limit` events, newest first.
    pub fn recent(&self, limit: usize) -> Vec<SpanEvent> {
        let guard = self
            .events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.iter().rev().take(limit).cloned().collect()
    }

    /// Number of events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Starts a span that records into this ring when dropped.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            ring: self,
            name,
            started: Instant::now(),
            fields: Vec::new(),
        }
    }
}

/// RAII span: created via [`TraceRing::span`], records its elapsed time
/// and the thread's current request id into the ring on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    ring: &'a TraceRing,
    name: &'static str,
    started: Instant,
    fields: Vec<(String, String)>,
}

impl SpanGuard<'_> {
    /// Attaches a `key=value` annotation to the span.
    pub fn field(&mut self, key: &str, value: impl ToString) -> &mut Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Elapsed time since the span started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.ring.record(
            self.name,
            self.started.elapsed(),
            current_request_id(),
            std::mem::take(&mut self.fields),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_id_round_trips_through_display() {
        let id = RequestId(0xdead_beef);
        assert_eq!(RequestId::parse(&id.to_string()), Some(id));
        assert_eq!(RequestId::parse("42"), Some(RequestId(0x42)));
        assert_eq!(RequestId::parse("zz"), None);
    }

    #[test]
    fn scopes_nest_and_restore() {
        assert_eq!(current_request_id(), None);
        let outer = RequestScope::enter(RequestId(1));
        assert_eq!(current_request_id(), Some(RequestId(1)));
        {
            let _inner = RequestScope::enter(RequestId(2));
            assert_eq!(current_request_id(), Some(RequestId(2)));
        }
        assert_eq!(current_request_id(), Some(RequestId(1)));
        drop(outer);
        assert_eq!(current_request_id(), None);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let ring = TraceRing::new(3);
        for i in 0..5 {
            ring.record(&format!("s{i}"), Duration::from_micros(i), None, vec![]);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_recorded(), 5);
        let recent = ring.recent(10);
        let names: Vec<&str> = recent.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["s4", "s3", "s2"]);
        assert_eq!(ring.recent(1).len(), 1);
    }

    #[test]
    fn span_guard_records_fields_and_request_id() {
        let ring = TraceRing::new(8);
        let _scope = RequestScope::enter(RequestId(7));
        {
            let mut span = ring.span("unit.test");
            span.field("topology", "wordcount").field("n", 3);
        }
        let events = ring.recent(1);
        assert_eq!(events[0].name, "unit.test");
        assert_eq!(events[0].request_id, Some(RequestId(7)));
        assert_eq!(
            events[0].fields,
            vec![
                ("topology".to_string(), "wordcount".to_string()),
                ("n".to_string(), "3".to_string())
            ]
        );
    }
}
