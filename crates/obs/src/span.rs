//! Span timing, request-id propagation and the structured trace ring.
//!
//! A [`RequestId`] is minted at the service edge (the HTTP layer) and
//! installed for the current thread with a [`RequestScope`] guard; any
//! code downstream — model fits, simulator runs, planner searches — can
//! read it with [`current_request_id`] without plumbing it through every
//! signature. Finished spans are pushed into a bounded [`TraceRing`]
//! that overwrites oldest-first, so tracing is always on and never
//! grows without bound.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Identifier tying every span recorded while serving one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl RequestId {
    /// Parses the hex form produced by `Display` (also accepts plain
    /// decimal for hand-written requests).
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        u64::from_str_radix(s, 16)
            .ok()
            .or_else(|| s.parse().ok())
            .map(RequestId)
    }
}

static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// Mints a fresh process-unique request id.
pub fn next_request_id() -> RequestId {
    RequestId(NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed))
}

thread_local! {
    static CURRENT_REQUEST: Cell<Option<u64>> = const { Cell::new(None) };
    /// Stack of live span ids on this thread; the top is the parent of
    /// any span created next.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Mints a fresh process-unique span id.
fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// The innermost live span id on this thread, if any — the id a span
/// created right now would get as its parent.
pub fn current_span_id() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

fn push_span_id(id: u64) {
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
}

/// Removes `id` from this thread's span stack (last occurrence, so
/// out-of-order guard drops degrade gracefully).
fn pop_span_id(id: u64) {
    SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if let Some(pos) = stack.iter().rposition(|&x| x == id) {
            stack.remove(pos);
        }
    });
}

/// Guard adopting `parent` as this thread's current span, so spans
/// created on a *different* thread (an exec-pool worker, say) attach to
/// the span that spawned the work. Pairs with [`RequestScope`] when
/// fanning a request out across threads.
#[derive(Debug)]
pub struct ParentSpanScope {
    id: u64,
}

impl ParentSpanScope {
    /// Installs `parent` as the current span id for this thread until
    /// the guard drops.
    pub fn enter(parent: u64) -> Self {
        push_span_id(parent);
        ParentSpanScope { id: parent }
    }
}

impl Drop for ParentSpanScope {
    fn drop(&mut self) {
        pop_span_id(self.id);
    }
}

/// The request id installed on this thread, if any.
pub fn current_request_id() -> Option<RequestId> {
    CURRENT_REQUEST.with(|c| c.get().map(RequestId))
}

/// Guard installing a request id for the current thread; dropping it
/// restores whatever was installed before (scopes nest correctly).
#[derive(Debug)]
pub struct RequestScope {
    previous: Option<u64>,
}

impl RequestScope {
    /// Installs `id` as the current thread's request id.
    pub fn enter(id: RequestId) -> Self {
        let previous = CURRENT_REQUEST.with(|c| c.replace(Some(id.0)));
        RequestScope { previous }
    }
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        CURRENT_REQUEST.with(|c| c.set(self.previous));
    }
}

/// A finished span as stored in the [`TraceRing`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Monotone sequence number (total order of ring insertion).
    pub seq: u64,
    /// Wall-clock completion time, milliseconds since the Unix epoch.
    pub ts_unix_ms: i64,
    /// Span name, e.g. `"core.evaluate"`.
    pub name: String,
    /// Span duration in microseconds.
    pub duration_us: u64,
    /// Request the span belongs to (None for background work).
    pub request_id: Option<RequestId>,
    /// Process-unique id of this span.
    pub span_id: u64,
    /// Id of the enclosing span (on this or a parent thread), if any.
    pub parent_span_id: Option<u64>,
    /// Free-form `key=value` annotations.
    pub fields: Vec<(String, String)>,
}

/// Bounded ring of recent [`SpanEvent`]s; pushes overwrite the oldest
/// entry once `capacity` is reached.
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    seq: AtomicU64,
    events: Mutex<VecDeque<SpanEvent>>,
}

impl TraceRing {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            capacity,
            seq: AtomicU64::new(0),
            events: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Records a finished span, minting a fresh span id whose parent is
    /// this thread's current span (if any).
    pub fn record(
        &self,
        name: &str,
        duration: Duration,
        request_id: Option<RequestId>,
        fields: Vec<(String, String)>,
    ) {
        self.record_span(
            name,
            duration,
            request_id,
            next_span_id(),
            current_span_id(),
            fields,
        );
    }

    /// Records a finished span with explicit span/parent ids (used by
    /// [`SpanGuard`], which allocated its id at creation time).
    pub fn record_span(
        &self,
        name: &str,
        duration: Duration,
        request_id: Option<RequestId>,
        span_id: u64,
        parent_span_id: Option<u64>,
        fields: Vec<(String, String)>,
    ) {
        let ts_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as i64)
            .unwrap_or(0);
        let mut guard = self
            .events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Allocated under the lock: seq order must match ring order, or
        // concurrent recorders could insert a lower seq after a higher
        // one and break `recent()`'s newest-first contract.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let event = SpanEvent {
            seq,
            ts_unix_ms,
            name: name.to_string(),
            duration_us: duration.as_micros() as u64,
            request_id,
            span_id,
            parent_span_id,
            fields,
        };
        if guard.len() == self.capacity {
            guard.pop_front();
        }
        guard.push_back(event);
    }

    /// The most recent `limit` events, newest first.
    pub fn recent(&self, limit: usize) -> Vec<SpanEvent> {
        self.recent_filtered(limit, None)
    }

    /// The most recent `limit` events, newest first, optionally
    /// restricted to one request id.
    pub fn recent_filtered(&self, limit: usize, request_id: Option<RequestId>) -> Vec<SpanEvent> {
        let guard = self
            .events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard
            .iter()
            .rev()
            .filter(|e| match request_id {
                None => true,
                Some(id) => e.request_id == Some(id),
            })
            .take(limit)
            .cloned()
            .collect()
    }

    /// Maximum number of events the ring retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Starts a span that records into this ring when dropped. The span
    /// gets a fresh id, adopts this thread's innermost live span as its
    /// parent, and becomes the current span until it drops.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        let id = next_span_id();
        let parent = current_span_id();
        push_span_id(id);
        SpanGuard {
            ring: self,
            name,
            started: Instant::now(),
            id,
            parent,
            fields: Vec::new(),
        }
    }
}

/// RAII span: created via [`TraceRing::span`], records its elapsed
/// time, span/parent ids and the thread's current request id into the
/// ring on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    ring: &'a TraceRing,
    name: &'static str,
    started: Instant,
    id: u64,
    parent: Option<u64>,
    fields: Vec<(String, String)>,
}

impl SpanGuard<'_> {
    /// Attaches a `key=value` annotation to the span.
    pub fn field(&mut self, key: &str, value: impl ToString) -> &mut Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Elapsed time since the span started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// This span's process-unique id (hand it to
    /// [`ParentSpanScope::enter`] on worker threads to parent their
    /// spans under this one).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        pop_span_id(self.id);
        self.ring.record_span(
            self.name,
            self.started.elapsed(),
            current_request_id(),
            self.id,
            self.parent,
            std::mem::take(&mut self.fields),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn request_id_round_trips_through_display() {
        let id = RequestId(0xdead_beef);
        assert_eq!(RequestId::parse(&id.to_string()), Some(id));
        assert_eq!(RequestId::parse("42"), Some(RequestId(0x42)));
        assert_eq!(RequestId::parse("zz"), None);
    }

    #[test]
    fn scopes_nest_and_restore() {
        assert_eq!(current_request_id(), None);
        let outer = RequestScope::enter(RequestId(1));
        assert_eq!(current_request_id(), Some(RequestId(1)));
        {
            let _inner = RequestScope::enter(RequestId(2));
            assert_eq!(current_request_id(), Some(RequestId(2)));
        }
        assert_eq!(current_request_id(), Some(RequestId(1)));
        drop(outer);
        assert_eq!(current_request_id(), None);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let ring = TraceRing::new(3);
        for i in 0..5 {
            ring.record(&format!("s{i}"), Duration::from_micros(i), None, vec![]);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_recorded(), 5);
        let recent = ring.recent(10);
        let names: Vec<&str> = recent.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["s4", "s3", "s2"]);
        assert_eq!(ring.recent(1).len(), 1);
    }

    #[test]
    fn nested_spans_link_parent_ids() {
        let ring = TraceRing::new(8);
        let outer_id;
        {
            let outer = ring.span("outer");
            outer_id = outer.id();
            {
                let _inner = ring.span("inner");
            }
        }
        let events = ring.recent(2);
        assert_eq!(events[0].name, "outer");
        assert_eq!(events[0].parent_span_id, None);
        assert_eq!(events[1].name, "inner");
        assert_eq!(events[1].parent_span_id, Some(outer_id));
        assert_ne!(events[0].span_id, events[1].span_id);
        // The stack is clean after the guards drop.
        assert_eq!(current_span_id(), None);
    }

    #[test]
    fn parent_scope_carries_spans_across_threads() {
        let ring = Arc::new(TraceRing::new(8));
        let parent_id;
        {
            let parent = ring.span("fanout");
            parent_id = parent.id();
            let ring2 = Arc::clone(&ring);
            std::thread::spawn(move || {
                let _scope = ParentSpanScope::enter(parent_id);
                let _child = ring2.span("worker");
            })
            .join()
            .unwrap();
        }
        let worker = ring
            .recent(8)
            .into_iter()
            .find(|e| e.name == "worker")
            .unwrap();
        assert_eq!(worker.parent_span_id, Some(parent_id));
        assert_eq!(current_span_id(), None);
    }

    #[test]
    fn recent_filtered_selects_one_request() {
        let ring = TraceRing::new(8);
        {
            let _scope = RequestScope::enter(RequestId(1));
            drop(ring.span("a"));
        }
        {
            let _scope = RequestScope::enter(RequestId(2));
            drop(ring.span("b"));
            drop(ring.span("c"));
        }
        let hits = ring.recent_filtered(10, Some(RequestId(2)));
        let names: Vec<&str> = hits.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["c", "b"]);
        assert_eq!(ring.recent_filtered(1, Some(RequestId(2))).len(), 1);
        assert!(ring.recent_filtered(10, Some(RequestId(9))).is_empty());
        assert_eq!(ring.capacity(), 8);
    }

    #[test]
    fn span_guard_records_fields_and_request_id() {
        let ring = TraceRing::new(8);
        let _scope = RequestScope::enter(RequestId(7));
        {
            let mut span = ring.span("unit.test");
            span.field("topology", "wordcount").field("n", 3);
        }
        let events = ring.recent(1);
        assert_eq!(events[0].name, "unit.test");
        assert_eq!(events[0].request_id, Some(RequestId(7)));
        assert_eq!(
            events[0].fields,
            vec![
                ("topology".to_string(), "wordcount".to_string()),
                ("n".to_string(), "3".to_string())
            ]
        );
    }
}
