//! Property and concurrency tests for the observability layer:
//! histogram quantiles against a sorted-vector reference, lock-free
//! recording under thread contention, trace-ring wraparound and
//! Prometheus text-format invariants.

use caladrius_obs::{
    Histogram, MetricsRegistry, SloConfig, SloRegistry, TraceRing, WindowedHistogram,
};
use proptest::prelude::*;
use std::time::Duration;

/// One octave is split into 4 sub-buckets, so a bucket's bounds are a
/// factor of 2^(1/4) apart: any quantile estimate interpolated inside
/// the right bucket is within ~19% of the exact order statistic.
const BUCKET_WIDTH: f64 = 1.189_207_115_002_721_1; // 2^(1/4)

fn arb_positive_values() -> impl Strategy<Value = Vec<f64>> {
    // Stay inside the histogram's bucketed range (~4.7e-10 .. ~8.6e9)
    // so no sample overflows into the +Inf bucket.
    prop::collection::vec(1e-6f64..1e9, 1..400)
}

proptest! {
    /// Quantile estimates land in the same log bucket as the exact
    /// order statistic from a sorted copy of the data.
    #[test]
    fn quantiles_track_sorted_reference(values in arb_positive_values(), q in 0.0f64..1.0) {
        let h = Histogram::detached();
        for v in &values {
            h.record(*v);
        }
        let snapshot = h.snapshot();
        prop_assert_eq!(snapshot.count, values.len() as u64);

        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let reference = sorted[rank - 1];
        let estimate = snapshot.quantile(q);
        let slack = BUCKET_WIDTH * 1.0001;
        prop_assert!(
            estimate <= reference * slack && estimate >= reference / slack,
            "q={} estimate={} reference={}", q, estimate, reference,
        );
    }

    /// Count, sum and max from a snapshot agree with exact aggregation.
    #[test]
    fn snapshot_aggregates_are_exact(values in arb_positive_values()) {
        let h = Histogram::detached();
        for v in &values {
            h.record(*v);
        }
        let snapshot = h.snapshot();
        prop_assert_eq!(snapshot.count, values.len() as u64);
        let max = values.iter().copied().fold(f64::MIN, f64::max);
        prop_assert_eq!(snapshot.max, max);
        let total: f64 = values.iter().sum();
        prop_assert!((snapshot.sum - total).abs() <= 1e-6 * total.max(1.0));
        prop_assert!((snapshot.mean() - total / values.len() as f64).abs() <= 1.0);
    }

    /// Bucket counts in the rendered Prometheus text are cumulative and
    /// end at the total count; every sample line parses.
    #[test]
    fn prometheus_histogram_lines_are_cumulative(values in arb_positive_values()) {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("latency_seconds", &[("route", "/x")]);
        for v in &values {
            h.record(*v);
        }
        let text = caladrius_obs::render_prometheus(&registry);
        let mut last = 0u64;
        let mut bucket_lines = 0usize;
        for line in text.lines().filter(|l| l.starts_with("latency_seconds_bucket")) {
            bucket_lines += 1;
            let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            prop_assert!(count >= last, "non-monotone bucket counts:\n{}", text);
            last = count;
        }
        prop_assert!(bucket_lines >= 1);
        prop_assert_eq!(last, values.len() as u64, "+Inf bucket = total count");
    }

    /// A windowed histogram's recent-window quantiles track a sorted
    /// reference of the values recorded inside the window, within one
    /// bucket's width. Sub-buckets split an octave linearly, so the
    /// widest ratio between a bucket's bounds is the bottom quarter's
    /// 1.25 (not the 2^(1/4) geometric mean).
    #[test]
    fn windowed_quantiles_track_sorted_reference(
        values in arb_positive_values(),
        q in 0.0f64..1.0,
    ) {
        let w = WindowedHistogram::with_window(4, 10);
        for v in &values {
            w.record_at(*v, 100);
        }
        let snapshot = w.windowed_snapshot_at(100);
        prop_assert_eq!(snapshot.count, values.len() as u64);

        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let reference = sorted[rank - 1];
        let estimate = snapshot.quantile(q);
        let slack = 1.25 * 1.0001;
        prop_assert!(
            estimate <= reference * slack && estimate >= reference / slack,
            "q={} estimate={} reference={}", q, estimate, reference,
        );
    }

    /// The windowed exposition keeps the cumulative-histogram contract
    /// under the original (sanitised) name — monotone bucket counts
    /// ending at the total — and adds exactly one parseable quantile
    /// gauge row per exported quantile, with label escaping intact in
    /// both families.
    #[test]
    fn prometheus_windowed_rows_are_cumulative_and_gauged(values in arb_positive_values()) {
        let registry = MetricsRegistry::new();
        let w = registry.windowed_histogram("win.lat-seconds", &[("route", "a\"b")]);
        for v in &values {
            w.record(*v);
        }
        let text = caladrius_obs::render_prometheus(&registry);
        prop_assert!(text.contains("# TYPE win_lat_seconds histogram\n"), "{}", text);
        prop_assert!(text.contains("# TYPE win_lat_seconds_windowed gauge\n"), "{}", text);

        let mut last = 0u64;
        let mut bucket_lines = 0usize;
        for line in text.lines().filter(|l| l.starts_with("win_lat_seconds_bucket")) {
            bucket_lines += 1;
            prop_assert!(line.contains("route=\"a\\\"b\""), "{}", line);
            let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            prop_assert!(count >= last, "non-monotone bucket counts:\n{}", text);
            last = count;
        }
        prop_assert!(bucket_lines >= 1);
        prop_assert_eq!(last, values.len() as u64, "+Inf bucket = total count");

        let mut gauge_rows = 0usize;
        for line in text.lines().filter(|l| l.starts_with("win_lat_seconds_windowed{")) {
            gauge_rows += 1;
            prop_assert!(line.contains("route=\"a\\\"b\""), "{}", line);
            prop_assert!(line.contains("quantile=\""), "{}", line);
            let value = line.rsplit(' ').next().unwrap();
            prop_assert!(value.parse::<f64>().is_ok(), "unparseable value in {:?}", line);
        }
        prop_assert_eq!(gauge_rows, 3, "one gauge row per exported quantile:\n{}", text);
    }
}

/// `evaluate` exports one `caladrius_slo_burn_rate` gauge row per
/// (objective, window); values are finite, non-negative and parse out
/// of the text exposition with the objective name escaped as a label.
#[test]
fn slo_burn_rate_gauges_render_per_objective_and_window() {
    let registry = MetricsRegistry::new();
    let slos = SloRegistry::new();
    let objective = slos.objective("route:/topology/{topology}/plan", SloConfig::default());
    for _ in 0..9 {
        objective.record_at(true, 100);
    }
    objective.record_at(false, 100);
    slos.evaluate_at(Some(&registry), None, 100);

    let text = caladrius_obs::render_prometheus(&registry);
    assert!(
        text.contains("# TYPE caladrius_slo_burn_rate gauge\n"),
        "{text}"
    );
    for window in ["fast", "slow"] {
        let row = text
            .lines()
            .find(|l| {
                l.starts_with("caladrius_slo_burn_rate{")
                    && l.contains(&format!("window=\"{window}\""))
            })
            .unwrap_or_else(|| panic!("missing {window} burn-rate row:\n{text}"));
        assert!(
            row.contains("objective=\"route:/topology/{topology}/plan\""),
            "{row}"
        );
        let value: f64 = row.rsplit(' ').next().unwrap().parse().unwrap();
        // 1 bad out of 10 against a 0.99 target burns at 10× budget.
        assert!(value.is_finite() && value > 0.0, "{row}");
    }
}

/// Eight threads hammer one histogram and one counter; totals are exact
/// because recording is lock-free atomics, not a racy read-modify-write.
#[test]
fn concurrent_recording_is_lossless() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 10_000;
    let registry = std::sync::Arc::new(MetricsRegistry::new());
    let histogram = registry.histogram("contended_seconds", &[]);
    let counter = registry.counter("contended_total", &[]);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let histogram = histogram.clone();
            let counter = counter.clone();
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    histogram.record((t * PER_THREAD + i + 1) as f64 * 1e-6);
                    counter.inc();
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let snapshot = histogram.snapshot();
    assert_eq!(snapshot.count, (THREADS * PER_THREAD) as u64);
    assert_eq!(counter.get(), (THREADS * PER_THREAD) as u64);
    assert_eq!(snapshot.max, (THREADS * PER_THREAD) as f64 * 1e-6);
    let total_buckets: u64 = snapshot.buckets.iter().map(|b| b.count).sum();
    assert_eq!(
        total_buckets, snapshot.count,
        "every sample lands in a bucket"
    );
}

/// Spans recorded from many threads wrap the ring without losing the
/// newest entries or corrupting the sequence order.
#[test]
fn trace_ring_wraps_under_concurrency() {
    let ring = std::sync::Arc::new(TraceRing::new(64));
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let ring = std::sync::Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..100 {
                    ring.record(
                        &format!("thread{t}.span{i}"),
                        Duration::from_micros(i),
                        None,
                        vec![("i".into(), i.to_string())],
                    );
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(ring.len(), 64, "ring stays at capacity");
    assert_eq!(ring.total_recorded(), 800);
    let recent = ring.recent(1000);
    assert_eq!(recent.len(), 64);
    assert!(
        recent.windows(2).all(|w| w[0].seq > w[1].seq),
        "newest first, strictly ordered"
    );
}

/// Label escaping survives hostile values and the `# TYPE` metadata
/// lines stay machine-parseable.
#[test]
fn prometheus_format_escapes_and_type_lines_parse() {
    let registry = MetricsRegistry::new();
    registry.describe("weird_total", "help with \\ backslash\nand newline");
    registry
        .counter("weird_total", &[("path", "a\\b\"c\nd"), ("ok", "plain")])
        .inc();
    registry.gauge("depth", &[]).set(-1.5);
    registry.histogram("lat.seconds-v2", &[]).record(0.25);
    let text = caladrius_obs::render_prometheus(&registry);

    assert!(
        text.contains("path=\"a\\\\b\\\"c\\nd\""),
        "escaped label:\n{text}"
    );
    assert!(text.contains("# HELP weird_total help with \\\\ backslash\\nand newline\n"));

    let mut type_lines = 0;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            type_lines += 1;
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap();
            let kind = parts.next().unwrap();
            assert!(parts.next().is_none(), "extra tokens in {line:?}");
            assert!(
                name.chars()
                    .enumerate()
                    .all(|(i, c)| c.is_ascii_alphabetic()
                        || c == '_'
                        || c == ':'
                        || (i > 0 && c.is_ascii_digit())),
                "unsanitized name in {line:?}"
            );
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown kind in {line:?}"
            );
        } else if !line.starts_with('#') && !line.is_empty() {
            // Sample lines: everything after the last space is a value.
            let value = line.rsplit(' ').next().unwrap();
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
                "unparseable value in {line:?}"
            );
        }
    }
    assert_eq!(type_lines, 3, "one TYPE line per family:\n{text}");
    assert!(text.contains("# TYPE lat_seconds_v2 histogram\n"));
}
