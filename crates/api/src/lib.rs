//! # caladrius-api
//!
//! The API tier (paper §III-A): "essentially a web server translating
//! and routing user HTTP requests to corresponding modelling
//! interfaces".
//!
//! * [`json`] — a self-contained JSON value model, serializer and parser
//!   (no JSON crate is on the offline allow-list).
//! * [`http`] — a minimal HTTP/1.1 server over `std::net` with a
//!   crossbeam worker pool, plus a tiny blocking client for tests and
//!   examples.
//! * [`jobs`] — asynchronous model execution: requests can take seconds,
//!   so the API supports `202 Accepted` + job polling, "allowing the
//!   client to continue with other operations while the modelling is
//!   being processed". Keyed submission caps each topology's in-flight
//!   jobs so one tenant cannot monopolize the workers.
//! * [`admission`] — token-bucket + p99-SLO + queue-watermark admission
//!   control: under overload, low-priority requests are shed with `429`
//!   and `Retry-After` instead of queueing without bound.
//! * [`routes`] — Caladrius's REST endpoints wired to
//!   [`caladrius_core::Caladrius`]:
//!   `GET /model/traffic/heron/{topology}`,
//!   `POST /model/topology/heron/{topology}`, job submission/polling,
//!   topology listing and health.

#![warn(missing_docs)]

pub mod admission;
pub mod http;
pub mod jobs;
pub mod json;
pub mod routes;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionDecision, Priority};
pub use http::{HttpClient, HttpServer, Request, Response};
pub use jobs::{JobRejected, JobRunner};
pub use json::Value;
pub use routes::{
    flight_response, parse_plan_body, record_route_slo, slo_status_response, trace_recent_response,
    ApiService,
};
