//! Admission control and load shedding at the HTTP edge.
//!
//! The fleet tier exposes one host to thousands of topologies, so the
//! API must protect its own latency SLO instead of queueing without
//! bound. Admission combines three signals, all read from handles that
//! already exist in `caladrius-obs`:
//!
//! 1. **p99 route latency** — when the per-route latency histogram's
//!    p99 exceeds the configured SLO, the route is overloaded.
//! 2. **Job-queue depth** — when the async job queue crosses a
//!    watermark, accepted work would only wait.
//! 3. **Token bucket** — a smooth rate limit under normal operation.
//!
//! High-priority requests (header `x-priority: high`) always pass:
//! shedding is for the long tail of low-priority replans. Shed requests
//! get `429 Too Many Requests` with a `Retry-After` hint, and every
//! shed increments `caladrius_fleet_shed_total{route,priority}`.

use parking_lot::Mutex;
use std::time::Instant;

/// Header carrying request priority (lower-case, as parsed).
pub const PRIORITY_HEADER: &str = "x-priority";

/// Request priority for admission: high-priority requests bypass load
/// shedding entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Must be served if at all possible (`x-priority: high`).
    High,
    /// Sheddable under overload (the default).
    Low,
}

impl Priority {
    /// Parses the `x-priority` header value; anything but `high` is low.
    pub fn from_header(value: Option<&str>) -> Priority {
        match value {
            Some(v) if v.eq_ignore_ascii_case("high") => Priority::High,
            _ => Priority::Low,
        }
    }

    /// The metric label value.
    pub fn as_str(&self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Low => "low",
        }
    }
}

/// Knobs of the admission layer. The default is **disabled** (admit
/// everything) so single-tenant deployments keep their behavior; the
/// fleet tier enables it explicitly.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionConfig {
    /// Master switch; when false every request is admitted.
    pub enabled: bool,
    /// Latency SLO: shed low-priority work while the route's observed
    /// p99 exceeds this many seconds.
    pub slo_p99_seconds: f64,
    /// Queue watermark: shed low-priority work while the async job
    /// queue is deeper than this.
    pub queue_depth_watermark: f64,
    /// Token bucket burst size (tokens).
    pub bucket_capacity: f64,
    /// Token bucket refill rate (tokens per second). Zero freezes the
    /// bucket, which makes tests deterministic.
    pub refill_per_second: f64,
    /// `Retry-After` hint (seconds) attached to shed responses.
    pub retry_after_seconds: u32,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            slo_p99_seconds: 2.0,
            queue_depth_watermark: 64.0,
            bucket_capacity: 64.0,
            refill_per_second: 32.0,
            retry_after_seconds: 1,
        }
    }
}

/// Verdict of one admission check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Serve the request.
    Admit,
    /// Shed the request with `429` and this `Retry-After` hint.
    Shed {
        /// Seconds the client should wait before retrying.
        retry_after_seconds: u32,
    },
}

struct TokenBucket {
    tokens: f64,
    last_refill: Instant,
}

/// Token-bucket + SLO + queue-watermark admission controller (see the
/// module docs for the decision order).
pub struct AdmissionController {
    config: AdmissionConfig,
    bucket: Mutex<TokenBucket>,
}

impl std::fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionController")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl AdmissionController {
    /// Builds a controller; describes the shed counter on the global
    /// registry.
    pub fn new(config: AdmissionConfig) -> Self {
        caladrius_obs::global_registry().describe(
            "caladrius_fleet_shed_total",
            "Requests shed by admission control, by route and priority",
        );
        let bucket = TokenBucket {
            tokens: config.bucket_capacity,
            last_refill: Instant::now(),
        };
        Self {
            config,
            bucket: Mutex::new(bucket),
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Decides admission for one request given the route's observed p99
    /// (None while the histogram is empty) and the current job-queue
    /// depth. Records sheds to `caladrius_fleet_shed_total`.
    pub fn decide(
        &self,
        route: &str,
        priority: Priority,
        p99_seconds: Option<f64>,
        queue_depth: f64,
    ) -> AdmissionDecision {
        if !self.config.enabled || priority == Priority::High {
            return AdmissionDecision::Admit;
        }
        let over_slo = p99_seconds.is_some_and(|p99| p99 > self.config.slo_p99_seconds);
        let over_watermark = queue_depth > self.config.queue_depth_watermark;
        let reason = if over_slo {
            Some("slo")
        } else if over_watermark {
            Some("queue")
        } else if !self.take_token() {
            Some("tokens")
        } else {
            None
        };
        if let Some(reason) = reason {
            self.record_shed(route, priority, reason);
            return AdmissionDecision::Shed {
                retry_after_seconds: self.config.retry_after_seconds,
            };
        }
        AdmissionDecision::Admit
    }

    fn take_token(&self) -> bool {
        let mut bucket = self.bucket.lock();
        let now = Instant::now();
        let elapsed = now.duration_since(bucket.last_refill).as_secs_f64();
        bucket.last_refill = now;
        bucket.tokens = (bucket.tokens + elapsed * self.config.refill_per_second)
            .min(self.config.bucket_capacity);
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    fn record_shed(&self, route: &str, priority: Priority, reason: &str) {
        caladrius_obs::global_registry()
            .counter(
                "caladrius_fleet_shed_total",
                &[("route", route), ("priority", priority.as_str())],
            )
            .inc();
        // The flight recorder keeps the last N individual decisions so
        // a shed storm can be reconstructed after the fact.
        caladrius_obs::global_flight().record_shed(route, priority.as_str(), reason);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled(config: AdmissionConfig) -> AdmissionConfig {
        AdmissionConfig {
            enabled: true,
            ..config
        }
    }

    #[test]
    fn disabled_controller_admits_everything() {
        let c = AdmissionController::new(AdmissionConfig::default());
        for _ in 0..1000 {
            assert_eq!(
                c.decide("/r", Priority::Low, Some(1.0e9), 1.0e9),
                AdmissionDecision::Admit
            );
        }
    }

    #[test]
    fn p99_over_slo_sheds_low_priority_only() {
        let c = AdmissionController::new(enabled(AdmissionConfig {
            slo_p99_seconds: 0.5,
            ..AdmissionConfig::default()
        }));
        assert_eq!(
            c.decide("/r", Priority::Low, Some(0.6), 0.0),
            AdmissionDecision::Shed {
                retry_after_seconds: 1
            }
        );
        // High priority bypasses the SLO check entirely.
        assert_eq!(
            c.decide("/r", Priority::High, Some(0.6), 0.0),
            AdmissionDecision::Admit
        );
        // Back under the SLO, low priority is admitted again.
        assert_eq!(
            c.decide("/r", Priority::Low, Some(0.4), 0.0),
            AdmissionDecision::Admit
        );
        // An empty histogram (no observed latency yet) never sheds.
        assert_eq!(
            c.decide("/r", Priority::Low, None, 0.0),
            AdmissionDecision::Admit
        );
    }

    #[test]
    fn queue_watermark_sheds() {
        let c = AdmissionController::new(enabled(AdmissionConfig {
            queue_depth_watermark: 4.0,
            ..AdmissionConfig::default()
        }));
        assert_eq!(
            c.decide("/r", Priority::Low, None, 5.0),
            AdmissionDecision::Shed {
                retry_after_seconds: 1
            }
        );
        assert_eq!(
            c.decide("/r", Priority::Low, None, 4.0),
            AdmissionDecision::Admit
        );
    }

    #[test]
    fn token_bucket_bounds_admitted_burst() {
        // Frozen bucket (no refill): exactly `capacity` admits, then shed.
        let c = AdmissionController::new(enabled(AdmissionConfig {
            bucket_capacity: 3.0,
            refill_per_second: 0.0,
            retry_after_seconds: 7,
            ..AdmissionConfig::default()
        }));
        for _ in 0..3 {
            assert_eq!(
                c.decide("/r", Priority::Low, None, 0.0),
                AdmissionDecision::Admit
            );
        }
        assert_eq!(
            c.decide("/r", Priority::Low, None, 0.0),
            AdmissionDecision::Shed {
                retry_after_seconds: 7
            }
        );
        // High priority ignores the bucket (and does not drain it).
        assert_eq!(
            c.decide("/r", Priority::High, None, 0.0),
            AdmissionDecision::Admit
        );
    }

    #[test]
    fn sheds_are_counted_by_route_and_priority() {
        let c = AdmissionController::new(enabled(AdmissionConfig {
            queue_depth_watermark: 0.0,
            ..AdmissionConfig::default()
        }));
        let counter = caladrius_obs::global_registry().counter(
            "caladrius_fleet_shed_total",
            &[("route", "/shed-count-test"), ("priority", "low")],
        );
        let before = counter.get();
        c.decide("/shed-count-test", Priority::Low, None, 1.0);
        c.decide("/shed-count-test", Priority::Low, None, 1.0);
        assert_eq!(counter.get(), before + 2);
    }

    #[test]
    fn windowed_p99_recovers_after_burst_while_lifetime_would_still_shed() {
        use caladrius_obs::WindowedHistogram;
        let c = AdmissionController::new(enabled(AdmissionConfig {
            slo_p99_seconds: 0.5,
            ..AdmissionConfig::default()
        }));
        // 6 × 10 s ring, driven through the deterministic clock hooks.
        let h = WindowedHistogram::with_window(6, 10);
        // A latency burst: both the recent and lifetime p99 blow the SLO
        // and admission sheds.
        for _ in 0..100 {
            h.record_at(5.0, 0);
        }
        let recent = h.quantile_at(0.99, 0);
        assert!(recent > 0.5, "{recent}");
        assert!(matches!(
            c.decide("/plan", Priority::Low, Some(recent), 0.0),
            AdmissionDecision::Shed { .. }
        ));
        // 70 s later the burst has rotated out of the 60 s horizon and
        // recent traffic is healthy: shedding stops.
        for _ in 0..100 {
            h.record_at(0.05, 70);
        }
        let recent = h.quantile_at(0.99, 70);
        assert!(recent < 0.5, "{recent}");
        assert_eq!(
            c.decide("/plan", Priority::Low, Some(recent), 0.0),
            AdmissionDecision::Admit
        );
        // The lifetime p99 still remembers the burst: feeding it instead
        // would keep shedding forever, which is exactly why the routes
        // feed the windowed quantile.
        let lifetime = h.snapshot().quantile(0.99);
        assert!(lifetime > 0.5, "{lifetime}");
        assert!(matches!(
            c.decide("/plan", Priority::Low, Some(lifetime), 0.0),
            AdmissionDecision::Shed { .. }
        ));
    }

    #[test]
    fn sheds_land_in_the_flight_recorder() {
        let c = AdmissionController::new(enabled(AdmissionConfig {
            queue_depth_watermark: 0.0,
            ..AdmissionConfig::default()
        }));
        c.decide("/flight-shed-test", Priority::Low, None, 1.0);
        let sheds = caladrius_obs::global_flight().sheds();
        assert!(
            sheds.iter().any(|s| s.route == "/flight-shed-test"
                && s.priority == "low"
                && s.reason == "queue"),
            "{sheds:?}"
        );
    }

    #[test]
    fn priority_parses_from_header() {
        assert_eq!(Priority::from_header(Some("high")), Priority::High);
        assert_eq!(Priority::from_header(Some("HIGH")), Priority::High);
        assert_eq!(Priority::from_header(Some("low")), Priority::Low);
        assert_eq!(Priority::from_header(Some("urgent")), Priority::Low);
        assert_eq!(Priority::from_header(None), Priority::Low);
        assert_eq!(Priority::High.as_str(), "high");
        assert_eq!(Priority::Low.as_str(), "low");
    }
}
