//! Caladrius's RESTful endpoints (paper §III-A), wired to the core
//! service:
//!
//! | Method | Path | Purpose |
//! |---|---|---|
//! | GET  | `/health` | liveness |
//! | GET  | `/topologies` | known topologies |
//! | GET  | `/model/traffic/heron/{topology}?models=a,b` | traffic forecast |
//! | POST | `/model/topology/heron/{topology}` | performance evaluation (dry-run update) |
//! | POST | `/model/topology/heron/{topology}?async=true` | as above, `202` + job id |
//! | GET  | `/model/packing/heron/{topology}?containers=N&parallelism=c:p,...` | packing-plan assessment (graph calculation interface) |
//! | GET  | `/metrics/heron/{topology}?q=<selector>` | raw metric series (selector grammar: `name{tag=value,...}`) |
//! | POST | `/topology/{topology}/plan` | horizon capacity plan, `202` + job id |
//! | GET  | `/jobs/{id}` | poll an asynchronous job |
//! | GET  | `/metrics/service` | service-wide metrics, Prometheus text format |
//! | GET  | `/trace/recent?limit=N&request_id=...` | recent spans from the trace ring, JSON |
//! | GET  | `/slo/status` | burn-rate evaluation of every SLO objective |
//! | GET  | `/debug/flight` | flight-recorder dump (snapshots, SLO transitions, sheds) |

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionDecision, Priority};
use crate::http::{Handler, Request, Response};
use crate::jobs::{JobRunner, JobState};
use crate::json::{self, Value};
use caladrius_core::capacity::CapacityPlanRequest;
use caladrius_core::error::CoreError;
use caladrius_core::service::{EvaluationReport, SourceRateSpec};
use caladrius_core::traffic::TrafficForecast;
use caladrius_core::Caladrius;
use caladrius_obs::{ParentSpanScope, RequestScope};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// The HTTP-facing Caladrius service.
pub struct ApiService {
    caladrius: Arc<Caladrius>,
    jobs: JobRunner,
    admission: AdmissionController,
}

impl std::fmt::Debug for ApiService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ApiService").finish_non_exhaustive()
    }
}

fn error_response(err: &CoreError) -> Response {
    let status = match err {
        CoreError::Unknown(_) | CoreError::UnknownModel(_) => 404,
        CoreError::InvalidRequest(_) | CoreError::Config(_) => 400,
        CoreError::NotEnoughObservations { .. } | CoreError::Unpredictable(_) => 422,
        CoreError::Substrate(_) => 500,
    };
    Response::json_status(
        status,
        Value::object([("error", Value::from(err.to_string()))]).to_json(),
    )
}

fn forecast_to_json(f: &TrafficForecast) -> Value {
    Value::object([
        ("model", Value::from(f.model.clone())),
        ("mean", Value::from(f.mean)),
        ("peak", Value::from(f.peak)),
        ("peak_upper", Value::from(f.peak_upper)),
        (
            "points",
            Value::Array(
                f.points
                    .iter()
                    .map(|p| {
                        Value::object([
                            ("ts", Value::from(p.ts as f64)),
                            ("yhat", Value::from(p.yhat)),
                            ("lower", Value::from(p.lower)),
                            ("upper", Value::from(p.upper)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn report_to_json(report: &EvaluationReport) -> Value {
    let outputs = report
        .model_outputs
        .iter()
        .map(|o| {
            Value::object([
                ("model", Value::from(o.model.clone())),
                (
                    "metrics",
                    Value::Object(
                        o.metrics
                            .iter()
                            .map(|(k, v)| (k.clone(), Value::from(*v)))
                            .collect(),
                    ),
                ),
                (
                    "notes",
                    Value::Array(o.notes.iter().map(|n| Value::from(n.clone())).collect()),
                ),
            ])
        })
        .collect();
    let components = report
        .prediction
        .per_component
        .iter()
        .map(|c| {
            Value::object([
                ("name", Value::from(c.name.clone())),
                ("parallelism", Value::from(c.parallelism)),
                ("source_rate", Value::from(c.source_rate)),
                ("input_rate", Value::from(c.input_rate)),
                ("output_rate", Value::from(c.output_rate)),
                ("saturated", Value::from(c.saturated)),
            ])
        })
        .collect();
    Value::object([
        ("topology", Value::from(report.topology.clone())),
        (
            "proposed_parallelisms",
            Value::Object(
                report
                    .proposed_parallelisms
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::from(*v)))
                    .collect(),
            ),
        ),
        ("source_rate", Value::from(report.source_rate)),
        (
            "sink_output_rate",
            Value::from(report.prediction.sink_output_rate),
        ),
        (
            "bottleneck",
            report
                .prediction
                .bottleneck
                .clone()
                .map(Value::from)
                .unwrap_or(Value::Null),
        ),
        (
            "backpressure_risk",
            Value::from(format!("{:?}", report.risk).to_lowercase()),
        ),
        (
            "saturation_rate",
            report
                .saturation_rate
                .map(Value::from)
                .unwrap_or(Value::Null),
        ),
        (
            "cpu_by_component",
            Value::Object(
                report
                    .cpu_by_component
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::from(*v)))
                    .collect(),
            ),
        ),
        ("components", Value::Array(components)),
        ("model_outputs", Value::Array(outputs)),
        (
            "traffic",
            report
                .traffic
                .as_ref()
                .map(forecast_to_json)
                .unwrap_or(Value::Null),
        ),
    ])
}

/// Parses the evaluation request body.
fn parse_evaluation_body(body: &str) -> Result<(HashMap<String, u32>, SourceRateSpec), String> {
    let value = if body.trim().is_empty() {
        Value::Object(Default::default())
    } else {
        json::parse(body).map_err(|e| e.to_string())?
    };
    let mut parallelisms = HashMap::new();
    if let Some(map) = value.get("parallelism").and_then(Value::as_object) {
        for (k, v) in map {
            let p = v
                .as_f64()
                .filter(|p| *p >= 0.0 && p.fract() == 0.0)
                .ok_or_else(|| format!("parallelism of {k:?} must be a whole number"))?;
            parallelisms.insert(k.clone(), p as u32);
        }
    }
    let source = match value.get("source_rate") {
        None => SourceRateSpec::Current,
        Some(Value::Number(rate)) => SourceRateSpec::Fixed(*rate),
        Some(Value::String(s)) if s == "current" => SourceRateSpec::Current,
        Some(v) => {
            if let Some(forecast) = v.get("forecast") {
                SourceRateSpec::Forecast {
                    model: forecast
                        .get("model")
                        .and_then(Value::as_str)
                        .map(String::from),
                    conservative: forecast
                        .get("conservative")
                        .and_then(Value::as_bool)
                        .unwrap_or(false),
                }
            } else {
                return Err(
                    "source_rate must be a number, \"current\" or {forecast: {...}}".into(),
                );
            }
        }
    };
    Ok((parallelisms, source))
}

/// Parses the capacity-plan request body into a
/// [`CapacityPlanRequest`]. Every field is optional; absent fields keep
/// the planner defaults. Public so the fleet tier's plan route shares
/// one body dialect with the single-topology route.
pub fn parse_plan_body(body: &str) -> Result<CapacityPlanRequest, String> {
    let value = if body.trim().is_empty() {
        Value::Object(Default::default())
    } else {
        json::parse(body).map_err(|e| e.to_string())?
    };
    let mut request = CapacityPlanRequest::default();
    if let Some(model) = value.get("traffic_model") {
        request.traffic_model = Some(
            model
                .as_str()
                .ok_or("traffic_model must be a string")?
                .to_string(),
        );
    }
    if let Some(v) = value.get("conservative") {
        request.conservative = v.as_bool().ok_or("conservative must be a boolean")?;
    }
    let number = |key: &str| -> Result<Option<f64>, String> {
        match value.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| format!("{key} must be a number")),
        }
    };
    let whole = |key: &str| -> Result<Option<u64>, String> {
        match number(key)? {
            None => Ok(None),
            Some(n) if n >= 1.0 && n.fract() == 0.0 => Ok(Some(n as u64)),
            Some(_) => Err(format!("{key} must be a positive whole number")),
        }
    };
    if let Some(headroom) = number("headroom")? {
        request.planner.headroom = headroom;
    }
    if let Some(cap) = number("cpu_utilization_cap")? {
        request.planner.cpu_utilization_cap = cap;
    }
    if let Some(minutes) = whole("window_minutes")? {
        request.planner.window_minutes = minutes;
    }
    if let Some(h) = whole("hysteresis_windows")? {
        request.planner.hysteresis_windows = h as usize;
    }
    if let Some(max_p) = whole("max_parallelism")? {
        request.planner.limits.max_parallelism = max_p.min(u64::from(u32::MAX)) as u32;
    }
    if let Some(budget) = whole("max_containers")? {
        request.planner.limits.max_containers = budget.min(u64::from(u32::MAX)) as u32;
    }
    request.planner.validate().map_err(|e| e.to_string())?;
    Ok(request)
}

fn action_to_json(action: &caladrius_planner::PlanAction) -> Value {
    use caladrius_planner::PlanAction;
    let (direction, component, from, to) = match action {
        PlanAction::ScaleUp {
            component,
            from,
            to,
        } => ("up", component, from, to),
        PlanAction::ScaleDown {
            component,
            from,
            to,
        } => ("down", component, from, to),
    };
    Value::object([
        ("direction", Value::from(direction)),
        ("component", Value::from(component.clone())),
        ("from", Value::from(*from)),
        ("to", Value::from(*to)),
    ])
}

fn cost_to_json(cost: &caladrius_planner::PlanCost) -> Value {
    Value::object([
        ("total_instances", Value::from(cost.total_instances)),
        ("total_cores", Value::from(cost.total_cores)),
        ("total_ram_mb", Value::from(cost.total_ram_mb as f64)),
        ("containers", Value::from(cost.containers)),
    ])
}

fn parallelisms_to_json(parallelisms: &[(String, u32)]) -> Value {
    Value::Object(
        parallelisms
            .iter()
            .map(|(name, p)| (name.clone(), Value::from(*p)))
            .collect(),
    )
}

fn timeline_to_json(topology: &str, timeline: &caladrius_planner::PlanTimeline) -> Value {
    let windows = timeline
        .windows
        .iter()
        .map(|w| {
            Value::object([
                ("window", Value::from(w.window)),
                ("start_ts", Value::from(w.start_ts as f64)),
                ("end_ts", Value::from(w.end_ts as f64)),
                ("peak_rate", Value::from(w.peak_rate)),
                ("planned_rate", Value::from(w.planned_rate)),
                ("parallelisms", parallelisms_to_json(&w.parallelisms)),
                ("cost", cost_to_json(&w.cost)),
                ("saturation_rate", Value::from(w.saturation_rate)),
                (
                    "actions",
                    Value::Array(w.actions.iter().map(action_to_json).collect()),
                ),
            ])
        })
        .collect();
    Value::object([
        ("topology", Value::from(topology)),
        ("windows", Value::Array(windows)),
        (
            "peak_parallelisms",
            parallelisms_to_json(&timeline.peak_parallelisms),
        ),
        ("peak_cost", cost_to_json(&timeline.peak_cost)),
        ("oracle_evals", Value::from(timeline.oracle_evals as f64)),
    ])
}

/// Feeds the per-route SLO objective: a request is good when it neither
/// failed server-side nor blew the route's latency SLO. Shared by every
/// front door (API and fleet) so `/slo/status` covers all routes.
pub fn record_route_slo(route: &str, status: u16, elapsed_secs: f64, latency_slo: f64) {
    caladrius_obs::global_slos()
        .objective(
            &format!("route:{route}"),
            caladrius_obs::SloConfig::default(),
        )
        .record(status < 500 && elapsed_secs <= latency_slo);
}

/// Shared `GET /trace/recent?limit=N&request_id=...` implementation:
/// newest spans first, `limit` clamped to the ring capacity, optionally
/// filtered to one request id. Mounted by both front doors.
pub fn trace_recent_response(request: &Request) -> Response {
    let tracer = caladrius_obs::tracer();
    let limit = match request.query.get("limit") {
        None => 100,
        Some(v) => match v.parse::<usize>() {
            // An oversized limit cannot return more than the ring holds;
            // clamp instead of letting callers size allocations.
            Ok(n) => n.min(tracer.capacity()),
            Err(_) => {
                return Response::json_status(
                    400,
                    "{\"error\":\"limit must be a non-negative integer\"}",
                )
            }
        },
    };
    let request_id = match request.query.get("request_id") {
        None => None,
        Some(raw) => match caladrius_obs::RequestId::parse(raw) {
            Some(id) => Some(id),
            None => {
                return Response::json_status(
                    400,
                    "{\"error\":\"request_id must be a hex or decimal id\"}",
                )
            }
        },
    };
    let events = tracer
        .recent_filtered(limit, request_id)
        .into_iter()
        .map(|e| {
            Value::object([
                ("seq", Value::from(e.seq as f64)),
                ("ts_unix_ms", Value::from(e.ts_unix_ms as f64)),
                ("name", Value::from(e.name.clone())),
                ("duration_us", Value::from(e.duration_us as f64)),
                (
                    "request_id",
                    e.request_id
                        .map(|id| Value::from(id.to_string()))
                        .unwrap_or(Value::Null),
                ),
                ("span_id", Value::from(e.span_id as f64)),
                (
                    "parent_span_id",
                    e.parent_span_id
                        .map(|id| Value::from(id as f64))
                        .unwrap_or(Value::Null),
                ),
                (
                    "fields",
                    Value::Object(
                        e.fields
                            .iter()
                            .map(|(k, v)| (k.clone(), Value::from(v.clone())))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    Value::object([("events", Value::Array(events))])
        .to_json()
        .pipe(Response::json)
}

fn slo_status_to_json(status: &caladrius_obs::SloStatus) -> Value {
    Value::object([
        ("name", Value::from(status.name.clone())),
        ("target", Value::from(status.target)),
        ("state", Value::from(status.state.as_str())),
        ("fast_burn_rate", Value::from(status.fast_burn)),
        ("slow_burn_rate", Value::from(status.slow_burn)),
        (
            "fast_window_seconds",
            Value::from(status.fast_window_secs as f64),
        ),
        (
            "slow_window_seconds",
            Value::from(status.slow_window_secs as f64),
        ),
        ("good", Value::from(status.good as f64)),
        ("bad", Value::from(status.bad as f64)),
    ])
}

/// Shared `GET /slo/status` implementation: evaluates every registered
/// objective (also refreshing the burn-rate gauges and flight-recorder
/// transitions) and reports the multi-window verdicts.
pub fn slo_status_response() -> Response {
    let statuses = caladrius_obs::evaluate_slos();
    let count_state = |state: caladrius_obs::SloState| {
        statuses.iter().filter(|s| s.state == state).count() as f64
    };
    Value::object([
        (
            "firing",
            Value::from(count_state(caladrius_obs::SloState::Firing)),
        ),
        (
            "warning",
            Value::from(count_state(caladrius_obs::SloState::Warning)),
        ),
        (
            "objectives",
            Value::Array(statuses.iter().map(slo_status_to_json).collect()),
        ),
    ])
    .to_json()
    .pipe(Response::json)
}

fn labels_to_json(labels: &[(String, String)]) -> Value {
    Value::Object(
        labels
            .iter()
            .map(|(k, v)| (k.clone(), Value::from(v.clone())))
            .collect(),
    )
}

/// Shared `GET /debug/flight` implementation: dumps the flight
/// recorder's retained snapshots, SLO transitions and shed decisions.
/// Takes a snapshot first when due (or when none exists yet) so the
/// dump is never empty.
pub fn flight_response() -> Response {
    let flight = caladrius_obs::global_flight();
    let registry = caladrius_obs::global_registry();
    if !flight.maybe_snapshot(registry) && flight.snapshot_count() == 0 {
        flight.force_snapshot(registry);
    }
    let snapshots = flight
        .snapshots()
        .into_iter()
        .map(|s| {
            Value::object([
                ("ts_unix_ms", Value::from(s.ts_unix_ms as f64)),
                ("uptime_secs", Value::from(s.uptime_secs as f64)),
                (
                    "samples",
                    Value::Array(
                        s.samples
                            .iter()
                            .map(|sample| {
                                Value::object([
                                    ("name", Value::from(sample.name.clone())),
                                    ("labels", labels_to_json(&sample.labels)),
                                    ("value", Value::from(sample.value)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let transitions = flight
        .transitions()
        .into_iter()
        .map(|t| {
            Value::object([
                ("ts_unix_ms", Value::from(t.ts_unix_ms as f64)),
                ("objective", Value::from(t.objective.clone())),
                ("from", Value::from(t.from.as_str())),
                ("to", Value::from(t.to.as_str())),
                ("fast_burn_rate", Value::from(t.fast_burn)),
                ("slow_burn_rate", Value::from(t.slow_burn)),
            ])
        })
        .collect();
    let sheds = flight
        .sheds()
        .into_iter()
        .map(|s| {
            Value::object([
                ("ts_unix_ms", Value::from(s.ts_unix_ms as f64)),
                ("route", Value::from(s.route.clone())),
                ("priority", Value::from(s.priority.clone())),
                ("reason", Value::from(s.reason.clone())),
            ])
        })
        .collect();
    Value::object([
        ("snapshots", Value::Array(snapshots)),
        ("slo_transitions", Value::Array(transitions)),
        ("sheds", Value::Array(sheds)),
    ])
    .to_json()
    .pipe(Response::json)
}

impl ApiService {
    /// Wraps a Caladrius service with the process-default worker count
    /// ([`caladrius_exec::configured_threads`]: the `CALADRIUS_THREADS`
    /// override, else the host's available parallelism).
    pub fn with_defaults(caladrius: Arc<Caladrius>) -> Arc<Self> {
        Self::new(caladrius, caladrius_exec::configured_threads())
    }

    /// Wraps a Caladrius service with `job_workers` asynchronous workers
    /// and admission control disabled.
    pub fn new(caladrius: Arc<Caladrius>, job_workers: usize) -> Arc<Self> {
        Self::with_parts(
            caladrius,
            JobRunner::new(job_workers),
            AdmissionConfig::default(),
        )
    }

    /// Wraps a Caladrius service with an explicit admission-control
    /// configuration on the sheddable routes (currently the plan route).
    pub fn with_admission(
        caladrius: Arc<Caladrius>,
        job_workers: usize,
        admission: AdmissionConfig,
    ) -> Arc<Self> {
        Self::with_parts(caladrius, JobRunner::new(job_workers), admission)
    }

    /// Fully explicit constructor: caller-built job runner (per-key caps,
    /// capacity) plus an admission configuration.
    pub fn with_parts(
        caladrius: Arc<Caladrius>,
        jobs: JobRunner,
        admission: AdmissionConfig,
    ) -> Arc<Self> {
        let registry = caladrius_obs::global_registry();
        registry.describe(
            "caladrius_http_requests_total",
            "HTTP requests by route pattern, method and status",
        );
        registry.describe(
            "caladrius_http_request_duration_seconds",
            "HTTP request handling time by route pattern (cumulative rows plus recent-window quantile gauges)",
        );
        registry.describe(
            caladrius_obs::BURN_RATE_METRIC,
            "SLO error-budget burn rate by objective and evaluation window",
        );
        Arc::new(Self {
            caladrius,
            jobs,
            admission: AdmissionController::new(admission),
        })
    }

    /// The wrapped core service.
    pub fn caladrius(&self) -> &Arc<Caladrius> {
        &self.caladrius
    }

    /// The async job runner (fleet health reads its queue depth).
    pub fn jobs(&self) -> &JobRunner {
        &self.jobs
    }

    /// A handler suitable for [`crate::http::HttpServer::serve`].
    pub fn handler(self: &Arc<Self>) -> Handler {
        let service = Arc::clone(self);
        Arc::new(move |request| service.handle(request))
    }

    /// Routes one request (usable directly in tests, no sockets needed).
    ///
    /// Installs the request id (from `x-request-id`, minting one for
    /// hand-built requests) for the duration of the handler so every span
    /// recorded below attributes to this request, and records per-route
    /// counters, latency histograms and an `http.request` span.
    pub fn handle(&self, request: Request) -> Response {
        let request_id = request
            .request_id()
            .unwrap_or_else(caladrius_obs::next_request_id);
        let _request_scope = RequestScope::enter(request_id);
        let started = Instant::now();
        let mut span = caladrius_obs::global_span("http.request");
        let (route, response) = self.route(&request);
        span.field("route", route)
            .field("method", &request.method)
            .field("status", response.status);
        let registry = caladrius_obs::global_registry();
        let status = response.status.to_string();
        registry
            .counter(
                "caladrius_http_requests_total",
                &[
                    ("route", route),
                    ("method", &request.method),
                    ("status", &status),
                ],
            )
            .inc();
        registry
            .windowed_histogram(
                "caladrius_http_request_duration_seconds",
                &[("route", route)],
            )
            .record_duration(started.elapsed());
        record_route_slo(
            route,
            response.status,
            started.elapsed().as_secs_f64(),
            self.admission.config().slo_p99_seconds,
        );
        caladrius_obs::global_flight().maybe_snapshot(registry);
        response
    }

    /// Dispatches to a route handler, returning the normalized route
    /// pattern (the metric label) alongside the response.
    fn route(&self, request: &Request) -> (&'static str, Response) {
        let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
        match (request.method.as_str(), segments.as_slice()) {
            ("GET", ["health"]) => ("/health", self.health()),
            ("GET", ["topologies"]) => {
                let names = self.caladrius.topologies();
                let response = Value::object([(
                    "topologies",
                    Value::Array(names.into_iter().map(Value::from).collect()),
                )])
                .to_json()
                .pipe(Response::json);
                ("/topologies", response)
            }
            ("GET", ["model", "traffic", "heron", topology]) => (
                "/model/traffic/heron/{topology}",
                self.traffic(topology, request),
            ),
            ("POST", ["model", "topology", "heron", topology]) => (
                "/model/topology/heron/{topology}",
                self.evaluate(topology, request),
            ),
            ("GET", ["model", "packing", "heron", topology]) => (
                "/model/packing/heron/{topology}",
                self.packing(topology, request),
            ),
            ("GET", ["metrics", "service"]) => ("/metrics/service", Self::service_metrics()),
            ("GET", ["metrics", "heron", topology]) => {
                ("/metrics/heron/{topology}", self.metrics(topology, request))
            }
            ("GET", ["trace", "recent"]) => ("/trace/recent", trace_recent_response(request)),
            ("GET", ["slo", "status"]) => ("/slo/status", slo_status_response()),
            ("GET", ["debug", "flight"]) => ("/debug/flight", flight_response()),
            ("POST", ["topology", topology, "plan"]) => {
                ("/topology/{topology}/plan", self.plan(topology, request))
            }
            ("GET", ["jobs", id]) => ("/jobs/{id}", self.job_status(id)),
            (_, ["model", ..])
            | (_, ["jobs", ..])
            | (_, ["topology", _, "plan"])
            | (_, ["metrics", "service"])
            | (_, ["trace", ..])
            | (_, ["slo", ..])
            | (_, ["debug", "flight"])
            | (_, ["health"])
            | (_, ["topologies"]) => (
                "method_not_allowed",
                Response::json_status(405, "{\"error\":\"method not allowed\"}"),
            ),
            _ => (
                "unmatched",
                Response::json_status(404, "{\"error\":\"no such endpoint\"}"),
            ),
        }
    }

    /// `GET /metrics/service` — every registered metric in Prometheus
    /// text exposition format. SLO burn-rate gauges are re-evaluated
    /// first so the scrape never reports stale burn rates.
    fn service_metrics() -> Response {
        caladrius_obs::evaluate_slos();
        Response {
            status: 200,
            content_type: caladrius_obs::PROMETHEUS_CONTENT_TYPE.into(),
            body: caladrius_obs::render_prometheus(caladrius_obs::global_registry()).into_bytes(),
            headers: Vec::new(),
        }
    }

    /// Liveness plus data-plane observability. A thin view over the obs
    /// layer: the model-cache and ingest counters are `caladrius-obs`
    /// handles read back through the service and provider tiers, so this
    /// JSON and `/metrics/service` are two projections of the same
    /// registry. Field names are a stable contract (see the
    /// `health_shape_is_stable` regression test).
    fn health(&self) -> Response {
        let cache = self.caladrius.model_cache_stats();
        let plan_cache = self.caladrius.plan_cache_stats();
        let mut fields = vec![
            ("status", Value::from("ok")),
            (
                "model_cache",
                Value::object([
                    ("hits", Value::from(cache.hits as f64)),
                    ("misses", Value::from(cache.misses as f64)),
                    ("fits", Value::from(cache.fits as f64)),
                    (
                        "incremental_fits",
                        Value::from(cache.incremental_fits as f64),
                    ),
                    ("full_fits", Value::from(cache.full_fits as f64)),
                    ("plans", Value::from(cache.plans as f64)),
                    ("plan_evals", Value::from(cache.plan_evals as f64)),
                    ("oracle_hits", Value::from(cache.oracle_hits as f64)),
                    ("oracle_misses", Value::from(cache.oracle_misses as f64)),
                ]),
            ),
            (
                "plan_cache",
                Value::object([
                    ("hits", Value::from(plan_cache.hits as f64)),
                    ("misses", Value::from(plan_cache.misses as f64)),
                    ("warm_starts", Value::from(plan_cache.warm_starts as f64)),
                    ("evictions", Value::from(plan_cache.evictions as f64)),
                ]),
            ),
            ("jobs_tracked", Value::from(self.jobs.len() as f64)),
            ("slo", {
                let statuses = caladrius_obs::evaluate_slos();
                let count = |state: caladrius_obs::SloState| {
                    statuses.iter().filter(|s| s.state == state).count() as f64
                };
                Value::object([
                    ("objectives", Value::from(statuses.len() as f64)),
                    (
                        "firing",
                        Value::from(count(caladrius_obs::SloState::Firing)),
                    ),
                    (
                        "warning",
                        Value::from(count(caladrius_obs::SloState::Warning)),
                    ),
                ])
            }),
        ];
        if let Some(ingest) = self.caladrius.metrics_provider().ingest_stats() {
            fields.push((
                "ingest",
                Value::object([
                    ("batches", Value::from(ingest.batches as f64)),
                    ("samples", Value::from(ingest.samples as f64)),
                ]),
            ));
        }
        if let Some(tail) = self.caladrius.metrics_provider().tail_cache_stats() {
            fields.push((
                "tsdb",
                Value::object([
                    ("tail_cache_hits", Value::from(tail.hits as f64)),
                    ("tail_cache_misses", Value::from(tail.misses as f64)),
                ]),
            ));
        }
        Value::object(fields).to_json().pipe(Response::json)
    }

    fn traffic(&self, topology: &str, request: &Request) -> Response {
        let models: Option<Vec<String>> = request
            .query
            .get("models")
            .map(|csv| csv.split(',').map(|s| s.trim().to_string()).collect());
        match self.caladrius.forecast_traffic(topology, models.as_deref()) {
            Ok(forecasts) => Value::object([
                ("topology", Value::from(topology)),
                (
                    "forecasts",
                    Value::Array(forecasts.iter().map(forecast_to_json).collect()),
                ),
            ])
            .to_json()
            .pipe(Response::json),
            Err(e) => error_response(&e),
        }
    }

    fn evaluate(&self, topology: &str, request: &Request) -> Response {
        let body = match request.body_str() {
            Some(b) => b,
            None => return Response::json_status(400, "{\"error\":\"body is not UTF-8\"}"),
        };
        let (parallelisms, source) = match parse_evaluation_body(body) {
            Ok(parsed) => parsed,
            Err(msg) => {
                return Response::json_status(
                    400,
                    Value::object([("error", Value::from(msg))]).to_json(),
                )
            }
        };
        let is_async = request.query.get("async").map(String::as_str) == Some("true");
        if is_async {
            let caladrius = Arc::clone(&self.caladrius);
            let topology = topology.to_string();
            let id = self.jobs.submit(move || {
                caladrius
                    .evaluate(&topology, &parallelisms, &source)
                    .map(|report| report_to_json(&report))
                    .map_err(|e| e.to_string())
            });
            return Response::json_status(
                202,
                Value::object([
                    ("job_id", Value::from(id as f64)),
                    ("poll", Value::from(format!("/jobs/{id}"))),
                ])
                .to_json(),
            );
        }
        match self.caladrius.evaluate(topology, &parallelisms, &source) {
            Ok(report) => Response::json(report_to_json(&report).to_json()),
            Err(e) => error_response(&e),
        }
    }

    /// `GET /model/packing/heron/{t}?containers=4&parallelism=splitter:6,counter:4`
    /// — the paper's graph calculation interface for proposed packing
    /// plans (§III-C1).
    fn packing(&self, topology: &str, request: &Request) -> Response {
        let containers = match request.query.get("containers").map(|v| v.parse::<usize>()) {
            None => 4,
            Some(Ok(n)) => n,
            Some(Err(_)) => {
                return Response::json_status(400, "{\"error\":\"containers must be an integer\"}")
            }
        };
        let mut proposed = HashMap::new();
        if let Some(spec) = request.query.get("parallelism") {
            for pair in spec.split(',').filter(|p| !p.is_empty()) {
                let Some((component, p)) = pair.split_once(':') else {
                    return Response::json_status(
                        400,
                        "{\"error\":\"parallelism must be component:count pairs\"}",
                    );
                };
                let Ok(p) = p.trim().parse::<u32>() else {
                    return Response::json_status(
                        400,
                        "{\"error\":\"parallelism counts must be integers\"}",
                    );
                };
                proposed.insert(component.trim().to_string(), p);
            }
        }
        match self
            .caladrius
            .packing_overview(topology, &proposed, containers)
        {
            Ok(overview) => Value::object([
                ("topology", Value::from(topology)),
                ("containers", Value::from(overview.containers)),
                ("total_instances", Value::from(overview.total_instances)),
                (
                    "max_instances_per_container",
                    Value::from(overview.max_instances_per_container),
                ),
                ("balance_stddev", Value::from(overview.balance_stddev)),
                (
                    "remote_pair_fraction",
                    Value::from(overview.remote_pair_fraction),
                ),
                (
                    "instance_paths",
                    Value::from(overview.instance_paths as f64),
                ),
            ])
            .to_json()
            .pipe(Response::json),
            Err(e) => error_response(&e),
        }
    }

    /// `GET /metrics/heron/{t}?q=<selector>[&from=ms][&to=ms]` — raw
    /// series access through the metrics interface, using the compact
    /// selector grammar (`name{tag=value,...}`).
    fn metrics(&self, topology: &str, request: &Request) -> Response {
        let Some(selector) = request.query.get("q") else {
            return Response::json_status(400, "{\"error\":\"missing q=<selector>\"}");
        };
        let (name, filters) = match caladrius_tsdb::query::parse_selector(selector) {
            Ok(parsed) => parsed,
            Err(msg) => {
                return Response::json_status(
                    400,
                    Value::object([("error", Value::from(msg))]).to_json(),
                )
            }
        };
        let parse_ts = |key: &str, default: i64| -> Result<i64, Response> {
            match request.query.get(key) {
                None => Ok(default),
                Some(v) => v.parse().map_err(|_| {
                    Response::json_status(
                        400,
                        Value::object([(
                            "error",
                            Value::from(format!("{key} must be a millisecond timestamp")),
                        )])
                        .to_json(),
                    )
                }),
            }
        };
        let from = match parse_ts("from", 0) {
            Ok(v) => v,
            Err(r) => return r,
        };
        let to = match parse_ts("to", i64::MAX) {
            Ok(v) => v,
            Err(r) => return r,
        };
        match self
            .caladrius
            .metrics_provider()
            .select_series(topology, &name, &filters, from, to)
        {
            Ok(rows) => {
                let series = rows
                    .into_iter()
                    .map(|(key, samples)| {
                        Value::object([
                            ("series", Value::from(key.to_string())),
                            (
                                "samples",
                                Value::Array(
                                    samples
                                        .into_iter()
                                        .map(|s| {
                                            Value::Array(vec![
                                                Value::from(s.ts as f64),
                                                Value::from(s.value),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect();
                Value::object([
                    ("metric", Value::from(name)),
                    ("series", Value::Array(series)),
                ])
                .to_json()
                .pipe(Response::json)
            }
            Err(e) => error_response(&e),
        }
    }

    /// Observed **recent** p99 latency of a route, read from the same
    /// per-route windowed histogram [`ApiService::handle`] records
    /// into. `None` until the route has served a request inside the
    /// sliding window, so shedding reacts to the last couple of minutes
    /// — a long-past burst can no longer pin admission shut.
    fn route_p99(route: &str) -> Option<f64> {
        let histogram = caladrius_obs::global_registry().windowed_histogram(
            "caladrius_http_request_duration_seconds",
            &[("route", route)],
        );
        let snapshot = histogram.windowed_snapshot();
        (snapshot.count > 0).then(|| snapshot.quantile(0.99))
    }

    /// `429 Too Many Requests` with a `Retry-After` hint — both load
    /// shedding and per-topology fairness caps surface this shape.
    fn too_many_requests(error: &str, retry_after_seconds: u32) -> Response {
        Response::json_status(
            429,
            Value::object([("error", Value::from(error))]).to_json(),
        )
        .with_header("Retry-After", retry_after_seconds.to_string())
    }

    /// `POST /topology/{t}/plan` — horizon capacity planning. Plan
    /// searches forecast and probe the models across the whole horizon,
    /// so the work always runs asynchronously through the job store:
    /// the response is a `202` with a job id to poll.
    ///
    /// The route is guarded twice: admission control may shed
    /// low-priority requests while the route is over its latency SLO
    /// (or the job queue over its watermark), and keyed submission caps
    /// each topology's unfinished plan jobs. Both refusals surface as
    /// `429` with `Retry-After`.
    fn plan(&self, topology: &str, request: &Request) -> Response {
        const ROUTE: &str = "/topology/{topology}/plan";
        let priority = Priority::from_header(
            request
                .headers
                .get(crate::admission::PRIORITY_HEADER)
                .map(String::as_str),
        );
        if let AdmissionDecision::Shed {
            retry_after_seconds,
        } = self.admission.decide(
            ROUTE,
            priority,
            Self::route_p99(ROUTE),
            self.jobs.queue_depth(),
        ) {
            return Self::too_many_requests("shed by admission control", retry_after_seconds);
        }
        let body = match request.body_str() {
            Some(b) => b,
            None => return Response::json_status(400, "{\"error\":\"body is not UTF-8\"}"),
        };
        let plan_request = match parse_plan_body(body) {
            Ok(parsed) => parsed,
            Err(msg) => {
                return Response::json_status(
                    400,
                    Value::object([("error", Value::from(msg))]).to_json(),
                )
            }
        };
        let caladrius = Arc::clone(&self.caladrius);
        let topology = topology.to_string();
        let task_topology = topology.clone();
        // The job runs on a worker thread: carry the request id and the
        // `http.request` span id over so the plan's spans stay attached
        // to the originating request in `/trace/recent`.
        let request_id = caladrius_obs::current_request_id();
        let parent_span = caladrius_obs::current_span_id();
        let submitted = self.jobs.submit_keyed(&topology, move || {
            let _request = request_id.map(RequestScope::enter);
            let _parent = parent_span.map(ParentSpanScope::enter);
            let outcome = caladrius.plan_capacity(&task_topology, &plan_request);
            // Plan jobs carry their own SLO objective: a failed plan
            // burns error budget even though the HTTP 202 already
            // succeeded.
            caladrius_obs::global_slos()
                .objective("plan-jobs", caladrius_obs::SloConfig::default())
                .record(outcome.is_ok());
            outcome
                .map(|timeline| timeline_to_json(&task_topology, &timeline))
                .map_err(|e| e.to_string())
        });
        let id = match submitted {
            Ok(id) => id,
            Err(rejected) => {
                return Self::too_many_requests(
                    &rejected.to_string(),
                    self.admission.config().retry_after_seconds,
                )
            }
        };
        Response::json_status(
            202,
            Value::object([
                ("job_id", Value::from(id as f64)),
                ("poll", Value::from(format!("/jobs/{id}"))),
            ])
            .to_json(),
        )
    }

    fn job_status(&self, id: &str) -> Response {
        let Ok(id) = id.parse::<u64>() else {
            return Response::json_status(400, "{\"error\":\"job id must be an integer\"}");
        };
        let timing_fields = |fields: &mut Vec<(&'static str, Value)>| {
            let Some(timing) = self.jobs.timing(id) else {
                return;
            };
            let opt = |v: Option<i64>| v.map(|ms| Value::from(ms as f64)).unwrap_or(Value::Null);
            fields.push(("queued_ms", Value::from(timing.queued_unix_ms as f64)));
            fields.push(("started_ms", opt(timing.started_unix_ms)));
            fields.push(("finished_ms", opt(timing.finished_unix_ms)));
            fields.push(("queue_wait_ms", opt(timing.queue_wait_ms())));
            fields.push(("duration_ms", opt(timing.duration_ms())));
        };
        match self.jobs.state(id) {
            None => Response::json_status(404, "{\"error\":\"no such job\"}"),
            Some(JobState::Pending) => {
                let mut fields = vec![("state", Value::from("pending"))];
                timing_fields(&mut fields);
                Response::json_status(202, Value::object(fields).to_json())
            }
            Some(JobState::Done(result)) => {
                let mut fields = vec![("state", Value::from("done")), ("result", result)];
                timing_fields(&mut fields);
                Value::object(fields).to_json().pipe(Response::json)
            }
            Some(JobState::Failed(message)) => {
                let mut fields = vec![
                    ("state", Value::from("failed")),
                    ("error", Value::from(message)),
                ];
                timing_fields(&mut fields);
                Value::object(fields).to_json().pipe(Response::json)
            }
        }
    }
}

/// Small pipe helper keeping the route bodies readable.
trait Pipe: Sized {
    fn pipe<T>(self, f: impl FnOnce(Self) -> T) -> T {
        f(self)
    }
}
impl<T> Pipe for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{HttpClient, HttpServer};
    use caladrius_core::providers::metrics::SimMetricsProvider;
    use caladrius_core::providers::tracker::StaticTracker;
    use caladrius_workload::wordcount::{wordcount_topology, WordCountParallelism};
    use heron_sim::engine::{SimConfig, Simulation};
    use std::collections::BTreeMap;

    fn caladrius() -> Arc<Caladrius> {
        let parallelism = WordCountParallelism {
            spout: 8,
            splitter: 2,
            counter: 3,
        };
        let metrics = heron_sim::metrics::SimMetrics::new("wordcount");
        for (leg, rate) in [6.0e6, 12.0e6, 18.0e6, 26.0e6].into_iter().enumerate() {
            let topo = wordcount_topology(parallelism, rate);
            let mut sim = Simulation::new(
                topo,
                SimConfig {
                    metric_noise: 0.0,
                    ..SimConfig::default()
                },
            )
            .unwrap();
            sim.skip_to_minute(leg as u64 * 60);
            sim.warmup_minutes(25);
            sim.run_minutes_into(10, &metrics);
        }
        let tracker = StaticTracker::new().with(wordcount_topology(parallelism, 20.0e6));
        Arc::new(Caladrius::new(
            Arc::new(SimMetricsProvider::new(metrics)),
            Arc::new(tracker),
        ))
    }

    fn service() -> Arc<ApiService> {
        ApiService::new(caladrius(), 2)
    }

    fn get(service: &ApiService, target: &str) -> Response {
        let (path, query) = crate::http::parse_target(target);
        service.handle(Request {
            method: "GET".into(),
            path,
            query,
            headers: BTreeMap::new(),
            body: Vec::new(),
        })
    }

    fn post(service: &ApiService, target: &str, body: &str) -> Response {
        post_with(service, target, body, &[])
    }

    fn post_with(
        service: &ApiService,
        target: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> Response {
        let (path, query) = crate::http::parse_target(target);
        service.handle(Request {
            method: "POST".into(),
            path,
            query,
            headers: headers
                .iter()
                .map(|(n, v)| (n.to_string(), v.to_string()))
                .collect(),
            body: body.as_bytes().to_vec(),
        })
    }

    fn body_json(response: &Response) -> Value {
        json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap()
    }

    #[test]
    fn health_and_topologies() {
        let s = service();
        let r = get(&s, "/health");
        assert_eq!(r.status, 200);
        let v = body_json(&r);
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        let cache = v.get("model_cache").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_f64(), Some(0.0));
        assert_eq!(cache.get("fits").unwrap().as_f64(), Some(0.0));
        // The sim-backed provider exposes ingest counters: one batch per
        // recorded minute, many samples each.
        let ingest = v.get("ingest").unwrap();
        assert!(ingest.get("batches").unwrap().as_f64().unwrap() > 0.0);
        assert!(
            ingest.get("samples").unwrap().as_f64().unwrap()
                > ingest.get("batches").unwrap().as_f64().unwrap()
        );
        let r = get(&s, "/topologies");
        let v = body_json(&r);
        assert_eq!(
            v.get("topologies").unwrap().as_array().unwrap()[0].as_str(),
            Some("wordcount")
        );
    }

    #[test]
    fn traffic_endpoint_returns_forecasts() {
        let s = service();
        let r = get(&s, "/model/traffic/heron/wordcount?models=stats_summary");
        assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));
        let v = body_json(&r);
        let forecasts = v.get("forecasts").unwrap().as_array().unwrap();
        assert_eq!(forecasts.len(), 1);
        assert_eq!(
            forecasts[0].get("model").unwrap().as_str(),
            Some("stats_summary")
        );
        assert!(forecasts[0].get("mean").unwrap().as_f64().unwrap() > 0.0);
        assert!(!forecasts[0]
            .get("points")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn traffic_endpoint_unknown_topology_404() {
        let s = service();
        let r = get(&s, "/model/traffic/heron/ghost");
        assert_eq!(r.status, 404);
    }

    #[test]
    fn evaluation_endpoint_dry_run() {
        let s = service();
        let r = post(
            &s,
            "/model/topology/heron/wordcount",
            r#"{"parallelism": {"splitter": 4}, "source_rate": 30000000}"#,
        );
        assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));
        let v = body_json(&r);
        assert_eq!(v.get("backpressure_risk").unwrap().as_str(), Some("low"));
        assert_eq!(v.get("bottleneck"), Some(&Value::Null));
        let sink = v.get("sink_output_rate").unwrap().as_f64().unwrap();
        assert!(
            (sink - 30.0e6 * 7.63).abs() / (30.0e6 * 7.63) < 0.1,
            "sink {sink}"
        );
        // And without the scale-up the same rate is high risk.
        let r = post(
            &s,
            "/model/topology/heron/wordcount",
            r#"{"source_rate": 30000000}"#,
        );
        let v = body_json(&r);
        assert_eq!(v.get("backpressure_risk").unwrap().as_str(), Some("high"));
        assert_eq!(v.get("bottleneck").unwrap().as_str(), Some("splitter"));
    }

    #[test]
    fn evaluation_endpoint_validates_body() {
        let s = service();
        let r = post(&s, "/model/topology/heron/wordcount", "{not json");
        assert_eq!(r.status, 400);
        let r = post(
            &s,
            "/model/topology/heron/wordcount",
            r#"{"parallelism": {"splitter": 2.5}}"#,
        );
        assert_eq!(r.status, 400);
        let r = post(
            &s,
            "/model/topology/heron/wordcount",
            r#"{"source_rate": "weird"}"#,
        );
        assert_eq!(r.status, 400);
    }

    #[test]
    fn async_evaluation_and_polling() {
        let s = service();
        let r = post(
            &s,
            "/model/topology/heron/wordcount?async=true",
            r#"{"source_rate": 10000000}"#,
        );
        assert_eq!(r.status, 202);
        let v = body_json(&r);
        let id = v.get("job_id").unwrap().as_f64().unwrap() as u64;
        // Poll until done.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let r = get(&s, &format!("/jobs/{id}"));
            let v = body_json(&r);
            match v.get("state").unwrap().as_str() {
                Some("pending") => {
                    assert!(std::time::Instant::now() < deadline, "job never finished");
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                Some("done") => {
                    let result = v.get("result").unwrap();
                    assert_eq!(
                        result.get("backpressure_risk").unwrap().as_str(),
                        Some("low")
                    );
                    break;
                }
                other => panic!("unexpected job state {other:?}"),
            }
        }
    }

    #[test]
    fn repeated_evaluations_hit_model_cache() {
        let s = service();
        let body = r#"{"source_rate": 10000000}"#;
        assert_eq!(
            post(&s, "/model/topology/heron/wordcount", body).status,
            200
        );
        let v = body_json(&get(&s, "/health"));
        let fits_after_first = v
            .get("model_cache")
            .unwrap()
            .get("fits")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(fits_after_first > 0.0);

        assert_eq!(
            post(&s, "/model/topology/heron/wordcount", body).status,
            200
        );
        let v = body_json(&get(&s, "/health"));
        let cache = v.get("model_cache").unwrap();
        assert_eq!(cache.get("fits").unwrap().as_f64(), Some(fits_after_first));
        assert!(cache.get("hits").unwrap().as_f64().unwrap() >= 1.0);
    }

    #[test]
    fn plan_endpoint_runs_async_and_reports_counters() {
        let s = service();
        let r = post(
            &s,
            "/topology/wordcount/plan",
            r#"{"window_minutes": 15, "hysteresis_windows": 1, "max_parallelism": 32}"#,
        );
        assert_eq!(r.status, 202, "{}", String::from_utf8_lossy(&r.body));
        let v = body_json(&r);
        let id = v.get("job_id").unwrap().as_f64().unwrap() as u64;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        let result = loop {
            let r = get(&s, &format!("/jobs/{id}"));
            let v = body_json(&r);
            match v.get("state").unwrap().as_str() {
                Some("pending") => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "plan job never finished"
                    );
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                Some("done") => break v.get("result").unwrap().clone(),
                Some("failed") => panic!("plan failed: {:?}", v.get("error")),
                other => panic!("unexpected job state {other:?}"),
            }
        };
        assert_eq!(result.get("topology").unwrap().as_str(), Some("wordcount"));
        let windows = result.get("windows").unwrap().as_array().unwrap();
        // Default 60-minute horizon in 15-minute windows.
        assert_eq!(windows.len(), 4);
        for w in windows {
            let parallelisms = w.get("parallelisms").unwrap().as_object().unwrap();
            assert!(parallelisms.contains_key("splitter"));
            assert!(parallelisms.contains_key("counter"));
            assert!(
                !parallelisms.contains_key("spout"),
                "spouts are not planned"
            );
            assert!(
                w.get("cost")
                    .unwrap()
                    .get("containers")
                    .unwrap()
                    .as_f64()
                    .unwrap()
                    >= 1.0
            );
        }
        assert!(result.get("oracle_evals").unwrap().as_f64().unwrap() > 0.0);
        assert!(result
            .get("peak_parallelisms")
            .unwrap()
            .as_object()
            .unwrap()
            .contains_key("splitter"));

        // Planner counters surface in /health.
        let v = body_json(&get(&s, "/health"));
        let cache = v.get("model_cache").unwrap();
        assert_eq!(cache.get("plans").unwrap().as_f64(), Some(1.0));
        assert!(cache.get("plan_evals").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn plan_endpoint_validates_requests() {
        let s = service();
        assert_eq!(
            post(&s, "/topology/wordcount/plan", "{not json").status,
            400
        );
        assert_eq!(
            post(&s, "/topology/wordcount/plan", r#"{"headroom": 0.5}"#).status,
            400
        );
        assert_eq!(
            post(&s, "/topology/wordcount/plan", r#"{"window_minutes": 2.5}"#).status,
            400
        );
        assert_eq!(get(&s, "/topology/wordcount/plan").status, 405);
        // An unknown topology surfaces as a failed job, not a routing
        // error (planning is always asynchronous).
        let r = post(&s, "/topology/ghost/plan", "");
        assert_eq!(r.status, 202);
        let id = body_json(&r).get("job_id").unwrap().as_f64().unwrap() as u64;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let v = body_json(&get(&s, &format!("/jobs/{id}")));
            match v.get("state").unwrap().as_str() {
                Some("pending") => {
                    assert!(std::time::Instant::now() < deadline, "job never finished");
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                Some("failed") => break,
                other => panic!("expected failure for ghost topology, got {other:?}"),
            }
        }
    }

    /// Forced shed: with an impossible latency SLO, any low-priority
    /// plan request is shed once the route has observed latency at all,
    /// while high-priority requests always pass.
    #[test]
    fn plan_requests_shed_under_admission_pressure() {
        let s = ApiService::with_admission(
            caladrius(),
            2,
            AdmissionConfig {
                enabled: true,
                slo_p99_seconds: -1.0,
                retry_after_seconds: 3,
                ..AdmissionConfig::default()
            },
        );
        // Prime the route's latency histogram: high priority bypasses
        // shedding unconditionally.
        let r = post_with(
            &s,
            "/topology/wordcount/plan",
            "",
            &[("x-priority", "high")],
        );
        assert_eq!(r.status, 202, "{}", String::from_utf8_lossy(&r.body));
        // Low priority now sheds — the observed p99 exceeds the SLO.
        let r = post(&s, "/topology/wordcount/plan", "");
        assert_eq!(r.status, 429, "{}", String::from_utf8_lossy(&r.body));
        assert!(
            r.headers
                .iter()
                .any(|(n, v)| n == "Retry-After" && v == "3"),
            "Retry-After hint on shed responses: {:?}",
            r.headers
        );
        let shed = caladrius_obs::global_registry().counter(
            "caladrius_fleet_shed_total",
            &[("route", "/topology/{topology}/plan"), ("priority", "low")],
        );
        assert!(shed.get() >= 1);
        // High priority still passes under the same pressure.
        let r = post_with(
            &s,
            "/topology/wordcount/plan",
            "",
            &[("x-priority", "high")],
        );
        assert_eq!(r.status, 202);
    }

    /// Per-topology fairness at the route: with the single worker gated
    /// and the per-key cap at 1, a second plan for the same topology is
    /// refused with `429` + `Retry-After`.
    #[test]
    fn plan_requests_hit_per_topology_cap() {
        let s = ApiService::with_parts(
            caladrius(),
            crate::jobs::JobRunner::new(1).with_per_key_cap(1),
            AdmissionConfig::default(),
        );
        let (gate_tx, gate_rx) = crossbeam::channel::unbounded::<()>();
        s.jobs().submit(move || {
            gate_rx.recv().ok();
            Ok(Value::Null)
        });
        let r = post(&s, "/topology/wordcount/plan", "");
        assert_eq!(r.status, 202, "{}", String::from_utf8_lossy(&r.body));
        let r = post(&s, "/topology/wordcount/plan", "");
        assert_eq!(r.status, 429, "{}", String::from_utf8_lossy(&r.body));
        assert!(r.headers.iter().any(|(n, _)| n == "Retry-After"));
        // A different topology is not starved by wordcount's backlog
        // (the job itself will fail — ghost is unknown — but submission
        // must be admitted).
        let r = post(&s, "/topology/ghost/plan", "");
        assert_eq!(r.status, 202, "{}", String::from_utf8_lossy(&r.body));
        gate_tx.send(()).unwrap();
    }

    #[test]
    fn plan_body_accepts_container_budget() {
        let request = parse_plan_body(r#"{"max_containers": 7}"#).unwrap();
        assert_eq!(request.planner.limits.max_containers, 7);
        // Zero is rejected by planner validation.
        assert!(parse_plan_body(r#"{"max_containers": 0}"#).is_err());
        // Absent keeps the unlimited default.
        let request = parse_plan_body("{}").unwrap();
        assert_eq!(
            request.planner.limits.max_containers,
            caladrius_planner::UNLIMITED_CONTAINERS
        );
    }

    #[test]
    fn job_endpoint_errors() {
        let s = service();
        assert_eq!(get(&s, "/jobs/xyz").status, 400);
        assert_eq!(get(&s, "/jobs/424242").status, 404);
    }

    #[test]
    fn packing_endpoint() {
        let s = service();
        let r = get(
            &s,
            "/model/packing/heron/wordcount?containers=4&parallelism=splitter:6",
        );
        assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));
        let v = body_json(&r);
        assert_eq!(v.get("containers").unwrap().as_f64(), Some(4.0));
        // spout 8 + splitter 6 + counter 3 = 17 instances, 8*6*3 paths.
        assert_eq!(v.get("total_instances").unwrap().as_f64(), Some(17.0));
        assert_eq!(v.get("instance_paths").unwrap().as_f64(), Some(144.0));
        assert_eq!(
            get(&s, "/model/packing/heron/wordcount?containers=x").status,
            400
        );
        assert_eq!(
            get(&s, "/model/packing/heron/wordcount?parallelism=bad").status,
            400
        );
        assert_eq!(get(&s, "/model/packing/heron/ghost").status, 404);
    }

    #[test]
    fn metrics_endpoint() {
        let s = service();
        let r = get(
            &s,
            "/metrics/heron/wordcount?q=execute-count%7Bcomponent%3Dsplitter%7D",
        );
        assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));
        let v = body_json(&r);
        assert_eq!(v.get("metric").unwrap().as_str(), Some("execute-count"));
        let series = v.get("series").unwrap().as_array().unwrap();
        assert_eq!(series.len(), 2, "two splitter instances");
        let samples = series[0].get("samples").unwrap().as_array().unwrap();
        assert!(!samples.is_empty());
        assert_eq!(samples[0].as_array().unwrap().len(), 2);
        // Errors.
        assert_eq!(get(&s, "/metrics/heron/wordcount").status, 400);
        assert_eq!(get(&s, "/metrics/heron/wordcount?q=m%7Bbad").status, 400);
        assert_eq!(
            get(&s, "/metrics/heron/wordcount?q=execute-count&from=zzz").status,
            400
        );
        assert_eq!(get(&s, "/metrics/heron/ghost?q=execute-count").status, 404);
    }

    #[test]
    fn unknown_routes_and_methods() {
        let s = service();
        assert_eq!(get(&s, "/nope").status, 404);
        assert_eq!(post(&s, "/health", "").status, 405);
        assert_eq!(post(&s, "/model/traffic/heron/wordcount", "").status, 405);
        assert_eq!(post(&s, "/metrics/service", "").status, 405);
        assert_eq!(post(&s, "/trace/recent", "").status, 405);
    }

    /// The `/health` JSON field names are a stable contract; this test
    /// pins the exact shape so the obs migration (and future refactors)
    /// cannot silently rename or drop fields.
    #[test]
    fn health_shape_is_stable() {
        let s = service();
        let v = body_json(&get(&s, "/health"));
        let top = v.as_object().unwrap();
        let mut keys: Vec<&str> = top.keys().map(String::as_str).collect();
        keys.sort_unstable();
        assert_eq!(
            keys,
            vec![
                "ingest",
                "jobs_tracked",
                "model_cache",
                "plan_cache",
                "slo",
                "status",
                "tsdb"
            ]
        );
        let slo = v.get("slo").unwrap().as_object().unwrap();
        let mut slo_keys: Vec<&str> = slo.keys().map(String::as_str).collect();
        slo_keys.sort_unstable();
        assert_eq!(slo_keys, vec!["firing", "objectives", "warning"]);
        let cache = v.get("model_cache").unwrap().as_object().unwrap();
        let mut cache_keys: Vec<&str> = cache.keys().map(String::as_str).collect();
        cache_keys.sort_unstable();
        assert_eq!(
            cache_keys,
            vec![
                "fits",
                "full_fits",
                "hits",
                "incremental_fits",
                "misses",
                "oracle_hits",
                "oracle_misses",
                "plan_evals",
                "plans"
            ]
        );
        let plan_cache = v.get("plan_cache").unwrap().as_object().unwrap();
        let mut plan_cache_keys: Vec<&str> = plan_cache.keys().map(String::as_str).collect();
        plan_cache_keys.sort_unstable();
        assert_eq!(
            plan_cache_keys,
            vec!["evictions", "hits", "misses", "warm_starts"]
        );
        let ingest = v.get("ingest").unwrap().as_object().unwrap();
        let mut ingest_keys: Vec<&str> = ingest.keys().map(String::as_str).collect();
        ingest_keys.sort_unstable();
        assert_eq!(ingest_keys, vec!["batches", "samples"]);
        let tsdb = v.get("tsdb").unwrap().as_object().unwrap();
        let mut tsdb_keys: Vec<&str> = tsdb.keys().map(String::as_str).collect();
        tsdb_keys.sort_unstable();
        assert_eq!(tsdb_keys, vec!["tail_cache_hits", "tail_cache_misses"]);
    }

    #[test]
    fn service_metrics_exposition_covers_instrumented_layers() {
        let s = service();
        // Drive a few routes so per-route metrics exist.
        assert_eq!(get(&s, "/health").status, 200);
        assert_eq!(
            post(
                &s,
                "/model/topology/heron/wordcount",
                r#"{"source_rate": 10000000}"#
            )
            .status,
            200
        );
        let r = get(&s, "/metrics/service");
        assert_eq!(r.status, 200);
        assert!(r.content_type.starts_with("text/plain"));
        let body = String::from_utf8(r.body).unwrap();
        for metric in [
            "caladrius_http_requests_total",
            "caladrius_http_request_duration_seconds",
            "caladrius_tsdb_ingest_samples_total",
            "caladrius_model_cache_misses_total",
            "caladrius_model_fit_duration_seconds",
            "caladrius_sim_minute_duration_seconds",
            "caladrius_jobs_queue_depth",
            // The model fit above ran on the shared "fit" exec pool, so
            // its per-pool series must surface here too.
            "caladrius_exec_tasks_total{pool=\"fit\"}",
            "caladrius_exec_task_duration_seconds",
        ] {
            assert!(body.contains(metric), "missing {metric} in:\n{body}");
        }
        assert!(body.contains("route=\"/model/topology/heron/{topology}\""));
        assert!(body.contains("method=\"POST\""));
        assert!(body.contains("status=\"200\""));
    }

    #[test]
    fn trace_recent_reports_request_ids() {
        let s = service();
        assert_eq!(get(&s, "/health").status, 200);
        let r = get(&s, "/trace/recent?limit=50");
        assert_eq!(r.status, 200);
        let v = body_json(&r);
        let events = v.get("events").unwrap().as_array().unwrap();
        assert!(!events.is_empty());
        let http_span = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("http.request"))
            .expect("http.request span recorded");
        assert!(
            http_span.get("request_id").unwrap().as_str().is_some(),
            "request id attached"
        );
        assert_eq!(
            http_span
                .get("fields")
                .unwrap()
                .get("route")
                .unwrap()
                .as_str(),
            Some("/health")
        );
        // Bad limit is rejected; limit=1 truncates.
        assert_eq!(get(&s, "/trace/recent?limit=zz").status, 400);
        let v = body_json(&get(&s, "/trace/recent?limit=1"));
        assert_eq!(v.get("events").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn job_poll_includes_timing() {
        let s = service();
        let r = post(
            &s,
            "/model/topology/heron/wordcount?async=true",
            r#"{"source_rate": 10000000}"#,
        );
        assert_eq!(r.status, 202);
        let id = body_json(&r).get("job_id").unwrap().as_f64().unwrap() as u64;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let v = body_json(&get(&s, &format!("/jobs/{id}")));
            match v.get("state").unwrap().as_str() {
                Some("pending") => {
                    assert!(v.get("queued_ms").unwrap().as_f64().unwrap() > 0.0);
                    assert!(std::time::Instant::now() < deadline, "job never finished");
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                Some("done") => {
                    assert!(v.get("queued_ms").unwrap().as_f64().unwrap() > 0.0);
                    assert!(v.get("started_ms").unwrap().as_f64().is_some());
                    assert!(v.get("finished_ms").unwrap().as_f64().is_some());
                    assert!(v.get("queue_wait_ms").unwrap().as_f64().unwrap() >= 0.0);
                    assert!(v.get("duration_ms").unwrap().as_f64().unwrap() >= 0.0);
                    break;
                }
                other => panic!("unexpected job state {other:?}"),
            }
        }
    }

    #[test]
    fn full_http_round_trip() {
        let s = service();
        let server = HttpServer::serve("127.0.0.1:0", 2, s.handler()).unwrap();
        let client = HttpClient::new(server.local_addr());
        let (status, body) = client.get("/health").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("ok"));
        let (status, body) = client
            .post(
                "/model/topology/heron/wordcount",
                r#"{"parallelism": {"splitter": 3}, "source_rate": 20000000}"#,
            )
            .unwrap();
        assert_eq!(status, 200, "{body}");
        let v = json::parse(&body).unwrap();
        assert!(v.get("sink_output_rate").unwrap().as_f64().unwrap() > 0.0);
    }
}
