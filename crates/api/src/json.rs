//! JSON value model, serializer and parser.
//!
//! The API tier responses are "JSON formatted string(s) which contain
//! the results of modelling and additional metadata" (paper §III-A).
//! This module implements the needed subset of RFC 8259 from scratch:
//! full parsing and serialization of objects, arrays, strings (with
//! escape sequences including `\uXXXX`), numbers, booleans and null.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (sorted keys for deterministic output).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Object constructor from key/value pairs.
    pub fn object(entries: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Number view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.get(key)
    }

    /// Serializes to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    // JSON has no NaN/Inf; emit null like most encoders.
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Number(n as f64)
    }
}
impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Number(f64::from(n))
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(n as f64)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// A JSON parse error with byte position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset where the error was detected.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error("invalid number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced pos past the digits
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected , or }")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialize_primitives() {
        assert_eq!(Value::Null.to_json(), "null");
        assert_eq!(Value::Bool(true).to_json(), "true");
        assert_eq!(Value::Number(42.0).to_json(), "42");
        assert_eq!(Value::Number(1.5).to_json(), "1.5");
        assert_eq!(Value::from("hi").to_json(), "\"hi\"");
        assert_eq!(Value::Number(f64::NAN).to_json(), "null");
    }

    #[test]
    fn serialize_nested() {
        let v = Value::object([
            ("name", Value::from("wordcount")),
            ("rates", Value::from(vec![1.0, 2.5])),
            ("ok", Value::from(true)),
        ]);
        assert_eq!(
            v.to_json(),
            "{\"name\":\"wordcount\",\"ok\":true,\"rates\":[1,2.5]}"
        );
    }

    #[test]
    fn string_escaping() {
        let v = Value::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.to_json(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn parse_primitives() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Number(-1250.0));
        assert_eq!(parse("\"x\"").unwrap(), Value::from("x"));
    }

    #[test]
    fn parse_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "d"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("d"));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Value::Null));
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(BTreeMap::new()));
    }

    #[test]
    fn parse_escapes_and_unicode() {
        assert_eq!(
            parse(r#""a\nb\t\"c\"""#).unwrap().as_str(),
            Some("a\nb\t\"c\"")
        );
        assert_eq!(parse(r#""é""#).unwrap().as_str(), Some("é"));
        // Surrogate pair: U+1F600.
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        assert_eq!(parse("\"héllo\"").unwrap().as_str(), Some("héllo"));
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "[1] extra",
            "{\"a\" 1}",
            r#""\ud83d""#,
            r#""\uZZZZ""#,
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn roundtrip() {
        let original = Value::object([
            (
                "nested",
                Value::object([("list", Value::from(vec![1i64, 2, 3]))]),
            ),
            ("pi", Value::Number(3.25)),
            ("s", Value::from("x\"y\\z")),
            ("none", Value::Null),
        ]);
        let parsed = parse(&original.to_json()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n": 4, "b": false, "a": [1]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_f64(), Some(4.0));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
        assert!(v.as_str().is_none());
        assert_eq!(v.to_string(), v.to_json());
    }

    #[test]
    fn large_integers_stay_exact() {
        assert_eq!(Value::Number(1_000_000_000.0).to_json(), "1000000000");
        let parsed = parse("11000000").unwrap();
        assert_eq!(parsed.as_f64(), Some(11_000_000.0));
    }
}
