//! Minimal HTTP/1.1 server and client over `std::net`.
//!
//! The server parses one request per connection (`Connection: close`
//! semantics), dispatches it to a handler on a crossbeam-fed worker pool
//! ("an asynchronous API allows the server side calculation pipelines to
//! run concurrently", paper §III-A) and writes the response. No external
//! web framework is on the offline dependency allow-list, so this is a
//! deliberately small, well-tested implementation.

use crossbeam::channel::{unbounded, Sender};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Maximum accepted request body (1 MiB) — model requests are small.
const MAX_BODY: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method (`GET`, `POST`, ...), upper-case.
    pub method: String,
    /// Path without the query string, e.g. `/model/traffic/heron/wc`.
    pub path: String,
    /// Decoded query parameters.
    pub query: BTreeMap<String, String>,
    /// Headers, keys lower-cased.
    pub headers: BTreeMap<String, String>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

/// Header carrying the request id (lower-case, as parsed).
pub const REQUEST_ID_HEADER: &str = "x-request-id";

impl Request {
    /// The body as UTF-8, if valid.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// The request id minted at the server edge (or supplied by the
    /// client). Always present on requests delivered through
    /// [`HttpServer::serve`]; absent only on hand-built requests.
    pub fn request_id(&self) -> Option<caladrius_obs::RequestId> {
        self.headers
            .get(REQUEST_ID_HEADER)
            .and_then(|v| caladrius_obs::RequestId::parse(v))
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Content type header value.
    pub content_type: String,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Extra response headers beyond the standard set (e.g.
    /// `Retry-After` on load-shedding 429s).
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn json(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "application/json".into(),
            body: body.into().into_bytes(),
            headers: Vec::new(),
        }
    }

    /// A JSON response with an explicit status.
    pub fn json_status(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            ..Response::json(body)
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".into(),
            body: body.into().into_bytes(),
            headers: Vec::new(),
        }
    }

    /// Builder-style extra header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    fn status_text(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }

    fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            self.status_text(),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.headers {
            write!(stream, "{name}: {value}\r\n")?;
        }
        stream.write_all(b"\r\n")?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// The request handler signature.
pub type Handler = Arc<dyn Fn(Request) -> Response + Send + Sync>;

/// A running HTTP server; dropping it (or calling
/// [`HttpServer::shutdown`]) stops the accept loop.
pub struct HttpServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl HttpServer {
    /// Binds and starts serving on `addr` (use port 0 for an ephemeral
    /// port) with `workers` handler threads.
    pub fn serve(
        addr: impl ToSocketAddrs,
        workers: usize,
        handler: Handler,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));

        let (tx, rx) = unbounded::<TcpStream>();
        for _ in 0..workers.max(1) {
            let rx = rx.clone();
            let handler = Arc::clone(&handler);
            std::thread::spawn(move || {
                while let Ok(stream) = rx.recv() {
                    handle_connection(stream, &handler);
                }
            });
        }

        let stop_flag = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(listener, tx, stop_flag);
        });

        Ok(HttpServer {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, tx: Sender<TcpStream>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
                if tx.send(stream).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn handle_connection(stream: TcpStream, handler: &Handler) {
    let mut stream = stream;
    let response = match read_request(&mut stream) {
        Ok(mut request) => {
            // Mint a request id at the service edge when the client did
            // not send one; every downstream span records under it.
            request
                .headers
                .entry(REQUEST_ID_HEADER.to_string())
                .or_insert_with(|| caladrius_obs::next_request_id().to_string());
            handler(request)
        }
        Err(msg) => Response::text(400, msg),
    };
    let _ = response.write_to(&mut stream);
}

/// Reads and parses one HTTP/1.1 request from a stream.
pub fn read_request(stream: &mut impl Read) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read error: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("missing method")?.to_uppercase();
    let target = parts.next().ok_or("missing request target")?.to_string();
    let version = parts.next().ok_or("missing HTTP version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported version {version}"));
    }

    let mut headers = BTreeMap::new();
    loop {
        let mut header_line = String::new();
        reader
            .read_line(&mut header_line)
            .map_err(|e| format!("read error: {e}"))?;
        let trimmed = header_line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(format!("malformed header {trimmed:?}"));
        };
        headers.insert(name.trim().to_lowercase(), value.trim().to_string());
    }

    let content_length: usize = headers
        .get("content-length")
        .map(|v| v.parse().map_err(|_| "invalid content-length".to_string()))
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(format!("body too large ({content_length} bytes)"));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("body read error: {e}"))?;

    let (path, query) = parse_target(&target);
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// Splits a request target into path + decoded query map.
pub fn parse_target(target: &str) -> (String, BTreeMap<String, String>) {
    match target.split_once('?') {
        None => (percent_decode(target), BTreeMap::new()),
        Some((path, query_string)) => {
            let mut query = BTreeMap::new();
            for pair in query_string.split('&').filter(|p| !p.is_empty()) {
                match pair.split_once('=') {
                    Some((k, v)) => query.insert(percent_decode(k), percent_decode(v)),
                    None => query.insert(percent_decode(pair), String::new()),
                };
            }
            (percent_decode(path), query)
        }
    }
}

/// Percent-decodes a URL component (also maps `+` to space). Malformed
/// escapes are passed through verbatim.
pub fn percent_decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 3 <= bytes.len() {
            if let Some(b) = std::str::from_utf8(&bytes[i + 1..i + 3])
                .ok()
                .and_then(|hex| u8::from_str_radix(hex, 16).ok())
            {
                out.push(b);
                i += 3;
                continue;
            }
        }
        out.push(if bytes[i] == b'+' { b' ' } else { bytes[i] });
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A tiny blocking HTTP client for tests, examples and the CLI.
#[derive(Debug, Clone)]
pub struct HttpClient {
    addr: std::net::SocketAddr,
}

impl HttpClient {
    /// Creates a client for a server address.
    pub fn new(addr: std::net::SocketAddr) -> Self {
        Self { addr }
    }

    /// Issues a GET and returns `(status, body)`.
    pub fn get(&self, target: &str) -> std::io::Result<(u16, String)> {
        let (status, _, body) = self.request("GET", target, None, &[])?;
        Ok((status, body))
    }

    /// Issues a POST with a JSON body and returns `(status, body)`.
    pub fn post(&self, target: &str, body: &str) -> std::io::Result<(u16, String)> {
        let (status, _, body) = self.request("POST", target, Some(body), &[])?;
        Ok((status, body))
    }

    /// [`HttpClient::post`] with request headers, returning the response
    /// headers too (keys lower-cased) — load-shedding clients read
    /// `Retry-After` off 429s, and priority rides in on `x-priority`.
    pub fn post_full(
        &self,
        target: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> std::io::Result<(u16, BTreeMap<String, String>, String)> {
        self.request("POST", target, Some(body), headers)
    }

    /// [`HttpClient::get`] returning response headers (keys lower-cased).
    pub fn get_full(
        &self,
        target: &str,
    ) -> std::io::Result<(u16, BTreeMap<String, String>, String)> {
        self.request("GET", target, None, &[])
    }

    fn request(
        &self,
        method: &str,
        target: &str,
        body: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<(u16, BTreeMap<String, String>, String)> {
        let mut stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let body = body.unwrap_or("");
        let mut head = format!(
            "{method} {target} HTTP/1.1\r\nHost: caladrius\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
            body.len()
        );
        for (name, value) in extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        write!(stream, "{head}\r\n{body}")?;
        stream.flush()?;
        let mut raw = String::new();
        stream.read_to_string(&mut raw)?;
        let status = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::other("malformed response"))?;
        let (head, body) = raw
            .split_once("\r\n\r\n")
            .map(|(h, b)| (h.to_string(), b.to_string()))
            .unwrap_or_default();
        let mut headers = BTreeMap::new();
        for line in head.lines().skip(1) {
            if let Some((name, value)) = line.split_once(':') {
                headers.insert(name.trim().to_lowercase(), value.trim().to_string());
            }
        }
        Ok((status, headers, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_target_splits_query() {
        let (path, query) = parse_target("/model/traffic/heron/wc?model=prophet&h=60");
        assert_eq!(path, "/model/traffic/heron/wc");
        assert_eq!(query["model"], "prophet");
        assert_eq!(query["h"], "60");
        let (path, query) = parse_target("/health");
        assert_eq!(path, "/health");
        assert!(query.is_empty());
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b"), "a b");
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%2Fx"), "/x");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn read_request_parses_post() {
        let raw = b"POST /x?a=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/x");
        assert_eq!(req.query["a"], "1");
        assert_eq!(req.headers["host"], "h");
        assert_eq!(req.body_str(), Some("body"));
    }

    #[test]
    fn read_request_rejects_garbage() {
        assert!(read_request(&mut &b"NOT-HTTP\r\n\r\n"[..]).is_err());
        assert!(read_request(&mut &b"GET / SPDY/1\r\n\r\n"[..]).is_err());
        assert!(read_request(&mut &b"GET / HTTP/1.1\r\nbad header\r\n\r\n"[..]).is_err());
        assert!(
            read_request(&mut &b"GET / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n"[..])
                .is_err()
        );
    }

    #[test]
    fn server_roundtrip() {
        let handler: Handler = Arc::new(|req: Request| {
            Response::json(format!(
                "{{\"path\":\"{}\",\"method\":\"{}\"}}",
                req.path, req.method
            ))
        });
        let server = HttpServer::serve("127.0.0.1:0", 2, handler).unwrap();
        let client = HttpClient::new(server.local_addr());
        let (status, body) = client.get("/hello?x=1").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"/hello\""));
        let (status, body) = client.post("/submit", "{\"a\":1}").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("POST"));
    }

    #[test]
    fn server_concurrent_requests() {
        let handler: Handler = Arc::new(|_req: Request| {
            std::thread::sleep(Duration::from_millis(30));
            Response::json("{\"ok\":true}")
        });
        let server = HttpServer::serve("127.0.0.1:0", 4, handler).unwrap();
        let addr = server.local_addr();
        let start = std::time::Instant::now();
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(move || HttpClient::new(addr).get("/").unwrap().0))
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 200);
        }
        // 4 requests at 30ms on 4 workers should take well under 4x30ms.
        assert!(start.elapsed() < Duration::from_millis(110));
    }

    #[test]
    fn shutdown_stops_accepting() {
        let handler: Handler = Arc::new(|_| Response::json("{}"));
        let mut server = HttpServer::serve("127.0.0.1:0", 1, handler).unwrap();
        let addr = server.local_addr();
        server.shutdown();
        // After shutdown new connections must fail (refused) or at least
        // not be answered.
        let result = HttpClient::new(addr).get("/");
        assert!(result.is_err() || result.unwrap().0 != 200);
    }

    #[test]
    fn response_status_text() {
        assert_eq!(Response::text(404, "nope").status_text(), "Not Found");
        assert_eq!(Response::json_status(202, "{}").status_text(), "Accepted");
        assert_eq!(Response::json("{}").status_text(), "OK");
        assert_eq!(Response::text(599, "?").status_text(), "Unknown");
    }
}
