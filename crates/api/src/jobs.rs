//! Asynchronous model jobs.
//!
//! "A call to the topology modelling endpoints may incur a wait (up to
//! several seconds, depending on the modelling logic). Therefore, it is
//! prudent to let the API be asynchronous" (paper §III-A). A job is a
//! closure executed on a worker pool; clients receive an id immediately
//! and poll for the result.

use crate::json::Value;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The lifecycle of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Queued or running.
    Pending,
    /// Finished successfully with a JSON result.
    Done(Value),
    /// Failed with an error message.
    Failed(String),
}

type Task = Box<dyn FnOnce() -> Result<Value, String> + Send>;

/// A worker pool executing jobs and a store of their states.
pub struct JobRunner {
    next_id: AtomicU64,
    states: Arc<Mutex<HashMap<u64, JobState>>>,
    tx: Sender<(u64, Task)>,
}

impl std::fmt::Debug for JobRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobRunner")
            .field("jobs", &self.states.lock().len())
            .finish_non_exhaustive()
    }
}

impl JobRunner {
    /// Starts a runner with `workers` threads.
    pub fn new(workers: usize) -> Self {
        let (tx, rx) = unbounded::<(u64, Task)>();
        let states: Arc<Mutex<HashMap<u64, JobState>>> = Arc::new(Mutex::new(HashMap::new()));
        for _ in 0..workers.max(1) {
            let rx = rx.clone();
            let states = Arc::clone(&states);
            std::thread::spawn(move || {
                while let Ok((id, task)) = rx.recv() {
                    let outcome = match task() {
                        Ok(value) => JobState::Done(value),
                        Err(message) => JobState::Failed(message),
                    };
                    states.lock().insert(id, outcome);
                }
            });
        }
        Self {
            next_id: AtomicU64::new(1),
            states,
            tx,
        }
    }

    /// Submits a job; returns its id immediately.
    pub fn submit(&self, task: impl FnOnce() -> Result<Value, String> + Send + 'static) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        self.states.lock().insert(id, JobState::Pending);
        self.tx
            .send((id, Box::new(task)))
            .expect("workers outlive the runner");
        id
    }

    /// Polls a job's state.
    pub fn state(&self, id: u64) -> Option<JobState> {
        self.states.lock().get(&id).cloned()
    }

    /// Blocks until the job completes (testing convenience).
    pub fn wait(&self, id: u64) -> Option<JobState> {
        loop {
            match self.state(id) {
                Some(JobState::Pending) => std::thread::sleep(std::time::Duration::from_millis(2)),
                other => return other,
            }
        }
    }

    /// Number of tracked jobs.
    pub fn len(&self) -> usize {
        self.states.lock().len()
    }

    /// True when no jobs were ever submitted.
    pub fn is_empty(&self) -> bool {
        self.states.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_and_poll() {
        let runner = JobRunner::new(2);
        assert!(runner.is_empty());
        let id = runner.submit(|| Ok(Value::Number(42.0)));
        let state = runner.wait(id).unwrap();
        assert_eq!(state, JobState::Done(Value::Number(42.0)));
        assert_eq!(runner.len(), 1);
    }

    #[test]
    fn failures_captured() {
        let runner = JobRunner::new(1);
        let id = runner.submit(|| Err("boom".into()));
        assert_eq!(runner.wait(id), Some(JobState::Failed("boom".into())));
    }

    #[test]
    fn unknown_job_is_none() {
        let runner = JobRunner::new(1);
        assert_eq!(runner.state(999), None);
        assert_eq!(runner.wait(999), None);
    }

    #[test]
    fn ids_are_unique_and_concurrent_jobs_complete() {
        let runner = Arc::new(JobRunner::new(4));
        let ids: Vec<u64> = (0..20)
            .map(|i| runner.submit(move || Ok(Value::Number(f64::from(i)))))
            .collect();
        let distinct: std::collections::HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(distinct.len(), 20);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(
                runner.wait(*id),
                Some(JobState::Done(Value::Number(i as f64)))
            );
        }
    }

    #[test]
    fn pending_visible_while_running() {
        let runner = JobRunner::new(1);
        let blocker = runner.submit(|| {
            std::thread::sleep(std::time::Duration::from_millis(50));
            Ok(Value::Null)
        });
        let queued = runner.submit(|| Ok(Value::Null));
        assert_eq!(runner.state(queued), Some(JobState::Pending));
        runner.wait(blocker);
        runner.wait(queued);
    }
}
