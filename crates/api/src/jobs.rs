//! Asynchronous model jobs.
//!
//! "A call to the topology modelling endpoints may incur a wait (up to
//! several seconds, depending on the modelling logic). Therefore, it is
//! prudent to let the API be asynchronous" (paper §III-A). A job is a
//! closure executed on a worker pool; clients receive an id immediately
//! and poll for the result.

use crate::json::Value;
use caladrius_obs::{Gauge, RequestScope};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Default bound on tracked jobs per runner.
pub const DEFAULT_JOB_CAPACITY: usize = 1024;

/// Default bound on in-flight (pending or running) jobs per fairness
/// key — one tenant topology cannot monopolize the worker pool.
pub const DEFAULT_PER_KEY_IN_FLIGHT: u32 = 16;

/// A keyed submission was refused: the key already has `in_flight`
/// unfinished jobs against a cap of `cap`. Maps to `429 Too Many
/// Requests` at the HTTP edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRejected {
    /// The fairness key (topology id) that hit its cap.
    pub key: String,
    /// Unfinished jobs currently held by the key.
    pub in_flight: u32,
    /// The per-key in-flight cap.
    pub cap: u32,
}

impl std::fmt::Display for JobRejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job for {:?} rejected: {} of {} in-flight jobs already held",
            self.key, self.in_flight, self.cap
        )
    }
}

impl std::error::Error for JobRejected {}

/// The lifecycle of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Queued or running.
    Pending,
    /// Finished successfully with a JSON result.
    Done(Value),
    /// Failed with an error message.
    Failed(String),
}

/// Timing milestones of a job, all in Unix milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobTiming {
    /// When the job was submitted.
    pub queued_unix_ms: i64,
    /// When a worker picked the job up (None while queued).
    pub started_unix_ms: Option<i64>,
    /// When the job finished (None while queued or running).
    pub finished_unix_ms: Option<i64>,
}

impl JobTiming {
    /// Milliseconds spent queued before a worker picked the job up.
    pub fn queue_wait_ms(&self) -> Option<i64> {
        self.started_unix_ms.map(|s| s - self.queued_unix_ms)
    }

    /// Milliseconds of actual execution, once finished.
    pub fn duration_ms(&self) -> Option<i64> {
        match (self.started_unix_ms, self.finished_unix_ms) {
            (Some(s), Some(f)) => Some(f - s),
            _ => None,
        }
    }
}

fn unix_ms() -> i64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as i64)
        .unwrap_or(0)
}

type Task = Box<dyn FnOnce() -> Result<Value, String> + Send>;

struct JobEntry {
    state: JobState,
    timing: JobTiming,
    /// Fairness key (topology id) the job counts against, if any.
    key: Option<String>,
}

struct StoreInner {
    states: HashMap<u64, JobEntry>,
    /// Insertion order of job ids, oldest first (drives eviction).
    order: VecDeque<u64>,
    /// Unfinished jobs per fairness key (pending or running).
    in_flight: HashMap<String, u32>,
}

/// A capacity-bounded store of job states.
///
/// Holds at most `capacity` jobs. When a new job arrives at capacity the
/// oldest *finished* (done or failed) job is evicted; pending jobs are
/// never dropped, so the store can temporarily exceed capacity while
/// more than `capacity` jobs are in flight at once.
pub struct JobStore {
    capacity: usize,
    inner: Mutex<StoreInner>,
}

impl std::fmt::Debug for JobStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobStore")
            .field("capacity", &self.capacity)
            .field("jobs", &self.len())
            .finish()
    }
}

impl JobStore {
    /// Creates a store bounded to `capacity` jobs (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(StoreInner {
                states: HashMap::new(),
                order: VecDeque::new(),
                in_flight: HashMap::new(),
            }),
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Tracks a new job, evicting the oldest finished job if the store
    /// is at capacity. Stamps the queued timestamp.
    pub fn insert(&self, id: u64, state: JobState) {
        let mut inner = self.inner.lock();
        Self::insert_entry(&mut inner, self.capacity, id, state, None);
    }

    /// Tracks a new job counted against fairness key `key`, refusing the
    /// insert when the key already holds `cap` unfinished jobs. The
    /// check-and-increment runs under the store lock, so concurrent
    /// submitters can never jointly exceed the cap.
    pub fn insert_keyed(&self, id: u64, key: &str, cap: u32) -> Result<(), JobRejected> {
        let mut inner = self.inner.lock();
        let in_flight = inner.in_flight.get(key).copied().unwrap_or(0);
        if in_flight >= cap {
            return Err(JobRejected {
                key: key.to_string(),
                in_flight,
                cap,
            });
        }
        *inner.in_flight.entry(key.to_string()).or_insert(0) += 1;
        Self::insert_entry(
            &mut inner,
            self.capacity,
            id,
            JobState::Pending,
            Some(key.to_string()),
        );
        Ok(())
    }

    fn insert_entry(
        inner: &mut StoreInner,
        capacity: usize,
        id: u64,
        state: JobState,
        key: Option<String>,
    ) {
        if inner.states.len() >= capacity {
            Self::evict_oldest_finished(inner, 1);
        }
        let entry = JobEntry {
            state,
            timing: JobTiming {
                queued_unix_ms: unix_ms(),
                ..JobTiming::default()
            },
            key,
        };
        if inner.states.insert(id, entry).is_none() {
            inner.order.push_back(id);
        }
    }

    /// Unfinished jobs currently counted against a fairness key.
    pub fn in_flight(&self, key: &str) -> u32 {
        self.inner.lock().in_flight.get(key).copied().unwrap_or(0)
    }

    /// Records the outcome of a tracked job, stamping the finished
    /// timestamp for terminal states (and releasing the job's fairness
    /// slot, if keyed). Outcomes for jobs already evicted are dropped
    /// (their slot was reclaimed while they ran).
    pub fn update(&self, id: u64, state: JobState) {
        let mut inner = self.inner.lock();
        let mut release = None;
        if let Some(slot) = inner.states.get_mut(&id) {
            if !matches!(state, JobState::Pending) && slot.timing.finished_unix_ms.is_none() {
                slot.timing.finished_unix_ms = Some(unix_ms());
                release = slot.key.clone();
            }
            slot.state = state;
        }
        if let Some(key) = release {
            if let Some(count) = inner.in_flight.get_mut(&key) {
                *count = count.saturating_sub(1);
                if *count == 0 {
                    inner.in_flight.remove(&key);
                }
            }
        }
    }

    /// Stamps the started timestamp when a worker picks the job up and
    /// returns the timing so far (None if the job was already evicted).
    pub fn mark_started(&self, id: u64) -> Option<JobTiming> {
        let mut inner = self.inner.lock();
        let slot = inner.states.get_mut(&id)?;
        if slot.timing.started_unix_ms.is_none() {
            slot.timing.started_unix_ms = Some(unix_ms());
        }
        Some(slot.timing)
    }

    /// A job's current state.
    pub fn get(&self, id: u64) -> Option<JobState> {
        self.inner.lock().states.get(&id).map(|e| e.state.clone())
    }

    /// A job's timing milestones.
    pub fn timing(&self, id: u64) -> Option<JobTiming> {
        self.inner.lock().states.get(&id).map(|e| e.timing)
    }

    /// Evicts oldest-first finished jobs until at most `keep` jobs remain
    /// tracked (or no finished jobs are left). Returns how many were
    /// evicted.
    pub fn evict_finished(&self, keep: usize) -> usize {
        let mut inner = self.inner.lock();
        let excess = inner.states.len().saturating_sub(keep);
        Self::evict_oldest_finished(&mut inner, excess)
    }

    fn evict_oldest_finished(inner: &mut StoreInner, max_evictions: usize) -> usize {
        let mut evicted = 0;
        if max_evictions == 0 {
            return evicted;
        }
        let mut kept = VecDeque::with_capacity(inner.order.len());
        while let Some(id) = inner.order.pop_front() {
            let finished = !matches!(
                inner.states.get(&id).map(|e| &e.state),
                Some(JobState::Pending)
            );
            if finished && evicted < max_evictions {
                inner.states.remove(&id);
                evicted += 1;
            } else {
                kept.push_back(id);
            }
        }
        inner.order = kept;
        evicted
    }

    /// Number of tracked jobs.
    pub fn len(&self) -> usize {
        self.inner.lock().states.len()
    }

    /// True when no jobs are tracked.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().states.is_empty()
    }
}

/// A worker pool executing jobs and a bounded store of their states.
pub struct JobRunner {
    next_id: AtomicU64,
    store: Arc<JobStore>,
    tx: Sender<(u64, Task)>,
    queue_depth: Gauge,
    per_key_cap: u32,
}

impl std::fmt::Debug for JobRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobRunner")
            .field("jobs", &self.store.len())
            .finish_non_exhaustive()
    }
}

impl JobRunner {
    /// Starts a runner with `workers` threads and the default job bound.
    pub fn new(workers: usize) -> Self {
        Self::with_capacity(workers, DEFAULT_JOB_CAPACITY)
    }

    /// Starts a runner with `workers` threads tracking at most
    /// `capacity` jobs (oldest finished jobs are evicted beyond that).
    pub fn with_capacity(workers: usize, capacity: usize) -> Self {
        let registry = caladrius_obs::global_registry();
        registry.describe(
            "caladrius_jobs_queue_depth",
            "Jobs submitted but not yet picked up by a worker",
        );
        registry.describe(
            "caladrius_job_queue_wait_seconds",
            "Time jobs spent queued before a worker picked them up",
        );
        registry.describe(
            "caladrius_job_duration_seconds",
            "Execution time of jobs once running",
        );
        let runner_id = caladrius_obs::next_scope_id().to_string();
        let labels: &[(&str, &str)] = &[("runner", &runner_id)];
        let queue_depth = registry.gauge("caladrius_jobs_queue_depth", labels);
        let queue_wait = registry.histogram("caladrius_job_queue_wait_seconds", labels);
        let duration = registry.histogram("caladrius_job_duration_seconds", labels);

        let (tx, rx) = unbounded::<(u64, Task)>();
        let store = Arc::new(JobStore::new(capacity));
        for _ in 0..workers.max(1) {
            let rx = rx.clone();
            let store = Arc::clone(&store);
            let queue_depth = queue_depth.clone();
            let queue_wait = queue_wait.clone();
            let duration = duration.clone();
            std::thread::spawn(move || {
                while let Ok((id, task)) = rx.recv() {
                    queue_depth.add(-1.0);
                    if let Some(timing) = store.mark_started(id) {
                        if let Some(wait) = timing.queue_wait_ms() {
                            queue_wait.record(wait.max(0) as f64 / 1000.0);
                        }
                    }
                    let started = Instant::now();
                    let outcome = match task() {
                        Ok(value) => JobState::Done(value),
                        Err(message) => JobState::Failed(message),
                    };
                    duration.record_duration(started.elapsed());
                    store.update(id, outcome);
                }
            });
        }
        Self {
            next_id: AtomicU64::new(1),
            store,
            tx,
            queue_depth,
            per_key_cap: DEFAULT_PER_KEY_IN_FLIGHT,
        }
    }

    /// Sets the per-key in-flight cap enforced by
    /// [`JobRunner::submit_keyed`] (minimum 1).
    pub fn with_per_key_cap(mut self, cap: u32) -> Self {
        self.per_key_cap = cap.max(1);
        self
    }

    /// The per-key in-flight cap enforced by [`JobRunner::submit_keyed`].
    pub fn per_key_cap(&self) -> u32 {
        self.per_key_cap
    }

    /// Unfinished jobs currently counted against a fairness key.
    pub fn in_flight(&self, key: &str) -> u32 {
        self.store.in_flight(key)
    }

    /// [`JobRunner::submit`] counted against fairness key `key`
    /// (topology id): the submission is refused with [`JobRejected`]
    /// when `key` already holds [`JobRunner::per_key_cap`] unfinished
    /// jobs, so one tenant cannot monopolize the worker pool.
    pub fn submit_keyed(
        &self,
        key: &str,
        task: impl FnOnce() -> Result<Value, String> + Send + 'static,
    ) -> Result<u64, JobRejected> {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        self.store.insert_keyed(id, key, self.per_key_cap)?;
        self.queue_depth.add(1.0);
        let request_id = caladrius_obs::current_request_id();
        let task: Task = Box::new(move || {
            let _scope = request_id.map(RequestScope::enter);
            let mut span = caladrius_obs::global_span("api.job");
            span.field("job", id);
            task()
        });
        self.tx
            .send((id, task))
            .expect("workers outlive the runner");
        Ok(id)
    }

    /// Submits a job; returns its id immediately. The submitter's request
    /// id (if any) is re-installed around the job body so spans recorded
    /// by the worker stay attributable to the originating HTTP request.
    pub fn submit(&self, task: impl FnOnce() -> Result<Value, String> + Send + 'static) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        self.store.insert(id, JobState::Pending);
        self.queue_depth.add(1.0);
        let request_id = caladrius_obs::current_request_id();
        let task: Task = Box::new(move || {
            let _scope = request_id.map(RequestScope::enter);
            let mut span = caladrius_obs::global_span("api.job");
            span.field("job", id);
            task()
        });
        self.tx
            .send((id, task))
            .expect("workers outlive the runner");
        id
    }

    /// Polls a job's state.
    pub fn state(&self, id: u64) -> Option<JobState> {
        self.store.get(id)
    }

    /// A job's timing milestones.
    pub fn timing(&self, id: u64) -> Option<JobTiming> {
        self.store.timing(id)
    }

    /// Jobs submitted but not yet picked up by a worker.
    pub fn queue_depth(&self) -> f64 {
        self.queue_depth.get()
    }

    /// Blocks until the job completes (testing convenience).
    pub fn wait(&self, id: u64) -> Option<JobState> {
        loop {
            match self.state(id) {
                Some(JobState::Pending) => std::thread::sleep(std::time::Duration::from_millis(2)),
                other => return other,
            }
        }
    }

    /// Number of tracked jobs.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when no jobs are tracked.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_and_poll() {
        let runner = JobRunner::new(2);
        assert!(runner.is_empty());
        let id = runner.submit(|| Ok(Value::Number(42.0)));
        let state = runner.wait(id).unwrap();
        assert_eq!(state, JobState::Done(Value::Number(42.0)));
        assert_eq!(runner.len(), 1);
    }

    #[test]
    fn failures_captured() {
        let runner = JobRunner::new(1);
        let id = runner.submit(|| Err("boom".into()));
        assert_eq!(runner.wait(id), Some(JobState::Failed("boom".into())));
    }

    #[test]
    fn unknown_job_is_none() {
        let runner = JobRunner::new(1);
        assert_eq!(runner.state(999), None);
        assert_eq!(runner.wait(999), None);
    }

    #[test]
    fn ids_are_unique_and_concurrent_jobs_complete() {
        let runner = Arc::new(JobRunner::new(4));
        let ids: Vec<u64> = (0..20)
            .map(|i| runner.submit(move || Ok(Value::Number(f64::from(i)))))
            .collect();
        let distinct: std::collections::HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(distinct.len(), 20);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(
                runner.wait(*id),
                Some(JobState::Done(Value::Number(i as f64)))
            );
        }
    }

    #[test]
    fn evict_finished_drops_oldest_completed_first() {
        let store = JobStore::new(10);
        store.insert(1, JobState::Done(Value::Null));
        store.insert(2, JobState::Pending);
        store.insert(3, JobState::Failed("x".into()));
        store.insert(4, JobState::Done(Value::Number(4.0)));
        // Shrink to 2 tracked jobs: ids 1 and 3 (oldest finished) go;
        // the pending job survives even though it is older than id 4.
        assert_eq!(store.evict_finished(2), 2);
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(1), None);
        assert_eq!(store.get(3), None);
        assert_eq!(store.get(2), Some(JobState::Pending));
        assert_eq!(store.get(4), Some(JobState::Done(Value::Number(4.0))));
        // Nothing finished is left to evict below the pending floor.
        assert_eq!(store.evict_finished(0), 1);
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(2), Some(JobState::Pending));
    }

    #[test]
    fn update_after_eviction_is_dropped() {
        let store = JobStore::new(10);
        store.insert(1, JobState::Done(Value::Null));
        store.evict_finished(0);
        store.update(1, JobState::Failed("late".into()));
        assert_eq!(store.get(1), None);
        assert!(store.is_empty());
    }

    #[test]
    fn runner_capacity_bounds_tracked_jobs() {
        let runner = JobRunner::with_capacity(1, 3);
        let ids: Vec<u64> = (0..3)
            .map(|i| runner.submit(move || Ok(Value::Number(f64::from(i)))))
            .collect();
        for id in &ids {
            runner.wait(*id);
        }
        assert_eq!(runner.len(), 3);
        // A fourth submission evicts the oldest completed job.
        let newest = runner.submit(|| Ok(Value::Null));
        assert_eq!(runner.len(), 3);
        assert_eq!(runner.state(ids[0]), None, "oldest completed evicted");
        assert!(runner.state(ids[1]).is_some());
        assert!(runner.wait(newest).is_some());
    }

    #[test]
    fn timing_milestones_progress_with_lifecycle() {
        let runner = JobRunner::new(1);
        let id = runner.submit(|| {
            std::thread::sleep(std::time::Duration::from_millis(10));
            Ok(Value::Null)
        });
        let queued = runner.timing(id).expect("tracked");
        assert!(queued.queued_unix_ms > 0);
        runner.wait(id);
        let done = runner.timing(id).expect("tracked");
        assert!(done.started_unix_ms.is_some(), "started stamped");
        assert!(done.finished_unix_ms.is_some(), "finished stamped");
        assert!(done.queue_wait_ms().unwrap() >= 0);
        assert!(done.duration_ms().unwrap() >= 0);
        assert!(done.finished_unix_ms.unwrap() >= done.started_unix_ms.unwrap());
    }

    /// Two-tenant fairness regression: tenant `a` saturating its per-key
    /// cap must not block tenant `b`, and finishing releases the slots.
    #[test]
    fn per_key_caps_prevent_tenant_monopoly() {
        let runner = JobRunner::new(1).with_per_key_cap(2);
        assert_eq!(runner.per_key_cap(), 2);
        // Occupy the single worker so keyed jobs stay in flight until we
        // release the gate.
        let (gate_tx, gate_rx) = crossbeam::channel::unbounded::<()>();
        let blocker = runner.submit(move || {
            gate_rx.recv().ok();
            Ok(Value::Null)
        });
        let a1 = runner.submit_keyed("tenant-a", || Ok(Value::Null)).unwrap();
        let a2 = runner.submit_keyed("tenant-a", || Ok(Value::Null)).unwrap();
        assert_eq!(runner.in_flight("tenant-a"), 2);
        // Tenant a is at its cap: the third submission is refused...
        let rejected = runner
            .submit_keyed("tenant-a", || Ok(Value::Null))
            .unwrap_err();
        assert_eq!(rejected.key, "tenant-a");
        assert_eq!((rejected.in_flight, rejected.cap), (2, 2));
        // ...while tenant b is admitted despite a's backlog.
        let b1 = runner.submit_keyed("tenant-b", || Ok(Value::Null)).unwrap();
        assert_eq!(runner.in_flight("tenant-b"), 1);
        gate_tx.send(()).unwrap();
        for id in [blocker, a1, a2, b1] {
            assert_eq!(runner.wait(id), Some(JobState::Done(Value::Null)));
        }
        // Terminal states release the fairness slots.
        assert_eq!(runner.in_flight("tenant-a"), 0);
        assert_eq!(runner.in_flight("tenant-b"), 0);
        runner
            .submit_keyed("tenant-a", || Ok(Value::Null))
            .expect("slots released after completion");
    }

    #[test]
    fn queue_depth_drains_to_zero() {
        let runner = JobRunner::new(2);
        let ids: Vec<u64> = (0..5).map(|_| runner.submit(|| Ok(Value::Null))).collect();
        for id in ids {
            runner.wait(id);
        }
        // Every submitted job has been picked up, so the gauge is back to 0.
        assert_eq!(runner.queue_depth(), 0.0);
    }

    #[test]
    fn pending_visible_while_running() {
        let runner = JobRunner::new(1);
        let blocker = runner.submit(|| {
            std::thread::sleep(std::time::Duration::from_millis(50));
            Ok(Value::Null)
        });
        let queued = runner.submit(|| Ok(Value::Null));
        assert_eq!(runner.state(queued), Some(JobState::Pending));
        runner.wait(blocker);
        runner.wait(queued);
    }
}
