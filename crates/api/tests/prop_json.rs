//! Property tests: JSON round-trips for arbitrary values, HTTP target
//! parsing, and percent-decoding safety.

use caladrius_api::http::{parse_target, percent_decode};
use caladrius_api::json::{self, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_json() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        // Finite numbers only: JSON cannot represent NaN/Inf.
        (-1e15f64..1e15).prop_map(Value::Number),
        ".*".prop_map(Value::String),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..8).prop_map(Value::Array),
            prop::collection::btree_map(".*", inner, 0..8)
                .prop_map(|m| Value::Object(m.into_iter().collect::<BTreeMap<_, _>>())),
        ]
    })
}

proptest! {
    /// serialize → parse is the identity for every representable value.
    #[test]
    fn json_roundtrip(value in arb_json()) {
        let text = value.to_json();
        let parsed = json::parse(&text).unwrap();
        prop_assert_eq!(parsed, value);
    }

    /// The serializer never emits invalid JSON (parse always succeeds),
    /// and double round-trips are stable.
    #[test]
    fn json_double_roundtrip_stable(value in arb_json()) {
        let once = json::parse(&value.to_json()).unwrap().to_json();
        let twice = json::parse(&once).unwrap().to_json();
        prop_assert_eq!(once, twice);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn json_parser_never_panics(text in ".{0,200}") {
        let _ = json::parse(&text);
    }

    /// percent_decode never panics and is the identity on unreserved
    /// ASCII.
    #[test]
    fn percent_decode_total(text in ".{0,100}") {
        let _ = percent_decode(&text);
    }

    #[test]
    fn percent_decode_identity_on_unreserved(text in "[a-zA-Z0-9._~/-]{0,50}") {
        prop_assert_eq!(percent_decode(&text), text);
    }

    /// Target parsing splits path and query consistently.
    #[test]
    fn parse_target_reassembles(
        path in "/[a-z0-9/]{0,30}",
        key in "[a-z]{1,8}",
        value in "[a-z0-9]{0,8}",
    ) {
        let target = format!("{path}?{key}={value}");
        let (parsed_path, query) = parse_target(&target);
        prop_assert_eq!(parsed_path, path);
        prop_assert_eq!(query.get(&key).map(String::as_str), Some(value.as_str()));
    }
}
