//! Cluster-level container-budget allocation.
//!
//! Each topology's *unconstrained* plan timeline yields a per-window
//! container demand `d_w` (the containers its cheapest feasible plan
//! needs in window `w`). The cluster has `B` containers to split across
//! competing topologies for the horizon. Granting `c` containers to a
//! topology with demand curve `d` earns utility
//!
//! ```text
//! u(c) = Σ_w min(c, d_w) / d_w        (over windows with d_w > 0)
//! ```
//!
//! — the fraction of each window's demand that is served, summed over
//! windows. The complementary *backpressure risk* is the mean unserved
//! fraction, `mean_w max(0, 1 − c/d_w)`: a granted budget below demand
//! forces the constrained re-plan to run fewer containers than the
//! models say the window needs, leaving the topology at risk of
//! backpressure in proportion to the shortfall.
//!
//! `u` is concave and non-decreasing in `c` (the marginal gain of the
//! `c`-th container is `Σ_w [d_w ≥ c]/d_w`, non-increasing in `c`), so
//! greedy-by-marginal-gain is *exact*: it matches the DP optimum, and
//! with a deterministic tie-break the greedy sequence for budget `B` is
//! a prefix of the sequence for `B+1`, which makes per-topology grants
//! — and therefore risks — monotone in the budget. Both properties are
//! enforced by tests against [`allocate_exact_dp`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One topology's per-window container demand, read off its
/// unconstrained plan timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyDemand {
    /// Topology id.
    pub topology: String,
    /// Containers demanded per horizon window (`PlanCost::containers`).
    pub per_window_containers: Vec<u32>,
}

impl TopologyDemand {
    /// Peak demand across the horizon (0 for an empty curve).
    pub fn peak(&self) -> u32 {
        self.per_window_containers
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }
}

/// One topology's share of the cluster budget.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetGrant {
    /// Topology id.
    pub topology: String,
    /// Containers granted for the horizon.
    pub containers: u32,
    /// Residual backpressure risk under the grant (see [`risk`]).
    pub risk: f64,
}

/// Outcome of a fleet allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Per-topology grants, in input order.
    pub grants: Vec<BudgetGrant>,
    /// Containers handed out (`≤ budget`; surplus beyond every
    /// topology's peak demand is left unallocated).
    pub total_granted: u32,
    /// The cluster budget the allocation ran under.
    pub budget: u32,
}

impl Allocation {
    /// Total utility of the allocation (for optimality comparisons).
    pub fn total_utility(&self, demands: &[TopologyDemand]) -> f64 {
        self.grants
            .iter()
            .zip(demands)
            .map(|(g, d)| utility(&d.per_window_containers, g.containers))
            .sum()
    }
}

/// Served-demand utility of granting `containers` against `demand`
/// (see the module docs). Zero-demand windows contribute nothing.
pub fn utility(demand: &[u32], containers: u32) -> f64 {
    demand
        .iter()
        .filter(|d| **d > 0)
        .map(|d| f64::from((*d).min(containers)) / f64::from(*d))
        .sum()
}

/// Mean unserved-demand fraction across demand windows: `0.0` when the
/// grant covers every window (or the curve has no demand), approaching
/// `1.0` as the grant starves the horizon.
pub fn risk(demand: &[u32], containers: u32) -> f64 {
    let windows: Vec<&u32> = demand.iter().filter(|d| **d > 0).collect();
    if windows.is_empty() {
        return 0.0;
    }
    windows
        .iter()
        .map(|d| (1.0 - f64::from(containers) / f64::from(**d)).max(0.0))
        .sum::<f64>()
        / windows.len() as f64
}

/// Marginal utility of the `c`-th container (`c ≥ 1`): the summed
/// per-window gain `Σ_w [d_w ≥ c] / d_w`.
fn marginal_gain(demand: &[u32], c: u32) -> f64 {
    demand
        .iter()
        .filter(|d| **d >= c)
        .map(|d| 1.0 / f64::from(*d))
        .sum()
}

/// Greedy allocation by marginal-gain-per-container. Exact for this
/// concave utility (see module docs); `O((B + n) log n)`.
///
/// Tie-break: equal gains go first to the topology granted the *least*
/// so far, then by topology-id hash, then by input index. The
/// least-granted rule spreads a tight budget across symmetric tenants
/// instead of packing the whole grant into whichever happened to sort
/// first (the starvation caveat the EXPERIMENTS.md fleet runs recorded);
/// the hash breaks the remaining symmetry without systematically
/// favouring low indices. The pop sequence never consults the budget,
/// so the allocation stays deterministic and budget-monotone: a larger
/// budget replays the same grant sequence and then keeps going.
pub fn allocate_greedy(demands: &[TopologyDemand], budget: u32) -> Allocation {
    let mut granted = vec![0u32; demands.len()];
    // Max-heap of (gain, least-granted, id hash, index) — f64 gains are
    // finite here, so compare via total_cmp through a bit-exact ordered
    // wrapper. `Reverse(next)` is the grant this entry would bring the
    // topology to, so among equal gains the smallest next grant wins.
    #[derive(PartialEq)]
    struct Gain(f64);
    impl Eq for Gain {}
    impl PartialOrd for Gain {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Gain {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0)
        }
    }
    type Entry = (Gain, Reverse<u32>, Reverse<u64>, Reverse<usize>);
    let entry = |i: usize, next: u32| -> Entry {
        (
            Gain(marginal_gain(&demands[i].per_window_containers, next)),
            Reverse(next),
            Reverse(crate::hash::fnv1a64(demands[i].topology.as_bytes())),
            Reverse(i),
        )
    };
    let mut heap: BinaryHeap<Entry> = demands
        .iter()
        .enumerate()
        .filter(|(_, d)| d.peak() > 0)
        .map(|(i, _)| entry(i, 1))
        .collect();
    let mut remaining = budget;
    while remaining > 0 {
        let Some((Gain(gain), _, _, Reverse(i))) = heap.pop() else {
            break;
        };
        if gain <= 0.0 {
            break;
        }
        granted[i] += 1;
        remaining -= 1;
        let next = granted[i] + 1;
        if next <= demands[i].peak() {
            heap.push(entry(i, next));
        }
    }
    finish(demands, granted, budget)
}

/// Exact allocation by dynamic programming over (topology prefix,
/// budget) — `O(n · B · max_peak)` time, small-case oracle for tests.
pub fn allocate_exact_dp(demands: &[TopologyDemand], budget: u32) -> Allocation {
    let b = budget as usize;
    // best[j] = max utility using exactly the prefix of topologies
    // processed so far and at most j containers.
    let mut best = vec![0.0f64; b + 1];
    let mut choice: Vec<Vec<u32>> = Vec::with_capacity(demands.len());
    for demand in demands {
        let cap = demand.peak().min(budget);
        let mut next = vec![f64::NEG_INFINITY; b + 1];
        let mut pick = vec![0u32; b + 1];
        for j in 0..=b {
            for c in 0..=cap.min(j as u32) {
                let value = best[j - c as usize] + utility(&demand.per_window_containers, c);
                // Strict improvement keeps the smallest grant on ties,
                // mirroring the greedy tie-break.
                if value > next[j] + 1e-12 {
                    next[j] = value;
                    pick[j] = c;
                }
            }
        }
        best = next;
        choice.push(pick);
    }
    // Walk back the choices from the full budget.
    let mut granted = vec![0u32; demands.len()];
    let mut j = b;
    for i in (0..demands.len()).rev() {
        granted[i] = choice[i][j];
        j -= granted[i] as usize;
    }
    finish(demands, granted, budget)
}

fn finish(demands: &[TopologyDemand], granted: Vec<u32>, budget: u32) -> Allocation {
    let total_granted = granted.iter().sum();
    let grants = demands
        .iter()
        .zip(&granted)
        .map(|(d, c)| BudgetGrant {
            topology: d.topology.clone(),
            containers: *c,
            risk: risk(&d.per_window_containers, *c),
        })
        .collect();
    Allocation {
        grants,
        total_granted,
        budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn demand(name: &str, curve: &[u32]) -> TopologyDemand {
        TopologyDemand {
            topology: name.to_string(),
            per_window_containers: curve.to_vec(),
        }
    }

    #[test]
    fn utility_and_risk_bounds() {
        let d = [4u32, 2, 0, 8];
        assert_eq!(utility(&d, 0), 0.0);
        assert!((utility(&d, 8) - 3.0).abs() < 1e-12, "fully served");
        assert_eq!(risk(&d, 8), 0.0);
        assert_eq!(risk(&d, 0), 1.0);
        // Grant 2: window demands 4, 2, 8 → unserved 1/2, 0, 3/4.
        assert!((risk(&d, 2) - (0.5 + 0.0 + 0.75) / 3.0).abs() < 1e-12);
        // Zero-demand curve carries no risk.
        assert_eq!(risk(&[0, 0], 0), 0.0);
    }

    #[test]
    fn greedy_prefers_cheap_demand_first() {
        // "small" serves a whole window per container; "big" needs 10
        // containers for the same credit. With budget 3 the small
        // topology is fully served first.
        let demands = vec![demand("small", &[1, 1]), demand("big", &[10, 10])];
        let a = allocate_greedy(&demands, 3);
        assert_eq!(a.grants[0].containers, 1);
        assert_eq!(a.grants[1].containers, 2);
        assert_eq!(a.total_granted, 3);
        assert_eq!(a.grants[0].risk, 0.0);
        assert!(a.grants[1].risk > 0.0);
    }

    #[test]
    fn surplus_budget_is_left_unallocated() {
        let demands = vec![demand("a", &[2, 3]), demand("b", &[1])];
        let a = allocate_greedy(&demands, 100);
        assert_eq!(a.grants[0].containers, 3, "capped at peak demand");
        assert_eq!(a.grants[1].containers, 1);
        assert_eq!(a.total_granted, 4);
        assert!(a.grants.iter().all(|g| g.risk == 0.0));
    }

    #[test]
    fn grants_never_exceed_budget() {
        let demands = vec![demand("a", &[5, 5]), demand("b", &[5, 5])];
        for budget in 0..12 {
            let a = allocate_greedy(&demands, budget);
            assert!(a.total_granted <= budget);
            let dp = allocate_exact_dp(&demands, budget);
            assert!(dp.total_granted <= budget);
        }
    }

    #[test]
    fn symmetric_demands_share_a_tight_budget() {
        // Four identical tenants wanting 3 containers each, budget for
        // half the total demand. The old lowest-index tie-break packed
        // grants as {3, 3, 0, 0}, systematically starving the tail;
        // least-granted-first must hand every tenant its first container
        // before anyone gets a second.
        let demands: Vec<TopologyDemand> = (0..4)
            .map(|i| demand(&format!("tenant-{i}"), &[3, 3, 3]))
            .collect();
        let a = allocate_greedy(&demands, 6);
        assert_eq!(a.total_granted, 6);
        let grants: Vec<u32> = a.grants.iter().map(|g| g.containers).collect();
        assert!(
            grants.iter().all(|&c| (1..=2).contains(&c)),
            "tight budget must spread over symmetric tenants: {grants:?}"
        );
        // Deterministic: the same inputs always split the same way.
        assert_eq!(
            grants,
            allocate_greedy(&demands, 6)
                .grants
                .iter()
                .map(|g| g.containers)
                .collect::<Vec<u32>>()
        );
        // With budget for everyone, nobody is capped by the tie-break.
        let full = allocate_greedy(&demands, 12);
        assert!(full.grants.iter().all(|g| g.containers == 3));
    }

    #[test]
    fn dp_matches_greedy_on_a_worked_example() {
        let demands = vec![
            demand("a", &[4, 2, 1]),
            demand("b", &[3, 3, 3]),
            demand("c", &[0, 6, 2]),
        ];
        for budget in [0, 1, 3, 5, 8, 13] {
            let g = allocate_greedy(&demands, budget);
            let e = allocate_exact_dp(&demands, budget);
            assert!(
                (g.total_utility(&demands) - e.total_utility(&demands)).abs() < 1e-9,
                "budget {budget}: greedy {:?} vs dp {:?}",
                g.grants,
                e.grants
            );
        }
    }

    proptest! {
        /// Satellite: greedy is within (numerically: equal to) the exact
        /// DP optimum on randomized small fleets.
        #[test]
        fn greedy_matches_dp_utility(
            curves in prop::collection::vec(
                prop::collection::vec(0u32..10, 1..6), 1..8),
            budget in 0u32..32,
        ) {
            let demands: Vec<TopologyDemand> = curves
                .iter()
                .enumerate()
                .map(|(i, c)| demand(&format!("t{i}"), c))
                .collect();
            let g = allocate_greedy(&demands, budget);
            let e = allocate_exact_dp(&demands, budget);
            prop_assert!(
                (g.total_utility(&demands) - e.total_utility(&demands)).abs() < 1e-9,
                "greedy {:?} vs dp {:?}", g.grants, e.grants
            );
            prop_assert!(g.total_granted <= budget);
        }

        /// Satellite: more budget never increases any topology's risk
        /// (per-topology grants are monotone in the budget).
        #[test]
        fn budget_monotonicity(
            curves in prop::collection::vec(
                prop::collection::vec(0u32..10, 1..6), 1..8),
            budget in 0u32..31,
        ) {
            let demands: Vec<TopologyDemand> = curves
                .iter()
                .enumerate()
                .map(|(i, c)| demand(&format!("t{i}"), c))
                .collect();
            let lo = allocate_greedy(&demands, budget);
            let hi = allocate_greedy(&demands, budget + 1);
            for (l, h) in lo.grants.iter().zip(&hi.grants) {
                prop_assert!(
                    h.containers >= l.containers,
                    "grants shrank with more budget: {:?} -> {:?}", l, h
                );
                prop_assert!(
                    h.risk <= l.risk + 1e-12,
                    "risk rose with more budget: {:?} -> {:?}", l, h
                );
            }
        }
    }
}
