//! Shard-local provider seams: a multi-topology metrics provider and a
//! mutable topology tracker.
//!
//! A fleet shard hosts many topologies behind one `Caladrius` instance.
//! Two properties matter:
//!
//! * **Watermark isolation** — the service's model cache is keyed by
//!   each topology's data watermark, so every topology gets its *own*
//!   [`SimMetrics`] store (own `MetricsDb`, own watermark). One tenant's
//!   ingest must not invalidate a shard-mate's cached models.
//! * **Online registration** — topologies arrive while the service is
//!   running, so both seams are interior-mutable behind `RwLock`s.

use caladrius_core::error::{CoreError, Result};
use caladrius_core::providers::metrics::MetricsProvider;
use caladrius_core::providers::tracker::{to_logical_spec, TopologyTracker};
use caladrius_graph::topology_graph::LogicalSpec;
use caladrius_tsdb::{IngestStats, Sample, SeriesKey, TagFilter};
use heron_sim::metrics::SimMetrics;
use heron_sim::topology::Topology;
use parking_lot::RwLock;
use std::collections::HashMap;

/// Per-shard metrics provider: one [`SimMetrics`] store per hosted
/// topology, registered online and looked up by topology id.
#[derive(Debug, Default)]
pub struct ShardMetricsProvider {
    topologies: RwLock<HashMap<String, SimMetrics>>,
}

impl ShardMetricsProvider {
    /// An empty provider.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a topology's metrics store.
    pub fn register(&self, metrics: SimMetrics) {
        self.topologies
            .write()
            .insert(metrics.topology().to_string(), metrics);
    }

    /// The metrics store of a hosted topology.
    pub fn metrics(&self, topology: &str) -> Option<SimMetrics> {
        self.topologies.read().get(topology).cloned()
    }

    /// Number of hosted topologies.
    pub fn len(&self) -> usize {
        self.topologies.read().len()
    }

    /// True when no topology is hosted.
    pub fn is_empty(&self) -> bool {
        self.topologies.read().is_empty()
    }

    fn lookup(&self, topology: &str) -> Result<SimMetrics> {
        self.metrics(topology)
            .ok_or_else(|| CoreError::Unknown(format!("topology {topology:?}")))
    }
}

impl MetricsProvider for ShardMetricsProvider {
    fn component_series(
        &self,
        topology: &str,
        component: &str,
        metric_name: &str,
        from: i64,
        to: i64,
    ) -> Result<Vec<Sample>> {
        Ok(self
            .lookup(topology)?
            .component_sum(metric_name, Some(component), from, to))
    }

    fn per_instance_series(
        &self,
        topology: &str,
        component: &str,
        metric_name: &str,
        from: i64,
        to: i64,
    ) -> Result<Vec<(u32, Vec<Sample>)>> {
        Ok(self
            .lookup(topology)?
            .per_instance(metric_name, component, from, to))
    }

    fn component_series_since(
        &self,
        topology: &str,
        component: &str,
        metric_name: &str,
        since: i64,
        to: i64,
    ) -> Result<Vec<Sample>> {
        Ok(self
            .lookup(topology)?
            .component_sum_since(metric_name, Some(component), since, to))
    }

    fn per_instance_series_since(
        &self,
        topology: &str,
        component: &str,
        metric_name: &str,
        since: i64,
        to: i64,
    ) -> Result<Vec<(u32, Vec<Sample>)>> {
        Ok(self
            .lookup(topology)?
            .per_instance_since(metric_name, component, since, to))
    }

    fn latest_minute(&self, topology: &str) -> Option<i64> {
        self.metrics(topology)?.db().watermark()
    }

    fn truncation_generation(&self) -> Option<u64> {
        // Sum over hosted stores: monotone, and any tenant's truncation
        // bumps it. Coarser than per-topology tracking (one tenant's
        // retention pass forces shard-mates to refit once), but safe.
        let topologies = self.topologies.read();
        Some(
            topologies
                .values()
                .map(|m| m.db().truncation_generation())
                .sum(),
        )
    }

    fn ingest_stats(&self) -> Option<IngestStats> {
        // Shard-wide view: sum over every hosted topology's store.
        let topologies = self.topologies.read();
        let mut total = IngestStats::default();
        for metrics in topologies.values() {
            let stats = metrics.db().ingest_stats();
            total.batches += stats.batches;
            total.samples += stats.samples;
        }
        Some(total)
    }

    fn tail_cache_stats(&self) -> Option<caladrius_tsdb::TailCacheStats> {
        // Shard-wide view: sum over every hosted topology's store.
        let topologies = self.topologies.read();
        let mut total = caladrius_tsdb::TailCacheStats::default();
        for metrics in topologies.values() {
            let stats = metrics.db().tail_cache_stats();
            total.hits += stats.hits;
            total.misses += stats.misses;
        }
        Some(total)
    }

    fn select_series(
        &self,
        topology: &str,
        metric_name: &str,
        filters: &[TagFilter],
        from: i64,
        to: i64,
    ) -> Result<Vec<(SeriesKey, Vec<Sample>)>> {
        let metrics = self.lookup(topology)?;
        let mut scoped = vec![TagFilter::eq(heron_sim::metrics::tag::TOPOLOGY, topology)];
        scoped.extend_from_slice(filters);
        Ok(metrics.db().select(metric_name, &scoped, from, to)?)
    }
}

/// Mutable tracker for a shard's hosted topologies: like
/// `StaticTracker`, but registrations land while the service runs, and
/// re-registration bumps the version (invalidating graph and model
/// caches downstream).
#[derive(Debug, Default)]
pub struct FleetTracker {
    topologies: RwLock<HashMap<String, (Topology, u64)>>,
}

impl FleetTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a topology at version 1 (or bumps the version when the
    /// name is already present).
    pub fn insert(&self, topology: Topology) {
        let mut topologies = self.topologies.write();
        let version = topologies
            .get(&topology.name)
            .map(|(_, v)| v + 1)
            .unwrap_or(1);
        topologies.insert(topology.name.clone(), (topology, version));
    }

    /// Number of hosted topologies.
    pub fn len(&self) -> usize {
        self.topologies.read().len()
    }

    /// True when no topology is hosted.
    pub fn is_empty(&self) -> bool {
        self.topologies.read().is_empty()
    }
}

impl TopologyTracker for FleetTracker {
    fn logical_spec(&self, topology: &str) -> Result<LogicalSpec> {
        self.topologies
            .read()
            .get(topology)
            .map(|(t, _)| to_logical_spec(t))
            .ok_or_else(|| CoreError::Unknown(format!("topology {topology:?}")))
    }

    fn last_updated(&self, topology: &str) -> Result<u64> {
        self.topologies
            .read()
            .get(topology)
            .map(|(_, v)| *v)
            .ok_or_else(|| CoreError::Unknown(format!("topology {topology:?}")))
    }

    fn topologies(&self) -> Vec<String> {
        let mut names: Vec<String> = self.topologies.read().keys().cloned().collect();
        names.sort();
        names
    }
}
