//! The sharded fleet: N independent `Caladrius` instances behind one
//! front door, plus the cluster-level container-budget planner.
//!
//! Topologies are pinned to shards by rendezvous hashing on the
//! topology id ([`crate::hash::assign_shard`]), so growing the fleet
//! only migrates topologies onto the new shard and every surviving
//! shard keeps its tsdb contents and warm model caches. Each shard runs
//! its own [`Caladrius`] over shard-local provider seams
//! ([`crate::provider`]) with a `shard="<index>"` label on its obs
//! series, which keeps per-shard cache and plan behaviour separable in
//! one `/metrics` exposition.
//!
//! [`Fleet::plan_fleet`] is the cluster planner: it runs every
//! topology's *unconstrained* capacity plan in parallel, reads the
//! per-window container demand off the timelines, splits the cluster
//! container budget with the exact greedy allocator
//! ([`crate::allocator`]), and re-plans only the topologies whose grant
//! binds — handing the grant to the planner as
//! `ResourceLimits::max_containers`.

use crate::allocator::{allocate_greedy, risk, Allocation, TopologyDemand};
use crate::hash::assign_shard;
use crate::provider::{FleetTracker, ShardMetricsProvider};
use caladrius_core::capacity::{CapacityPlanRequest, PlanCacheLookup};
use caladrius_core::config::CaladriusConfig;
use caladrius_core::providers::metrics::MetricsProvider;
use caladrius_core::providers::tracker::TopologyTracker;
use caladrius_core::{Caladrius, CoreError, ModelCacheStats, PlanCacheStats, Result};
use caladrius_obs::{Counter, ParentSpanScope, RequestScope};
use caladrius_planner::{PlanTimeline, UNLIMITED_CONTAINERS};
use caladrius_tsdb::{IngestStats, MetricBatch};
use heron_sim::metrics::SimMetrics;
use heron_sim::topology::Topology;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Fleet-tier configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of shards (each a full `Caladrius` instance). Must be at
    /// least 1.
    pub shards: usize,
    /// Cluster-wide container budget split across topologies by
    /// [`Fleet::plan_fleet`]. [`UNLIMITED_CONTAINERS`] disables the
    /// allocator (every topology keeps its unconstrained plan).
    pub cluster_container_budget: u32,
    /// Per-shard service configuration.
    pub caladrius: CaladriusConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            cluster_container_budget: UNLIMITED_CONTAINERS,
            caladrius: CaladriusConfig::default(),
        }
    }
}

/// One shard: a `Caladrius` instance plus its shard-local seams and
/// ingest counters.
#[derive(Debug)]
pub struct Shard {
    index: usize,
    service: Caladrius,
    provider: Arc<ShardMetricsProvider>,
    tracker: Arc<FleetTracker>,
    ingest_batches: Counter,
    ingest_samples: Counter,
}

impl Shard {
    fn new(index: usize, fleet_id: &str, config: &CaladriusConfig) -> Shard {
        let provider = Arc::new(ShardMetricsProvider::new());
        let tracker = Arc::new(FleetTracker::new());
        let label = index.to_string();
        let service = Caladrius::with_config_labelled(
            Arc::clone(&provider) as Arc<dyn MetricsProvider>,
            Arc::clone(&tracker) as Arc<dyn TopologyTracker>,
            config.clone(),
            &[("shard", &label)],
        );
        let registry = caladrius_obs::global_registry();
        registry.describe(
            "caladrius_fleet_ingest_batches_total",
            "Metric batches routed to a shard by the fleet tier",
        );
        registry.describe(
            "caladrius_fleet_ingest_samples_total",
            "Metric samples routed to a shard by the fleet tier",
        );
        // The fleet id keeps co-resident fleets (tests, blue/green
        // deployments) from sharing counter series, mirroring the
        // per-instance `service` label on `Caladrius`' own metrics.
        let labels = [("fleet", fleet_id), ("shard", &label)];
        Shard {
            index,
            service,
            ingest_batches: registry.counter("caladrius_fleet_ingest_batches_total", &labels),
            ingest_samples: registry.counter("caladrius_fleet_ingest_samples_total", &labels),
            provider,
            tracker,
        }
    }

    /// Shard index (0-based).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The shard's service instance.
    pub fn service(&self) -> &Caladrius {
        &self.service
    }

    /// Number of topologies hosted by this shard.
    pub fn topologies(&self) -> usize {
        self.provider.len()
    }
}

/// One topology's slice of a fleet plan.
#[derive(Debug, Clone)]
pub struct TopologyPlanOutcome {
    /// Topology id.
    pub topology: String,
    /// Hosting shard.
    pub shard: usize,
    /// Per-window container demand of the unconstrained plan.
    pub demand: Vec<u32>,
    /// Containers granted by the cluster allocator.
    pub granted_containers: u32,
    /// Residual backpressure risk under the grant.
    pub risk: f64,
    /// The plan honoured by the grant: the unconstrained timeline when
    /// the grant covers peak demand, otherwise the constrained re-plan.
    /// `None` when planning failed (see `error`).
    pub timeline: Option<PlanTimeline>,
    /// Why no timeline was produced, when planning failed.
    pub error: Option<String>,
}

/// The cluster plan: per-topology grants and timelines under one
/// container budget.
#[derive(Debug, Clone)]
pub struct FleetPlan {
    /// Budget the allocation ran under.
    pub budget: u32,
    /// Containers handed out across the fleet (`≤ budget`).
    pub total_granted: u32,
    /// Topologies whose unconstrained plan was served verbatim from the
    /// shard plan caches (nothing changed since the previous replan —
    /// these never touched the plan pool).
    pub unchanged: usize,
    /// Topologies whose data moved since their last plan: re-planned,
    /// warm-started from the stale cached timeline.
    pub drifted: usize,
    /// Topologies never planned before (no cache entry): planned cold.
    pub cold: usize,
    /// Per-topology outcomes, sorted by topology id.
    pub outcomes: Vec<TopologyPlanOutcome>,
}

impl FleetPlan {
    /// Number of topologies whose plan failed.
    pub fn errors(&self) -> usize {
        self.outcomes.iter().filter(|o| o.error.is_some()).count()
    }
}

/// Health snapshot of one shard.
#[derive(Debug, Clone)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: usize,
    /// Topologies hosted.
    pub topologies: usize,
    /// Model-cache counters of the shard's service.
    pub model_cache: ModelCacheStats,
    /// Plan-cache counters of the shard's service.
    pub plan_cache: PlanCacheStats,
    /// tsdb ingest totals across the shard's topologies.
    pub ingest: IngestStats,
    /// Decoded-tail cache totals across the shard's topologies.
    pub tail_cache: caladrius_tsdb::TailCacheStats,
    /// Batches the fleet tier routed to this shard.
    pub routed_batches: u64,
}

/// Health snapshot of the whole fleet.
#[derive(Debug, Clone)]
pub struct FleetHealth {
    /// Total topologies across shards.
    pub topologies: usize,
    /// Per-shard snapshots, in shard order.
    pub shards: Vec<ShardHealth>,
}

/// The sharded fleet service.
#[derive(Debug)]
pub struct Fleet {
    config: FleetConfig,
    shards: Vec<Shard>,
    /// topology id → (shard index, that topology's metrics store).
    assignments: RwLock<HashMap<String, (usize, SimMetrics)>>,
}

impl Fleet {
    /// Builds a fleet of `config.shards` empty shards.
    pub fn new(config: FleetConfig) -> Fleet {
        assert!(config.shards > 0, "a fleet needs at least one shard");
        let fleet_id = caladrius_obs::next_scope_id().to_string();
        let shards = (0..config.shards)
            .map(|index| Shard::new(index, &fleet_id, &config.caladrius))
            .collect();
        Fleet {
            config,
            shards,
            assignments: RwLock::new(HashMap::new()),
        }
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The shards, in index order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Number of registered topologies.
    pub fn len(&self) -> usize {
        self.assignments.read().len()
    }

    /// True when no topology is registered.
    pub fn is_empty(&self) -> bool {
        self.assignments.read().is_empty()
    }

    /// All registered topology ids, sorted.
    pub fn topologies(&self) -> Vec<String> {
        let mut names: Vec<String> = self.assignments.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// The shard hosting `topology`, if registered.
    pub fn shard_of(&self, topology: &str) -> Option<usize> {
        self.assignments.read().get(topology).map(|(s, _)| *s)
    }

    /// Registers a topology: pins it to its rendezvous shard, creates
    /// its own metrics store there, and records it with the shard's
    /// tracker. Re-registering bumps the tracker version (invalidating
    /// cached models) but keeps the existing metrics store.
    pub fn register(&self, topology: Topology) -> SimMetrics {
        let name = topology.name.clone();
        let index = assign_shard(&name, self.shards.len());
        let shard = &self.shards[index];
        let metrics = shard.provider.metrics(&name).unwrap_or_else(|| {
            let metrics = SimMetrics::new(&name);
            shard.provider.register(metrics.clone());
            metrics
        });
        shard.tracker.insert(topology);
        self.assignments
            .write()
            .insert(name, (index, metrics.clone()));
        metrics
    }

    /// Routes a metric batch to the owning shard's store for
    /// `topology`. Errors when the topology is not registered.
    ///
    /// When a request id is installed (the HTTP ingest path), the hop is
    /// recorded as a `fleet.ingest` span so `/trace/recent` shows which
    /// shard the batch landed on; bulk feeding outside a request stays
    /// span-free so it cannot flush the trace ring.
    pub fn ingest(&self, topology: &str, batch: &MetricBatch) -> Result<()> {
        let mut span =
            caladrius_obs::current_request_id().map(|_| caladrius_obs::global_span("fleet.ingest"));
        let (index, metrics) = self
            .assignments
            .read()
            .get(topology)
            .cloned()
            .ok_or_else(|| CoreError::Unknown(format!("topology {topology:?}")))?;
        metrics.ingest(batch);
        let shard = &self.shards[index];
        shard.ingest_batches.inc();
        shard.ingest_samples.add(batch.len() as u64);
        if let Some(span) = span.as_mut() {
            span.field("topology", topology)
                .field("shard", index)
                .field("samples", batch.len());
        }
        Ok(())
    }

    /// Plans capacity for one topology on its owning shard (the
    /// single-tenant path, budget-unaware).
    pub fn plan_topology(
        &self,
        topology: &str,
        request: &CapacityPlanRequest,
    ) -> Result<PlanTimeline> {
        let index = self
            .shard_of(topology)
            .ok_or_else(|| CoreError::Unknown(format!("topology {topology:?}")))?;
        self.shards[index].service.plan_capacity(topology, request)
    }

    /// The cluster planner: unconstrained plans for every topology in
    /// parallel, budget split by the greedy allocator, constrained
    /// re-plans where the grant binds. `budget` overrides the
    /// configured cluster budget when given.
    pub fn plan_fleet(&self, request: &CapacityPlanRequest, budget: Option<u32>) -> FleetPlan {
        let budget = budget.unwrap_or(self.config.cluster_container_budget);
        let names = self.topologies();
        let pool = caladrius_exec::shared_pool("fleet-plan");

        // The cluster plan is one `fleet.plan` span; its id and the
        // caller's request id cross into the pool workers so every
        // per-topology `fleet.shard.plan` span — and the `core.plan`
        // spans beneath them — reconstructs as one tree under the
        // originating request in `/trace/recent`.
        let request_id = caladrius_obs::current_request_id();
        let mut plan_span = caladrius_obs::global_span("fleet.plan");
        plan_span
            .field("topologies", names.len())
            .field("budget", budget);
        let plan_span_id = plan_span.id();

        // Stage 1: delta partition, then unconstrained plans for what
        // actually changed. The plan-cache probe is cheap (no models, no
        // forecasts), so unchanged topologies are served inline and
        // never touch the pool; drifted and cold ones fan out across
        // shards, where `plan_capacity` warm-starts drifted searches
        // from their stale cached timelines.
        let mut unconstrained = request.clone();
        unconstrained.planner.limits.max_containers = UNLIMITED_CONTAINERS;
        let mut first: Vec<Option<Result<PlanTimeline>>> = Vec::with_capacity(names.len());
        let (mut unchanged, mut drifted, mut cold) = (0usize, 0usize, 0usize);
        let mut pending: Vec<usize> = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let lookup = self.shard_of(name).map(|s| {
                self.shards[s]
                    .service
                    .plan_cache_lookup(name, &unconstrained)
            });
            match lookup {
                Some(Ok(PlanCacheLookup::Hit(timeline))) => {
                    unchanged += 1;
                    first.push(Some(Ok(timeline)));
                    continue;
                }
                Some(Ok(PlanCacheLookup::Stale(_))) => drifted += 1,
                // Absent, unregistered, or unprobeable (e.g. no metrics
                // yet): plan cold and let the real error surface there.
                _ => cold += 1,
            }
            first.push(None);
            pending.push(i);
        }
        let solved: Vec<Result<PlanTimeline>> = pool.parallel_map(&pending, |_, i| {
            let _request = request_id.map(RequestScope::enter);
            let _parent = ParentSpanScope::enter(plan_span_id);
            let mut span = caladrius_obs::global_span("fleet.shard.plan");
            span.field("topology", &names[*i])
                .field("shard", self.shard_of(&names[*i]).unwrap_or(0))
                .field("stage", "unconstrained");
            self.plan_topology(&names[*i], &unconstrained)
        });
        for (i, outcome) in pending.into_iter().zip(solved) {
            first[i] = Some(outcome);
        }
        let first: Vec<Result<PlanTimeline>> = first
            .into_iter()
            .map(|o| o.expect("every topology is cached or planned"))
            .collect();
        plan_span
            .field("unchanged", unchanged)
            .field("drifted", drifted)
            .field("cold", cold);

        // Stage 2: demand curves → budget grants. Failed plans carry an
        // empty curve, so the allocator skips them.
        let demands: Vec<TopologyDemand> = names
            .iter()
            .zip(&first)
            .map(|(name, outcome)| TopologyDemand {
                topology: name.clone(),
                per_window_containers: outcome
                    .as_ref()
                    .map(|t| t.windows.iter().map(|w| w.cost.containers).collect())
                    .unwrap_or_default(),
            })
            .collect();
        let allocation = self.allocate(&demands, budget);

        // Stage 3: constrained re-plans, only where the grant binds.
        // The constrained request key covers `max_containers`, so a
        // plan-cache hit here means the grant is unchanged vs the
        // previous fleet plan over unchanged data — those re-plans are
        // served from cache and skip the pool too.
        let replan_grants: Vec<(usize, u32)> = demands
            .iter()
            .enumerate()
            .filter_map(|(i, demand)| {
                let grant = allocation.grants[i].containers;
                (first[i].is_ok() && grant > 0 && grant < demand.peak()).then_some((i, grant))
            })
            .collect();
        let mut replans: HashMap<usize, Result<PlanTimeline>> = HashMap::new();
        let mut pooled_grants: Vec<(usize, u32)> = Vec::new();
        for (i, grant) in replan_grants {
            let mut constrained = request.clone();
            constrained.planner.limits.max_containers = grant;
            let hit = self.shard_of(&names[i]).and_then(|s| {
                match self.shards[s]
                    .service
                    .plan_cache_lookup(&names[i], &constrained)
                {
                    Ok(PlanCacheLookup::Hit(timeline)) => Some(timeline),
                    _ => None,
                }
            });
            match hit {
                Some(timeline) => {
                    replans.insert(i, Ok(timeline));
                }
                None => pooled_grants.push((i, grant)),
            }
        }
        replans.extend(pooled_grants.iter().map(|(i, _)| *i).zip(pool.parallel_map(
            &pooled_grants,
            |_, (i, grant)| {
                let _request = request_id.map(RequestScope::enter);
                let _parent = ParentSpanScope::enter(plan_span_id);
                let mut span = caladrius_obs::global_span("fleet.shard.plan");
                span.field("topology", &names[*i])
                    .field("shard", self.shard_of(&names[*i]).unwrap_or(0))
                    .field("stage", "constrained")
                    .field("grant", *grant);
                let mut constrained = request.clone();
                constrained.planner.limits.max_containers = *grant;
                self.plan_topology(&names[*i], &constrained)
            },
        )));

        let outcomes = names
            .into_iter()
            .zip(first)
            .enumerate()
            .map(|(i, (topology, outcome))| {
                let grant = allocation.grants[i].containers;
                let demand = demands[i].per_window_containers.clone();
                let shard = self.shard_of(&topology).unwrap_or(0);
                let (timeline, error) = match (outcome, replans.remove(&i)) {
                    (Err(e), _) => (None, Some(e.to_string())),
                    (Ok(_), _) if grant == 0 && demands[i].peak() > 0 => (
                        None,
                        Some("no containers granted within the cluster budget".to_string()),
                    ),
                    (Ok(t), None) => (Some(t), None),
                    (_, Some(Ok(t))) => (Some(t), None),
                    (_, Some(Err(e))) => (None, Some(e.to_string())),
                };
                TopologyPlanOutcome {
                    topology,
                    shard,
                    granted_containers: grant,
                    risk: risk(&demand, grant),
                    demand,
                    timeline,
                    error,
                }
            })
            .collect();
        FleetPlan {
            budget,
            total_granted: allocation.total_granted,
            unchanged,
            drifted,
            cold,
            outcomes,
        }
    }

    fn allocate(&self, demands: &[TopologyDemand], budget: u32) -> Allocation {
        if budget == UNLIMITED_CONTAINERS {
            // No cluster budget: grant every topology its peak demand.
            let grants = demands
                .iter()
                .map(|d| crate::allocator::BudgetGrant {
                    topology: d.topology.clone(),
                    containers: d.peak(),
                    risk: 0.0,
                })
                .collect::<Vec<_>>();
            let total_granted = grants.iter().map(|g| g.containers).sum();
            Allocation {
                grants,
                total_granted,
                budget,
            }
        } else {
            allocate_greedy(demands, budget)
        }
    }

    /// Per-shard health: topology counts, model-cache counters, and
    /// ingest totals.
    pub fn health(&self) -> FleetHealth {
        let shards = self
            .shards
            .iter()
            .map(|shard| ShardHealth {
                shard: shard.index,
                topologies: shard.provider.len(),
                model_cache: shard.service.model_cache_stats(),
                plan_cache: shard.service.plan_cache_stats(),
                ingest: shard.provider.ingest_stats().unwrap_or_default(),
                tail_cache: shard.provider.tail_cache_stats().unwrap_or_default(),
                routed_batches: shard.ingest_batches.get(),
            })
            .collect();
        FleetHealth {
            topologies: self.len(),
            shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feed::tests::staged;
    use caladrius_workload::wordcount::{wordcount_topology, WordCountParallelism};

    fn fleet_topology(name: &str) -> Topology {
        let mut topology = wordcount_topology(
            WordCountParallelism {
                spout: 8,
                splitter: 2,
                counter: 3,
            },
            6.0e6,
        );
        topology.name = name.to_string();
        topology
    }

    /// A fleet with `n` topologies, each carrying the full staged
    /// metric history.
    fn fed_fleet(shards: usize, n: usize, budget: u32) -> Fleet {
        let fleet = Fleet::new(FleetConfig {
            shards,
            cluster_container_budget: budget,
            ..FleetConfig::default()
        });
        let staged = staged();
        let mut batch = MetricBatch::new(0);
        for i in 0..n {
            let name = format!("tenant-{i}");
            let metrics = fleet.register(fleet_topology(&name));
            let bound = staged.bind(&metrics);
            for idx in 0..staged.minutes() {
                bound.fill(staged, idx, &mut batch);
                fleet.ingest(&name, &batch).expect("registered");
            }
        }
        fleet
    }

    #[test]
    fn registration_routes_by_rendezvous_hash() {
        let fleet = Fleet::new(FleetConfig {
            shards: 4,
            ..FleetConfig::default()
        });
        for i in 0..32 {
            let name = format!("tenant-{i}");
            fleet.register(fleet_topology(&name));
            assert_eq!(fleet.shard_of(&name), Some(assign_shard(&name, 4)));
        }
        assert_eq!(fleet.len(), 32);
        let hosted: usize = fleet.shards().iter().map(Shard::topologies).sum();
        assert_eq!(hosted, 32, "every topology hosted by exactly one shard");
        assert_eq!(fleet.topologies().len(), 32);
    }

    #[test]
    fn ingest_lands_in_the_owning_shard_only() {
        let fleet = fed_fleet(4, 8, UNLIMITED_CONTAINERS);
        let staged = staged();
        let health = fleet.health();
        assert_eq!(health.topologies, 8);
        let total_batches: u64 = health.shards.iter().map(|s| s.routed_batches).sum();
        assert_eq!(total_batches, 8 * staged.minutes() as u64);
        for shard in &health.shards {
            // A shard's routed batches match its hosted topology count.
            assert_eq!(
                shard.routed_batches,
                shard.topologies as u64 * staged.minutes() as u64
            );
        }
        // Unknown topologies are rejected, not silently dropped.
        let batch = MetricBatch::new(0);
        assert!(fleet.ingest("ghost", &batch).is_err());
    }

    #[test]
    fn steady_replan_is_served_from_the_plan_caches() {
        let fleet = fed_fleet(2, 4, UNLIMITED_CONTAINERS);
        let request = CapacityPlanRequest::default();

        let cold = fleet.plan_fleet(&request, None);
        assert_eq!(cold.errors(), 0, "outcomes: {:?}", cold.outcomes);
        assert_eq!((cold.unchanged, cold.drifted, cold.cold), (0, 0, 4));

        // Nothing changed: every topology must be served from cache,
        // byte-identical, without a single new search or oracle eval.
        let evals_before: u64 = fleet
            .health()
            .shards
            .iter()
            .map(|s| s.model_cache.plan_evals)
            .sum();
        let warm = fleet.plan_fleet(&request, None);
        assert_eq!((warm.unchanged, warm.drifted, warm.cold), (4, 0, 0));
        let evals_after: u64 = fleet
            .health()
            .shards
            .iter()
            .map(|s| s.model_cache.plan_evals)
            .sum();
        assert_eq!(evals_after, evals_before, "cache hits must not search");
        for (a, b) in cold.outcomes.iter().zip(&warm.outcomes) {
            assert_eq!(a.topology, b.topology);
            assert_eq!(
                a.timeline, b.timeline,
                "{}: cached plan drifted",
                a.topology
            );
        }
        let hits: u64 = fleet
            .health()
            .shards
            .iter()
            .map(|s| s.plan_cache.hits)
            .sum();
        assert!(hits >= 4, "expected ≥4 plan-cache hits, got {hits}");

        // New data for one topology: exactly that one drifts (and its
        // re-plan warm-starts), the rest stay unchanged.
        let staged = staged();
        let drifting = "tenant-0";
        let metrics = fleet
            .assignments
            .read()
            .get(drifting)
            .map(|(_, m)| m.clone())
            .expect("registered");
        let bound = staged.bind(&metrics);
        let mut batch = MetricBatch::new(0);
        let span_ms = staged.minute_ts(staged.minutes() - 1) - staged.minute_ts(0) + 60_000;
        bound.fill_at(staged, 0, span_ms, &mut batch);
        fleet.ingest(drifting, &batch).expect("registered");

        let delta = fleet.plan_fleet(&request, None);
        assert_eq!((delta.unchanged, delta.drifted, delta.cold), (3, 1, 0));
        assert_eq!(delta.errors(), 0);
        let warm_starts: u64 = fleet
            .health()
            .shards
            .iter()
            .map(|s| s.plan_cache.warm_starts)
            .sum();
        assert_eq!(warm_starts, 1, "the drifted re-plan must warm-start");
    }

    #[test]
    fn fleet_plan_respects_the_cluster_budget() {
        let fleet = fed_fleet(2, 3, UNLIMITED_CONTAINERS);
        let request = CapacityPlanRequest::default();

        // Unconstrained pass: every topology plans, grants cover peaks.
        let free = fleet.plan_fleet(&request, None);
        assert_eq!(free.errors(), 0, "outcomes: {:?}", free.outcomes);
        assert_eq!(free.outcomes.len(), 3);
        let peak_sum: u32 = free
            .outcomes
            .iter()
            .map(|o| o.demand.iter().copied().max().unwrap_or(0))
            .sum();
        assert!(peak_sum > 0);
        assert_eq!(free.total_granted, peak_sum);
        assert!(free.outcomes.iter().all(|o| o.risk == 0.0));

        // Tight budget: grants sum within budget, constrained timelines
        // respect their grants.
        let tight_budget = peak_sum.saturating_sub(2).max(1);
        let tight = fleet.plan_fleet(&request, Some(tight_budget));
        assert!(tight.total_granted <= tight_budget);
        for outcome in &tight.outcomes {
            if let Some(timeline) = &outcome.timeline {
                assert!(
                    timeline.peak_cost.containers <= outcome.granted_containers,
                    "{}: {} containers vs grant {}",
                    outcome.topology,
                    timeline.peak_cost.containers,
                    outcome.granted_containers
                );
            }
        }
        // At least one topology had to shrink or was starved.
        assert!(tight.outcomes.iter().any(|o| o.risk > 0.0
            || o.granted_containers < o.demand.iter().copied().max().unwrap_or(0)
            || o.timeline.is_some()));
    }
}
