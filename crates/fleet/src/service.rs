//! Fleet HTTP front door.
//!
//! Reuses the API tier's building blocks — HTTP server, JSON model,
//! async job store, and admission controller — and adds the
//! fleet-level endpoints:
//!
//! * `POST /fleet/plan` — cluster planning as an async job (`202` +
//!   poll URL). The body may set `"budget"` (containers) to override
//!   the configured cluster budget, plus the same planner knobs as the
//!   single-topology plan route. Low-priority requests are shed with
//!   `429` + `Retry-After` under overload.
//! * `GET /fleet/jobs/{id}` — poll a fleet plan job.
//! * `GET /fleet/health` — per-shard topology counts, model-cache
//!   counters and ingest totals.
//! * `GET /metrics/service` — Prometheus exposition (includes the
//!   per-shard `shard="<i>"` series and the fleet shed/ingest
//!   counters).
//! * `GET /trace/recent`, `GET /slo/status`, `GET /debug/flight` —
//!   the shared observability endpoints (same handlers as the API
//!   tier), so a fleet front door exposes the cross-shard span trees,
//!   burn-rate verdicts and flight-recorder dumps directly.

use crate::fleet::{Fleet, FleetPlan, TopologyPlanOutcome};
use caladrius_api::admission::PRIORITY_HEADER;
use caladrius_api::http::{Handler, Request, Response};
use caladrius_api::jobs::JobState;
use caladrius_api::json::Value;
use caladrius_api::{AdmissionConfig, AdmissionController, AdmissionDecision, JobRunner, Priority};
use caladrius_core::capacity::CapacityPlanRequest;
use caladrius_obs::{ParentSpanScope, RequestScope};
use std::sync::Arc;
use std::time::Instant;

/// The fleet tier's HTTP service: routes fleet requests to a shared
/// [`Fleet`] behind admission control and the async job store.
pub struct FleetService {
    fleet: Arc<Fleet>,
    jobs: JobRunner,
    admission: AdmissionController,
}

/// Route label of the fleet plan endpoint (admission + metrics key).
const PLAN_ROUTE: &str = "/fleet/plan";

impl FleetService {
    /// Wraps a fleet with `job_workers` async workers and admission
    /// control disabled.
    pub fn new(fleet: Arc<Fleet>, job_workers: usize) -> Arc<Self> {
        Self::with_admission(fleet, job_workers, AdmissionConfig::default())
    }

    /// Wraps a fleet with an explicit admission-control configuration
    /// on the plan route.
    pub fn with_admission(
        fleet: Arc<Fleet>,
        job_workers: usize,
        admission: AdmissionConfig,
    ) -> Arc<Self> {
        Arc::new(FleetService {
            fleet,
            jobs: JobRunner::new(job_workers),
            admission: AdmissionController::new(admission),
        })
    }

    /// The wrapped fleet.
    pub fn fleet(&self) -> &Arc<Fleet> {
        &self.fleet
    }

    /// The job runner (tests gate its workers to force queueing).
    pub fn jobs(&self) -> &JobRunner {
        &self.jobs
    }

    /// A connection handler for [`caladrius_api::HttpServer::serve`].
    pub fn handler(self: &Arc<Self>) -> Handler {
        let service = Arc::clone(self);
        Arc::new(move |request| service.handle(request))
    }

    /// Routes one request, recording the same per-route counters and
    /// latency histograms as the API tier (so admission's p99 signal
    /// works unchanged for fleet routes).
    pub fn handle(&self, request: Request) -> Response {
        let request_id = request
            .request_id()
            .unwrap_or_else(caladrius_obs::next_request_id);
        let _request_scope = RequestScope::enter(request_id);
        let started = Instant::now();
        let mut span = caladrius_obs::global_span("http.request");
        let (route, response) = self.route(&request);
        span.field("route", route)
            .field("method", &request.method)
            .field("status", response.status);
        let registry = caladrius_obs::global_registry();
        let status = response.status.to_string();
        registry
            .counter(
                "caladrius_http_requests_total",
                &[
                    ("route", route),
                    ("method", &request.method),
                    ("status", &status),
                ],
            )
            .inc();
        registry
            .windowed_histogram(
                "caladrius_http_request_duration_seconds",
                &[("route", route)],
            )
            .record_duration(started.elapsed());
        caladrius_api::record_route_slo(
            route,
            response.status,
            started.elapsed().as_secs_f64(),
            self.admission.config().slo_p99_seconds,
        );
        caladrius_obs::global_flight().maybe_snapshot(registry);
        response
    }

    fn route(&self, request: &Request) -> (&'static str, Response) {
        let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
        match (request.method.as_str(), segments.as_slice()) {
            ("POST", ["fleet", "plan"]) => (PLAN_ROUTE, self.plan(request)),
            ("GET", ["fleet", "jobs", id]) => ("/fleet/jobs/{id}", self.job_status(id)),
            ("GET", ["fleet", "health"]) => ("/fleet/health", self.health()),
            ("GET", ["metrics", "service"]) => ("/metrics/service", Self::service_metrics()),
            ("GET", ["trace", "recent"]) => (
                "/trace/recent",
                caladrius_api::trace_recent_response(request),
            ),
            ("GET", ["slo", "status"]) => ("/slo/status", caladrius_api::slo_status_response()),
            ("GET", ["debug", "flight"]) => ("/debug/flight", caladrius_api::flight_response()),
            (_, ["fleet", ..])
            | (_, ["metrics", "service"])
            | (_, ["trace", ..])
            | (_, ["slo", ..])
            | (_, ["debug", "flight"]) => (
                "method_not_allowed",
                Response::json_status(405, "{\"error\":\"method not allowed\"}"),
            ),
            _ => (
                "unmatched",
                Response::json_status(404, "{\"error\":\"no such endpoint\"}"),
            ),
        }
    }

    /// The observed **recent** p99 of a route, from the same windowed
    /// histogram [`FleetService::handle`] records into — shedding reacts
    /// to the sliding window, not lifetime history.
    fn route_p99(route: &str) -> Option<f64> {
        let histogram = caladrius_obs::global_registry().windowed_histogram(
            "caladrius_http_request_duration_seconds",
            &[("route", route)],
        );
        let snapshot = histogram.windowed_snapshot();
        (snapshot.count > 0).then(|| snapshot.quantile(0.99))
    }

    fn too_many_requests(error: &str, retry_after_seconds: u32) -> Response {
        Response::json_status(
            429,
            Value::object([("error", Value::from(error))]).to_json(),
        )
        .with_header("Retry-After", retry_after_seconds.to_string())
    }

    /// `POST /fleet/plan` — cluster planning across every registered
    /// topology, async through the job store.
    fn plan(&self, request: &Request) -> Response {
        let priority =
            Priority::from_header(request.headers.get(PRIORITY_HEADER).map(String::as_str));
        if let AdmissionDecision::Shed {
            retry_after_seconds,
        } = self.admission.decide(
            PLAN_ROUTE,
            priority,
            Self::route_p99(PLAN_ROUTE),
            self.jobs.queue_depth(),
        ) {
            return Self::too_many_requests("shed by admission control", retry_after_seconds);
        }
        let body = match request.body_str() {
            Some(b) => b,
            None => return Response::json_status(400, "{\"error\":\"body is not UTF-8\"}"),
        };
        let (plan_request, budget) = match parse_fleet_plan_body(body) {
            Ok(parsed) => parsed,
            Err(msg) => {
                return Response::json_status(
                    400,
                    Value::object([("error", Value::from(msg))]).to_json(),
                )
            }
        };
        let fleet = Arc::clone(&self.fleet);
        // The plan runs on a job worker thread: carry the request id and
        // the `http.request` span id over so the whole cross-shard fan-out
        // (`fleet.plan` → `fleet.shard.plan` → `core.plan`) reconstructs
        // under one request id in `/trace/recent`.
        let request_id = caladrius_obs::current_request_id();
        let parent_span = caladrius_obs::current_span_id();
        let id = self.jobs.submit(move || {
            let _request = request_id.map(RequestScope::enter);
            let _parent = parent_span.map(ParentSpanScope::enter);
            let plan = fleet.plan_fleet(&plan_request, budget);
            // Fleet plan jobs burn their own error budget: any topology
            // failing to plan counts as a bad event.
            caladrius_obs::global_slos()
                .objective("fleet-plan-jobs", caladrius_obs::SloConfig::default())
                .record(plan.errors() == 0);
            Ok(fleet_plan_to_json(&plan))
        });
        Response::json_status(
            202,
            Value::object([
                ("job_id", Value::from(id as f64)),
                ("poll", Value::from(format!("/fleet/jobs/{id}"))),
            ])
            .to_json(),
        )
    }

    fn job_status(&self, id: &str) -> Response {
        let Ok(id) = id.parse::<u64>() else {
            return Response::json_status(400, "{\"error\":\"job id must be an integer\"}");
        };
        match self.jobs.state(id) {
            None => Response::json_status(404, "{\"error\":\"no such job\"}"),
            Some(JobState::Pending) => Response::json_status(
                202,
                Value::object([("state", Value::from("pending"))]).to_json(),
            ),
            Some(JobState::Done(result)) => Response::json(
                Value::object([("state", Value::from("done")), ("result", result)]).to_json(),
            ),
            Some(JobState::Failed(message)) => Response::json(
                Value::object([
                    ("state", Value::from("failed")),
                    ("error", Value::from(message)),
                ])
                .to_json(),
            ),
        }
    }

    /// `GET /fleet/health` — per-shard snapshot.
    fn health(&self) -> Response {
        let health = self.fleet.health();
        let shards = health
            .shards
            .iter()
            .map(|s| {
                Value::object([
                    ("shard", Value::from(s.shard as f64)),
                    ("topologies", Value::from(s.topologies as f64)),
                    ("cache_hits", Value::from(s.model_cache.hits as f64)),
                    ("cache_misses", Value::from(s.model_cache.misses as f64)),
                    ("model_fits", Value::from(s.model_cache.fits as f64)),
                    (
                        "model_fits_incremental",
                        Value::from(s.model_cache.incremental_fits as f64),
                    ),
                    (
                        "model_fits_full",
                        Value::from(s.model_cache.full_fits as f64),
                    ),
                    ("plans", Value::from(s.model_cache.plans as f64)),
                    ("plan_cache_hits", Value::from(s.plan_cache.hits as f64)),
                    ("plan_cache_misses", Value::from(s.plan_cache.misses as f64)),
                    (
                        "plan_warm_starts",
                        Value::from(s.plan_cache.warm_starts as f64),
                    ),
                    (
                        "plan_cache_evictions",
                        Value::from(s.plan_cache.evictions as f64),
                    ),
                    ("ingest_batches", Value::from(s.ingest.batches as f64)),
                    ("ingest_samples", Value::from(s.ingest.samples as f64)),
                    ("tail_cache_hits", Value::from(s.tail_cache.hits as f64)),
                    ("tail_cache_misses", Value::from(s.tail_cache.misses as f64)),
                    ("routed_batches", Value::from(s.routed_batches as f64)),
                ])
            })
            .collect();
        Response::json(
            Value::object([
                ("status", Value::from("ok")),
                ("topologies", Value::from(health.topologies as f64)),
                ("shards", Value::Array(shards)),
            ])
            .to_json(),
        )
    }

    fn service_metrics() -> Response {
        Response {
            status: 200,
            content_type: caladrius_obs::PROMETHEUS_CONTENT_TYPE.into(),
            body: caladrius_obs::render_prometheus(caladrius_obs::global_registry()).into_bytes(),
            headers: Vec::new(),
        }
    }
}

/// Parses a `POST /fleet/plan` body: the single-topology planner knobs
/// (`traffic_model`, `conservative`, `horizon_minutes`, ...) via the
/// API tier's parser, plus the fleet-only `"budget"` (containers,
/// overriding the configured cluster budget).
fn parse_fleet_plan_body(body: &str) -> Result<(CapacityPlanRequest, Option<u32>), String> {
    let request = caladrius_api::routes::parse_plan_body(body)?;
    let mut budget = None;
    if !body.trim().is_empty() {
        let value = caladrius_api::json::parse(body).map_err(|e| e.to_string())?;
        if let Some(raw) = value.get("budget") {
            let b = raw
                .as_f64()
                .filter(|b| b.fract() == 0.0 && *b >= 1.0)
                .ok_or_else(|| "budget must be a positive integer".to_string())?;
            budget = Some(b.min(f64::from(u32::MAX)) as u32);
        }
    }
    Ok((request, budget))
}

fn outcome_to_json(outcome: &TopologyPlanOutcome) -> Value {
    let mut fields = vec![
        ("topology", Value::from(outcome.topology.as_str())),
        ("shard", Value::from(outcome.shard as f64)),
        (
            "demand",
            Value::Array(
                outcome
                    .demand
                    .iter()
                    .map(|d| Value::from(f64::from(*d)))
                    .collect(),
            ),
        ),
        (
            "granted_containers",
            Value::from(f64::from(outcome.granted_containers)),
        ),
        ("risk", Value::from(outcome.risk)),
    ];
    if let Some(timeline) = &outcome.timeline {
        fields.push((
            "plan",
            Value::object([
                ("windows", Value::from(timeline.windows.len() as f64)),
                (
                    "peak_containers",
                    Value::from(f64::from(timeline.peak_cost.containers)),
                ),
                (
                    "peak_instances",
                    Value::from(f64::from(timeline.peak_cost.total_instances)),
                ),
            ]),
        ));
    }
    if let Some(error) = &outcome.error {
        fields.push(("error", Value::from(error.as_str())));
    }
    Value::object(fields)
}

/// Renders a fleet plan for the job result payload.
pub fn fleet_plan_to_json(plan: &FleetPlan) -> Value {
    Value::object([
        ("budget", Value::from(f64::from(plan.budget))),
        ("total_granted", Value::from(f64::from(plan.total_granted))),
        ("errors", Value::from(plan.errors() as f64)),
        ("unchanged", Value::from(plan.unchanged as f64)),
        ("drifted", Value::from(plan.drifted as f64)),
        ("cold", Value::from(plan.cold as f64)),
        (
            "topologies",
            Value::Array(plan.outcomes.iter().map(outcome_to_json).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn request(method: &str, path: &str, body: &str, headers: &[(&str, &str)]) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            query: BTreeMap::new(),
            headers: headers
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn empty_service() -> Arc<FleetService> {
        FleetService::new(
            Arc::new(Fleet::new(crate::fleet::FleetConfig::default())),
            1,
        )
    }

    #[test]
    fn parse_accepts_budget_and_planner_knobs() {
        let (request, budget) =
            parse_fleet_plan_body(r#"{"budget": 24, "conservative": true}"#).expect("valid");
        assert_eq!(budget, Some(24));
        assert!(request.conservative);
        let (_, none) = parse_fleet_plan_body("{}").expect("valid");
        assert_eq!(none, None);
        assert!(parse_fleet_plan_body(r#"{"budget": 0}"#).is_err());
        assert!(parse_fleet_plan_body(r#"{"budget": 1.5}"#).is_err());
        assert!(parse_fleet_plan_body(r#"{"budget": "lots"}"#).is_err());
    }

    #[test]
    fn fleet_routes_dispatch() {
        let service = empty_service();
        let health = service.handle(request("GET", "/fleet/health", "", &[]));
        assert_eq!(health.status, 200);
        let body = String::from_utf8(health.body).unwrap();
        assert!(body.contains("\"shards\""), "{body}");

        assert_eq!(
            service
                .handle(request("GET", "/fleet/plan", "", &[]))
                .status,
            405
        );
        assert_eq!(service.handle(request("GET", "/nope", "", &[])).status, 404);
        assert_eq!(
            service
                .handle(request("GET", "/fleet/jobs/zero", "", &[]))
                .status,
            400
        );
        assert_eq!(
            service
                .handle(request("GET", "/fleet/jobs/17", "", &[]))
                .status,
            404
        );
        let metrics = service.handle(request("GET", "/metrics/service", "", &[]));
        assert_eq!(metrics.status, 200);
    }

    #[test]
    fn plan_jobs_run_async_even_on_an_empty_fleet() {
        let service = empty_service();
        let accepted = service.handle(request("POST", "/fleet/plan", "{}", &[]));
        assert_eq!(accepted.status, 202, "{:?}", accepted.body);
        let body = String::from_utf8(accepted.body).unwrap();
        let id = caladrius_api::json::parse(&body)
            .unwrap()
            .get("job_id")
            .and_then(Value::as_f64)
            .expect("job id") as u64;
        let done = service.jobs().wait(id).expect("job exists");
        let JobState::Done(result) = done else {
            panic!("empty-fleet plan should succeed: {done:?}");
        };
        assert_eq!(result.get("errors").and_then(Value::as_f64), Some(0.0));
        assert_eq!(
            result
                .get("topologies")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(0)
        );
    }

    #[test]
    fn low_priority_fleet_plans_shed_under_pressure() {
        let service = FleetService::with_admission(
            Arc::new(Fleet::new(crate::fleet::FleetConfig::default())),
            1,
            AdmissionConfig {
                enabled: true,
                slo_p99_seconds: -1.0, // any recorded latency sheds
                retry_after_seconds: 5,
                ..AdmissionConfig::default()
            },
        );
        // Prime the route histogram with a high-priority request.
        let primed = service.handle(request(
            "POST",
            "/fleet/plan",
            "{}",
            &[(PRIORITY_HEADER, "high")],
        ));
        assert_eq!(primed.status, 202);
        let shed = service.handle(request("POST", "/fleet/plan", "{}", &[]));
        assert_eq!(shed.status, 429);
        assert!(shed
            .headers
            .iter()
            .any(|(k, v)| k == "Retry-After" && v == "5"));
        // High priority still lands.
        let high = service.handle(request(
            "POST",
            "/fleet/plan",
            "{}",
            &[(PRIORITY_HEADER, "high")],
        ));
        assert_eq!(high.status, 202);
    }
}
