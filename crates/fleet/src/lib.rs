//! # caladrius-fleet
//!
//! The fleet tier: one Caladrius deployment serving *many* topologies
//! for many tenants, as sketched in the paper's service architecture
//! (§III: "Caladrius is designed as a service that can model multiple
//! topologies concurrently").
//!
//! Three layers stack on the single-tenant service:
//!
//! * **Sharding** ([`fleet`], [`hash`], [`provider`]) — topologies are
//!   pinned to one of N shards by rendezvous hashing on the topology
//!   id; each shard is a full [`caladrius_core::Caladrius`] with its
//!   own per-topology tsdb stores and a `shard="<i>"` label on its obs
//!   series. Growing the fleet only migrates topologies to the new
//!   shard, keeping surviving shards' model caches warm.
//! * **Admission control** (reused from [`caladrius_api::admission`])
//!   — the fleet front door sheds low-priority plan requests with
//!   `429` + `Retry-After` when the route's p99 breaches its SLO, the
//!   job queue crosses its watermark, or the token bucket empties.
//! * **Cluster planning** ([`allocator`], [`Fleet::plan_fleet`]) — a
//!   knapsack-style split of a cluster-wide container budget across
//!   topologies by marginal backpressure-risk reduction (greedy, exact
//!   for the concave served-demand utility; property-tested against a
//!   DP oracle), with constrained re-plans where the grant binds.
//!
//! [`feed`] stages one simulator run and replays it into any number of
//! fleet topologies, so 1k-topology benches exercise the fleet's
//! ingest fan-out and planners instead of the simulator.

#![warn(missing_docs)]

pub mod allocator;
pub mod feed;
pub mod fleet;
pub mod hash;
pub mod provider;
pub mod service;

pub use allocator::{allocate_exact_dp, allocate_greedy, Allocation, BudgetGrant, TopologyDemand};
pub use feed::{BoundWorkload, StagedWorkload};
pub use fleet::{Fleet, FleetConfig, FleetHealth, FleetPlan, ShardHealth, TopologyPlanOutcome};
pub use hash::assign_shard;
pub use provider::{FleetTracker, ShardMetricsProvider};
pub use service::FleetService;
