//! Rendezvous (highest-random-weight) hashing for topology→shard
//! assignment.
//!
//! Every (topology, shard) pair gets a pseudo-random weight; the
//! topology lives on the shard with the highest weight. Compared to
//! `hash(topology) % shards`, growing the fleet by one shard only moves
//! the topologies whose new shard wins the draw — no global reshuffle,
//! so per-shard model caches and tsdb contents stay warm.

/// 64-bit FNV-1a over `bytes` — stable across platforms and releases,
/// which the shard assignment must be (a rehash after an upgrade would
/// cold-start every model cache in the fleet).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut hash = OFFSET;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Weight of `topology` on shard `shard` — FNV-1a over the topology id,
/// a `0xff` separator (topology ids are UTF-8, so this cannot collide
/// with a longer id), and the shard index.
fn weight(topology: &str, shard: usize) -> u64 {
    let mut bytes = Vec::with_capacity(topology.len() + 9);
    bytes.extend_from_slice(topology.as_bytes());
    bytes.push(0xff);
    bytes.extend_from_slice(&(shard as u64).to_le_bytes());
    fnv1a64(&bytes)
}

/// The shard (0-based, `< shards`) owning `topology` under rendezvous
/// hashing. Deterministic; panics if `shards` is zero.
pub fn assign_shard(topology: &str, shards: usize) -> usize {
    assert!(shards > 0, "a fleet needs at least one shard");
    (0..shards)
        .max_by_key(|shard| (weight(topology, *shard), usize::MAX - *shard))
        .expect("non-empty shard range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Reference FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn assignment_is_stable_and_in_range() {
        for i in 0..256 {
            let name = format!("topology-{i}");
            let shard = assign_shard(&name, 4);
            assert!(shard < 4);
            assert_eq!(shard, assign_shard(&name, 4), "deterministic");
        }
    }

    #[test]
    fn shards_are_roughly_balanced() {
        let mut counts = [0usize; 4];
        for i in 0..256 {
            counts[assign_shard(&format!("topology-{i}"), 4)] += 1;
        }
        // Expected 64 per shard; allow a generous band.
        for (shard, count) in counts.iter().enumerate() {
            assert!(
                (32..=96).contains(count),
                "shard {shard} holds {count} of 256"
            );
        }
    }

    #[test]
    fn growing_the_fleet_only_moves_topologies_to_the_new_shard() {
        // The rendezvous property: adding shard 4 never moves a topology
        // between the existing shards 0..4.
        for i in 0..256 {
            let name = format!("topology-{i}");
            let before = assign_shard(&name, 4);
            let after = assign_shard(&name, 5);
            assert!(
                after == before || after == 4,
                "{name}: moved {before} -> {after} on grow"
            );
        }
    }
}
