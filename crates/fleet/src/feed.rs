//! Stage-once, replicate-everywhere synthetic fleet workload.
//!
//! Driving 1k+ topologies through the real simulator would spend the
//! whole benchmark inside `heron-sim`. Instead the feed runs the
//! simulator **once** into a staging store, snapshots every recorded
//! series, and then replays the same per-minute samples into each fleet
//! topology's own tsdb under that topology's identity. Every topology
//! therefore carries a full, model-fittable metric history while ingest
//! cost stays a pure tsdb write path — which is exactly what the fleet
//! tier's ingest fan-out is supposed to exercise.

use caladrius_tsdb::{MetricBatch, SeriesHandle, SeriesKey, TagFilter};
use caladrius_workload::wordcount::{wordcount_topology, WordCountParallelism};
use heron_sim::engine::{SimConfig, Simulation};
use heron_sim::metrics::{metric, tag, SimMetrics};

/// Identity of one staged series, minus the topology tag (re-applied
/// per fleet topology at bind time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleIdent {
    /// Metric name (`execute-count`, ...).
    pub metric: String,
    /// Component tag value.
    pub component: String,
    /// Instance tag value.
    pub instance: String,
    /// Container tag value.
    pub container: String,
}

/// The staged workload: series identities plus per-minute samples,
/// index-aligned so replay is a flat scan.
#[derive(Debug, Clone)]
pub struct StagedWorkload {
    idents: Vec<SampleIdent>,
    /// `(minute timestamp ms, [(ident index, value)])`, minutes sorted.
    minutes: Vec<(i64, Vec<(usize, f64)>)>,
}

/// Staging topology name (never registered in the fleet).
const STAGING: &str = "staged";

/// Metrics replicated per topology — the set the models fit from
/// (component I/O, backpressure, CPU) plus the spout offered-load series
/// the traffic forecaster trains on.
const REPLICATED_METRICS: [&str; 5] = [
    metric::EXECUTE_COUNT,
    metric::EMIT_COUNT,
    metric::BACKPRESSURE_TIME,
    metric::CPU_LOAD,
    metric::SOURCE_OFFERED,
];

impl StagedWorkload {
    /// Runs the reference WordCount sweep once (four rate legs with
    /// warmup, noise-free) and snapshots every replicated series. The
    /// sweep matches the service-tier test fixture, so replayed
    /// topologies are known to fit and plan.
    pub fn stage_wordcount() -> StagedWorkload {
        let parallelism = WordCountParallelism {
            spout: 8,
            splitter: 2,
            counter: 3,
        };
        let metrics = SimMetrics::new(STAGING);
        for (leg, rate) in [6.0e6, 12.0e6, 18.0e6, 26.0e6].into_iter().enumerate() {
            let mut topology = wordcount_topology(parallelism, rate);
            topology.name = STAGING.to_string();
            let mut sim = Simulation::new(
                topology,
                SimConfig {
                    metric_noise: 0.0,
                    ..SimConfig::default()
                },
            )
            .expect("staging topology is valid");
            sim.skip_to_minute(leg as u64 * 60);
            sim.warmup_minutes(25);
            sim.run_minutes_into(10, &metrics);
        }
        Self::from_staged(&metrics)
    }

    /// Snapshots every replicated series of a staged metrics store.
    pub fn from_staged(metrics: &SimMetrics) -> StagedWorkload {
        let mut idents = Vec::new();
        let mut minutes: std::collections::BTreeMap<i64, Vec<(usize, f64)>> = Default::default();
        let filter = [TagFilter::eq(tag::TOPOLOGY, metrics.topology())];
        for name in REPLICATED_METRICS {
            let series = metrics
                .db()
                .select(name, &filter, 0, i64::MAX)
                .expect("staging store is well-formed");
            for (key, samples) in series {
                let ident_idx = idents.len();
                idents.push(SampleIdent {
                    metric: name.to_string(),
                    component: key.tag(tag::COMPONENT).unwrap_or_default().to_string(),
                    instance: key.tag(tag::INSTANCE).unwrap_or_default().to_string(),
                    container: key.tag(tag::CONTAINER).unwrap_or_default().to_string(),
                });
                for sample in samples {
                    minutes
                        .entry(sample.ts)
                        .or_default()
                        .push((ident_idx, sample.value));
                }
            }
        }
        StagedWorkload {
            idents,
            minutes: minutes.into_iter().collect(),
        }
    }

    /// Number of staged minutes.
    pub fn minutes(&self) -> usize {
        self.minutes.len()
    }

    /// Number of staged series.
    pub fn series(&self) -> usize {
        self.idents.len()
    }

    /// Timestamp (ms) of staged minute `idx`.
    pub fn minute_ts(&self, idx: usize) -> i64 {
        self.minutes[idx].0
    }

    /// Registers the staged series (re-tagged to `metrics`' topology) in
    /// that topology's own store, returning index-aligned handles for
    /// [`BoundWorkload::fill`].
    pub fn bind(&self, metrics: &SimMetrics) -> BoundWorkload {
        let handles = self
            .idents
            .iter()
            .map(|ident| {
                let key = SeriesKey::new(ident.metric.clone())
                    .with_tag(tag::TOPOLOGY, metrics.topology())
                    .with_tag(tag::COMPONENT, ident.component.clone())
                    .with_tag(tag::INSTANCE, ident.instance.clone())
                    .with_tag(tag::CONTAINER, ident.container.clone());
                metrics.db().register(&key)
            })
            .collect();
        BoundWorkload { handles }
    }
}

/// The staged workload bound to one fleet topology's tsdb: series
/// handles in staged-ident order.
#[derive(Debug, Clone)]
pub struct BoundWorkload {
    handles: Vec<SeriesHandle>,
}

impl BoundWorkload {
    /// Fills `batch` (reset to the staged minute's timestamp) with
    /// staged minute `idx`'s samples against this topology's handles.
    /// The caller ships the batch through `Fleet::ingest`, reusing one
    /// batch allocation across the whole fleet.
    pub fn fill(&self, staged: &StagedWorkload, idx: usize, batch: &mut MetricBatch) {
        self.fill_at(staged, idx, 0, batch);
    }

    /// [`BoundWorkload::fill`] with the minute timestamp shifted by
    /// `offset_ms` — sustained-ingest benches cycle the staged minutes
    /// with a growing offset so every replayed minute advances the
    /// topology's watermark (and therefore invalidates cached models)
    /// the way live ingest would.
    pub fn fill_at(
        &self,
        staged: &StagedWorkload,
        idx: usize,
        offset_ms: i64,
        batch: &mut MetricBatch,
    ) {
        let (ts, samples) = &staged.minutes[idx];
        batch.reset(*ts + offset_ms);
        for (ident_idx, value) in samples {
            batch.push(&self.handles[*ident_idx], *value);
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// Staging runs the simulator; share one copy across tests.
    pub(crate) fn staged() -> &'static StagedWorkload {
        static STAGED: OnceLock<StagedWorkload> = OnceLock::new();
        STAGED.get_or_init(StagedWorkload::stage_wordcount)
    }

    #[test]
    fn staging_captures_a_fittable_history() {
        let w = staged();
        assert_eq!(w.minutes(), 40, "4 legs x 10 recorded minutes");
        // 13 instances (8 spout + 2 splitter + 3 counter) with
        // execute/emit/backpressure/cpu each, plus 8 spout offered-load
        // series.
        assert!(w.series() >= 13 * 4 + 8, "staged {} series", w.series());
        assert!(w.minute_ts(0) < w.minute_ts(w.minutes() - 1));
    }

    #[test]
    fn replay_reproduces_the_staged_series() {
        let w = staged();
        let replica = SimMetrics::new("replica-0");
        let bound = w.bind(&replica);
        let mut batch = MetricBatch::new(0);
        for idx in 0..w.minutes() {
            bound.fill(w, idx, &mut batch);
            replica.ingest(&batch);
        }
        // The replica's watermark is the staged history's newest minute...
        assert_eq!(replica.db().watermark(), Some(w.minute_ts(w.minutes() - 1)));
        // ...and component sums match a fresh staging run exactly.
        let splitter = replica.component_sum(metric::EXECUTE_COUNT, Some("splitter"), 0, i64::MAX);
        assert_eq!(splitter.len(), 40);
        assert!(splitter.iter().all(|s| s.value > 0.0));
    }
}
