#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build/test pass.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo build --release (tier-1)"
cargo build --release

echo "==> cargo build --examples"
cargo build --examples

echo "==> cargo bench --no-run (compile-gate bench code, incl. diurnal event, fleet_scale + model_fit)"
cargo bench --no-run

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

# Forced single-threading: every exec pool degrades to its inline
# sequential path, so any output depending on parallel scheduling
# (and any accidental nondeterminism) shows up as a diff here. The
# equivalence suite carries the event-scheduler contract (closed-form
# advancement within 0.1% of exact across profile regimes), and
# exec_determinism covers event-mode replay (replay defaults to
# event_mode=true), so wide-vs-1-thread replay stays byte-identical.
echo "==> CALADRIUS_THREADS=1 determinism variant (incl. event-mode equivalence)"
CALADRIUS_THREADS=1 cargo test -q -p caladrius-exec
CALADRIUS_THREADS=1 cargo test -q --test exec_determinism --test capacity_plan
CALADRIUS_THREADS=1 cargo test -q --test sim_kernel_equivalence

# The fleet e2e fans out cluster planning across the "fleet-plan" pool;
# the single-thread run proves the fleet tier's answers (grants, shard
# routing, shed decisions) do not depend on parallel scheduling.
echo "==> CALADRIUS_THREADS=1 fleet tier e2e"
CALADRIUS_THREADS=1 cargo test -q --test fleet_scale

# Incremental replanning: the plan-cache suite proves cache hits are
# bit-identical with zero new searches and that every staleness edge
# (watermark, plan version, ResourceLimits) invalidates; the planner
# package carries the warm-start == cold-search equivalence proptests.
echo "==> CALADRIUS_THREADS=1 plan cache + warm-start equivalence"
CALADRIUS_THREADS=1 cargo test -q --test plan_cache
CALADRIUS_THREADS=1 cargo test -q -p caladrius-planner

# Incremental model refitting: the forecast package carries the
# incremental == batch proptests over random append schedules; the core
# service suite carries the delta-aware model cache (bitwise component
# equivalence, truncation/retention/re-anchor full-refit regressions).
# Single-threaded so the fit fan-out cannot mask ordering dependencies
# in the streaming accumulators.
echo "==> CALADRIUS_THREADS=1 incremental-refit equivalence"
CALADRIUS_THREADS=1 cargo test -q -p caladrius-forecast --test incremental_equivalence
CALADRIUS_THREADS=1 cargo test -q -p caladrius-core --lib

echo "==> observability smoke (scrape /metrics/service)"
cargo run --release --example obs_smoke

echo "CI gate passed."
