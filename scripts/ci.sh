#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build/test pass.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo build --release (tier-1)"
cargo build --release

echo "==> cargo build --examples"
cargo build --examples

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> observability smoke (scrape /metrics/service)"
cargo run --release --example obs_smoke

echo "CI gate passed."
