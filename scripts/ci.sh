#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build/test pass.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo build --release (tier-1)"
cargo build --release

echo "==> cargo build --examples"
cargo build --examples

echo "==> cargo bench --no-run (compile-gate bench code)"
cargo bench --no-run

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

# Forced single-threading: every exec pool degrades to its inline
# sequential path, so any output depending on parallel scheduling
# (and any accidental nondeterminism) shows up as a diff here.
echo "==> CALADRIUS_THREADS=1 determinism variant"
CALADRIUS_THREADS=1 cargo test -q -p caladrius-exec
CALADRIUS_THREADS=1 cargo test -q --test exec_determinism --test capacity_plan
CALADRIUS_THREADS=1 cargo test -q --test sim_kernel_equivalence

echo "==> observability smoke (scrape /metrics/service)"
cargo run --release --example obs_smoke

echo "CI gate passed."
