//! Fleet-tier integration test over the real HTTP surface: 64
//! topologies across 4 shards, cluster planning under a container
//! budget, and admission control shedding low-priority requests.

use caladrius::api::{json, HttpClient, HttpServer};
use caladrius::api::{AdmissionConfig, Value};
use caladrius::fleet::{assign_shard, Fleet, FleetConfig, FleetService, StagedWorkload};
use caladrius::tsdb::MetricBatch;
use caladrius::workload::wordcount::{wordcount_topology, WordCountParallelism};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: usize = 4;
const TOPOLOGIES: usize = 64;

/// A 4-shard fleet hosting 64 staged-workload topologies.
fn build_fleet() -> Arc<Fleet> {
    let fleet = Arc::new(Fleet::new(FleetConfig {
        shards: SHARDS,
        ..FleetConfig::default()
    }));
    let staged = StagedWorkload::stage_wordcount();
    let mut batch = MetricBatch::new(0);
    for i in 0..TOPOLOGIES {
        let name = format!("tenant-{i:02}");
        let mut topology = wordcount_topology(
            WordCountParallelism {
                spout: 8,
                splitter: 2,
                counter: 3,
            },
            6.0e6,
        );
        topology.name = name.clone();
        let metrics = fleet.register(topology);
        let bound = staged.bind(&metrics);
        for idx in 0..staged.minutes() {
            bound.fill(&staged, idx, &mut batch);
            fleet.ingest(&name, &batch).expect("registered topology");
        }
    }
    fleet
}

/// Polls a fleet plan job until it finishes, returning the result.
fn wait_for_plan(client: &HttpClient, accepted_body: &str) -> Value {
    let poll = json::parse(accepted_body)
        .expect("job envelope")
        .get("poll")
        .and_then(Value::as_str)
        .expect("poll url")
        .to_string();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = client.get(&poll).expect("poll round-trip");
        let state = json::parse(&body).expect("job body");
        match state.get("state").and_then(Value::as_str) {
            Some("done") => return state.get("result").expect("result").clone(),
            Some("failed") => panic!("fleet plan failed: {body}"),
            _ => {
                assert_eq!(status, 202, "{body}");
                assert!(Instant::now() < deadline, "fleet plan timed out");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Sums a numeric field across a plan result's topology outcomes.
fn sum_field(result: &Value, field: &str) -> f64 {
    result
        .get("topologies")
        .and_then(Value::as_array)
        .expect("topologies array")
        .iter()
        .map(|t| t.get(field).and_then(Value::as_f64).unwrap_or(0.0))
        .sum()
}

#[test]
fn fleet_tier_end_to_end() {
    let fleet = build_fleet();

    // Shard assignment is the pure rendezvous hash, and every shard
    // hosts a sensible share of the 64 topologies.
    let mut expected = [0usize; SHARDS];
    for i in 0..TOPOLOGIES {
        let name = format!("tenant-{i:02}");
        let shard = assign_shard(&name, SHARDS);
        assert_eq!(fleet.shard_of(&name), Some(shard), "{name}");
        expected[shard] += 1;
    }
    assert!(expected.iter().all(|c| *c > 0), "{expected:?}");

    let service = FleetService::new(Arc::clone(&fleet), 2);
    let server = HttpServer::serve("127.0.0.1:0", 4, service.handler()).unwrap();
    let client = HttpClient::new(server.local_addr());

    // Health reports the same per-shard layout over HTTP.
    let (status, body) = client.get("/fleet/health").unwrap();
    assert_eq!(status, 200, "{body}");
    let health = json::parse(&body).unwrap();
    assert_eq!(
        health.get("topologies").and_then(Value::as_f64),
        Some(TOPOLOGIES as f64)
    );
    let shards = health.get("shards").and_then(Value::as_array).unwrap();
    assert_eq!(shards.len(), SHARDS);
    for shard in shards {
        let index = shard.get("shard").and_then(Value::as_f64).unwrap() as usize;
        assert_eq!(
            shard.get("topologies").and_then(Value::as_f64),
            Some(expected[index] as f64),
            "shard {index}"
        );
        // Every shard ingested its topologies' batches (40 staged
        // minutes each) and nothing else.
        assert_eq!(
            shard.get("routed_batches").and_then(Value::as_f64),
            Some((expected[index] * 40) as f64),
            "shard {index}"
        );
    }

    // Unconstrained cluster plan: every topology plans cleanly and the
    // grant covers its peak demand.
    let (status, body) = client.post("/fleet/plan", "{}").unwrap();
    assert_eq!(status, 202, "{body}");
    let free = wait_for_plan(&client, &body);
    assert_eq!(free.get("errors").and_then(Value::as_f64), Some(0.0));
    let outcomes = free.get("topologies").and_then(Value::as_array).unwrap();
    assert_eq!(outcomes.len(), TOPOLOGIES);
    let peak_sum = sum_field(&free, "granted_containers");
    assert!(peak_sum >= TOPOLOGIES as f64, "grants: {peak_sum}");
    for outcome in outcomes {
        assert_eq!(outcome.get("risk").and_then(Value::as_f64), Some(0.0));
        assert!(outcome.get("plan").is_some(), "{outcome:?}");
    }
    // First contact with every topology: all plans were cold.
    assert_eq!(
        free.get("cold").and_then(Value::as_f64),
        Some(TOPOLOGIES as f64)
    );
    assert_eq!(free.get("unchanged").and_then(Value::as_f64), Some(0.0));

    // A second identical plan over unchanged data is served entirely
    // from the per-shard plan caches: every topology counts as
    // unchanged and the outcomes are byte-identical.
    let (status, body) = client.post("/fleet/plan", "{}").unwrap();
    assert_eq!(status, 202, "{body}");
    let cached = wait_for_plan(&client, &body);
    assert_eq!(
        cached.get("unchanged").and_then(Value::as_f64),
        Some(TOPOLOGIES as f64)
    );
    assert_eq!(cached.get("drifted").and_then(Value::as_f64), Some(0.0));
    assert_eq!(cached.get("cold").and_then(Value::as_f64), Some(0.0));
    assert_eq!(
        cached.get("topologies"),
        free.get("topologies"),
        "cached fleet plan must match the plan it memoises"
    );

    // The cache traffic is visible per shard in /fleet/health.
    let (status, body) = client.get("/fleet/health").unwrap();
    assert_eq!(status, 200, "{body}");
    let health = json::parse(&body).unwrap();
    let mut plan_hits = 0.0;
    let mut plan_misses = 0.0;
    for shard in health.get("shards").and_then(Value::as_array).unwrap() {
        for field in [
            "plan_cache_hits",
            "plan_cache_misses",
            "plan_warm_starts",
            "plan_cache_evictions",
        ] {
            assert!(shard.get(field).is_some(), "missing {field}: {shard:?}");
        }
        plan_hits += shard
            .get("plan_cache_hits")
            .and_then(Value::as_f64)
            .unwrap();
        plan_misses += shard
            .get("plan_cache_misses")
            .and_then(Value::as_f64)
            .unwrap();
    }
    assert_eq!(plan_hits, TOPOLOGIES as f64, "second plan hits throughout");
    assert_eq!(
        plan_misses, TOPOLOGIES as f64,
        "first plan missed throughout"
    );

    // Budgeted cluster plan: grants sum within the cluster budget, and
    // every produced timeline fits its topology's grant.
    let budget = (peak_sum as u32)
        .saturating_sub(TOPOLOGIES as u32 / 2)
        .max(1);
    let (status, body) = client
        .post("/fleet/plan", &format!("{{\"budget\": {budget}}}"))
        .unwrap();
    assert_eq!(status, 202, "{body}");
    let tight = wait_for_plan(&client, &body);
    assert_eq!(
        tight.get("budget").and_then(Value::as_f64),
        Some(f64::from(budget))
    );
    let granted = sum_field(&tight, "granted_containers");
    assert!(
        granted <= f64::from(budget),
        "granted {granted} of budget {budget}"
    );
    assert_eq!(
        tight.get("total_granted").and_then(Value::as_f64),
        Some(granted)
    );
    for outcome in tight.get("topologies").and_then(Value::as_array).unwrap() {
        if let Some(plan) = outcome.get("plan") {
            let peak = plan.get("peak_containers").and_then(Value::as_f64).unwrap();
            let grant = outcome
                .get("granted_containers")
                .and_then(Value::as_f64)
                .unwrap();
            assert!(peak <= grant, "{outcome:?}");
        }
    }

    // Below the overload threshold (admission disabled here), nothing
    // was shed: the shed counter is absent from the exposition or zero.
    let (status, exposition) = client.get("/metrics/service").unwrap();
    assert_eq!(status, 200);
    for line in exposition
        .lines()
        .filter(|l| l.starts_with("caladrius_fleet_shed_total{"))
    {
        assert!(line.trim_end().ends_with(" 0"), "unexpected shed: {line}");
    }

    // Forced shed: a second front door over the same fleet with an
    // impossible SLO sheds low-priority plans once the route histogram
    // has a sample, with a Retry-After hint; high priority still lands.
    let shedding = FleetService::with_admission(
        Arc::clone(&fleet),
        2,
        AdmissionConfig {
            enabled: true,
            slo_p99_seconds: -1.0,
            retry_after_seconds: 7,
            ..AdmissionConfig::default()
        },
    );
    let shed_server = HttpServer::serve("127.0.0.1:0", 2, shedding.handler()).unwrap();
    let shed_client = HttpClient::new(shed_server.local_addr());
    let (status, _, body) = shed_client
        .post_full("/fleet/plan", "{}", &[("x-priority", "high")])
        .unwrap();
    assert_eq!(status, 202, "{body}");
    let (status, headers, body) = shed_client.post_full("/fleet/plan", "{}", &[]).unwrap();
    assert_eq!(status, 429, "{body}");
    assert_eq!(headers.get("retry-after").map(String::as_str), Some("7"));
    assert!(body.contains("shed"), "{body}");
    let (status, _, _) = shed_client
        .post_full("/fleet/plan", "{}", &[("x-priority", "high")])
        .unwrap();
    assert_eq!(status, 202);

    // The shed shows up in the exposition now.
    let (_, exposition) = shed_client.get("/metrics/service").unwrap();
    assert!(
        exposition
            .lines()
            .any(|l| l.starts_with("caladrius_fleet_shed_total{") && !l.trim_end().ends_with(" 0")),
        "shed counter missing after forced shed"
    );
}
