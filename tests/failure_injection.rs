//! Failure-injection integration tests: the stack must degrade loudly
//! and precisely, not silently.

use caladrius::core::error::CoreError;
use caladrius::core::providers::{SimMetricsProvider, StaticTracker};
use caladrius::core::service::SourceRateSpec;
use caladrius::core::Caladrius;
use caladrius::sim::grouping::Grouping;
use caladrius::sim::metrics::metric;
use caladrius::sim::prelude::*;
use caladrius::sim::profiles::RateProfile;
use caladrius::tsdb::Aggregation;
use caladrius::workload::wordcount::{
    wordcount_topology, wordcount_topology_with, WordCountParallelism,
};
use std::collections::HashMap;
use std::sync::Arc;

#[test]
fn user_logic_failures_show_in_the_errors_signal() {
    // The "errors" golden signal (paper §III-B1): a bolt failing 10 % of
    // tuples must report fail-counts and proportionally reduced output.
    let topo = TopologyBuilder::new("flaky")
        .spout("spout", 2, RateProfile::constant(1000.0), 60)
        .bolt(
            "worker",
            2,
            WorkProfile::new(5_000.0, 1.0, 8)
                .with_gateway_overhead(0.0)
                .with_fail_rate(0.10),
        )
        .edge("spout", "worker", Grouping::shuffle())
        .build()
        .unwrap();
    let mut sim = Simulation::new(
        topo,
        SimConfig {
            metric_noise: 0.0,
            ..SimConfig::default()
        },
    )
    .unwrap();
    sim.warmup_minutes(2);
    let metrics = sim.run_minutes(5);
    let mean = |name: &str| {
        let s = metrics.component_sum(name, Some("worker"), 0, i64::MAX);
        Aggregation::Mean.apply(s.iter().map(|x| x.value))
    };
    let executed = mean(metric::EXECUTE_COUNT);
    let failed = mean(metric::FAIL_COUNT);
    let emitted = mean(metric::EMIT_COUNT);
    assert!((failed / executed - 0.10).abs() < 0.01);
    assert!((emitted / executed - 0.90).abs() < 0.01);
}

#[test]
fn biased_fields_scaling_is_refused_not_guessed() {
    // Skewed keys (Zipf over a tiny key set) bias the counter instances;
    // asking Caladrius to scale that component must produce the paper's
    // documented refusal, not a silent wrong answer.
    let parallelism = WordCountParallelism {
        spout: 8,
        splitter: 2,
        counter: 3,
    };
    let metrics = SimMetrics::new("wordcount");
    let grouping = Grouping::fields_zipf(20, 1.6);
    for (leg, rate) in [6.0e6, 12.0e6, 20.0e6].into_iter().enumerate() {
        let topo = wordcount_topology_with(
            parallelism,
            RateProfile::constant_per_min(rate),
            Some(grouping.clone()),
        );
        let mut sim = Simulation::new(
            topo,
            SimConfig {
                metric_noise: 0.0,
                ..SimConfig::default()
            },
        )
        .unwrap();
        sim.skip_to_minute(leg as u64 * 60);
        sim.warmup_minutes(20);
        sim.run_minutes_into(10, &metrics);
    }
    let tracker = StaticTracker::new().with(wordcount_topology_with(
        parallelism,
        RateProfile::constant_per_min(20.0e6),
        Some(grouping),
    ));
    let caladrius = Caladrius::new(
        Arc::new(SimMetricsProvider::new(metrics)),
        Arc::new(tracker),
    );
    let model = caladrius.fit_topology_model("wordcount").unwrap();
    let counter = model.component_model("counter").unwrap();
    assert!(
        !counter.is_unbiased(),
        "zipf keys must register as biased: bias {}",
        counter.bias()
    );

    // Same parallelism: fine (bias assumed stable).
    let same = model.predict(&HashMap::new(), 10.0e6);
    assert!(same.is_ok());
    // New counter parallelism: refused.
    let scaled = HashMap::from([("counter".to_string(), 5u32)]);
    match model.predict(&scaled, 10.0e6) {
        Err(CoreError::Unpredictable(msg)) => assert!(msg.contains("fields")),
        other => panic!("expected Unpredictable, got {other:?}"),
    }
}

#[test]
fn missing_metrics_are_a_loud_error() {
    // A tracker that knows the topology but a metrics store that has
    // never heard of it.
    let parallelism = WordCountParallelism::default();
    let empty = SimMetrics::new("wordcount");
    let caladrius = Caladrius::new(
        Arc::new(SimMetricsProvider::new(empty)),
        Arc::new(StaticTracker::new().with(wordcount_topology(parallelism, 1.0e6))),
    );
    match caladrius.evaluate("wordcount", &HashMap::new(), &SourceRateSpec::Fixed(1.0e6)) {
        Err(CoreError::Unknown(msg)) => assert!(msg.contains("no metrics")),
        other => panic!("expected Unknown(no metrics), got {other:?}"),
    }
}

#[test]
fn gappy_metrics_still_fit() {
    // Drop whole stretches of minutes (metrics outages): fitting and
    // forecasting must survive on the remaining windows.
    let parallelism = WordCountParallelism {
        spout: 8,
        splitter: 2,
        counter: 3,
    };
    let metrics = SimMetrics::new("wordcount");
    for (leg, rate) in [8.0e6, 16.0e6, 26.0e6].into_iter().enumerate() {
        let mut sim = Simulation::new(
            wordcount_topology(parallelism, rate),
            SimConfig {
                metric_noise: 0.0,
                ..SimConfig::default()
            },
        )
        .unwrap();
        // Scatter short recording bursts with gaps between them.
        sim.skip_to_minute(leg as u64 * 100);
        sim.warmup_minutes(20);
        for _ in 0..3 {
            sim.run_minutes_into(3, &metrics);
            sim.warmup_minutes(7); // 7-minute metric outage
        }
    }
    let caladrius = Caladrius::new(
        Arc::new(SimMetricsProvider::new(metrics)),
        Arc::new(StaticTracker::new().with(wordcount_topology(parallelism, 26.0e6))),
    );
    let model = caladrius.fit_topology_model("wordcount").unwrap();
    let splitter = model.component_model("splitter").unwrap();
    assert!((splitter.instance.alpha - 7.63).abs() < 0.2);
    let forecasts = caladrius
        .forecast_traffic("wordcount", Some(&["prophet".to_string()]))
        .unwrap();
    assert!(forecasts[0].mean.is_finite());
}

#[test]
fn invalid_topologies_and_requests_are_rejected() {
    // Zero parallelism.
    assert!(TopologyBuilder::new("bad")
        .spout("s", 0, RateProfile::constant(1.0), 8)
        .build()
        .is_err());
    // Disconnected bolt.
    assert!(TopologyBuilder::new("bad")
        .spout("s", 1, RateProfile::constant(1.0), 8)
        .bolt("island", 1, WorkProfile::new(1.0, 1.0, 8))
        .build()
        .is_err());
    // Negative what-if rate at the service level.
    let parallelism = WordCountParallelism::default();
    let metrics = SimMetrics::new("wordcount");
    let mut sim =
        Simulation::new(wordcount_topology(parallelism, 1.0e6), SimConfig::default()).unwrap();
    sim.run_minutes_into(5, &metrics);
    let caladrius = Caladrius::new(
        Arc::new(SimMetricsProvider::new(metrics)),
        Arc::new(StaticTracker::new().with(wordcount_topology(parallelism, 1.0e6))),
    );
    assert!(matches!(
        caladrius.evaluate("wordcount", &HashMap::new(), &SourceRateSpec::Fixed(-5.0)),
        Err(CoreError::InvalidRequest(_))
    ));
    let zero = HashMap::from([("splitter".to_string(), 0u32)]);
    assert!(caladrius
        .evaluate("wordcount", &zero, &SourceRateSpec::Fixed(1.0e6))
        .is_err());
}
