//! Plan-cache acceptance: unchanged data serves bit-identical cached
//! timelines with zero new searches; new ingest past the watermark, a
//! tracker plan bump, or changed `ResourceLimits` each invalidate; and
//! the warm-started search matches the cold one on the fitted models.
//!
//! Runs under `CALADRIUS_THREADS=1` in CI — every assertion here is
//! deterministic.

use caladrius::core::capacity::{CapacityPlanRequest, ModelOracle};
use caladrius::core::providers::{ClusterTracker, SimMetricsProvider};
use caladrius::core::Caladrius;
use caladrius::planner::{plan_horizon, plan_horizon_warm, WindowSpec};
use caladrius::sim::cluster::Cluster;
use caladrius::sim::metrics::SimMetrics;
use caladrius::sim::prelude::*;
use caladrius::workload::wordcount::{wordcount_topology, WordCountParallelism};
use parking_lot::RwLock;
use std::sync::Arc;

const PARALLELISM: WordCountParallelism = WordCountParallelism {
    spout: 8,
    splitter: 4,
    counter: 3,
};

/// Sweeps the topology through several rate legs so the fitted models
/// see both slopes and knees (same recipe as the capacity_plan suite).
fn sweep(rates: &[f64]) -> SimMetrics {
    let metrics = SimMetrics::new("wordcount");
    for (leg, rate) in rates.iter().enumerate() {
        let mut sim = Simulation::new(
            wordcount_topology(PARALLELISM, *rate),
            SimConfig {
                metric_noise: 0.0,
                ..SimConfig::default()
            },
        )
        .unwrap();
        sim.skip_to_minute(leg as u64 * 100);
        sim.warmup_minutes(30);
        sim.run_minutes_into(10, &metrics);
    }
    metrics
}

/// A fitted service over mutable seams: the shared metrics store (for
/// watermark-advancing ingest) and the cluster (for plan-version bumps).
fn service() -> (Caladrius, SimMetrics, Arc<RwLock<Cluster>>) {
    let metrics = sweep(&[4.0e6, 8.0e6, 12.0e6, 16.0e6, 20.0e6, 26.0e6]);
    let cluster = Arc::new(RwLock::new(Cluster::new()));
    cluster
        .write()
        .submit(
            wordcount_topology(PARALLELISM, 20.0e6),
            PackingAlgorithm::RoundRobin { num_containers: 2 },
        )
        .unwrap();
    let caladrius = Caladrius::new(
        Arc::new(SimMetricsProvider::new(metrics.clone())),
        Arc::new(ClusterTracker::new(Arc::clone(&cluster))),
    );
    (caladrius, metrics, cluster)
}

/// Runs fresh sim minutes into the shared store past its watermark.
fn ingest_fresh_minutes(metrics: &SimMetrics, at_minute: u64, minutes: u64) {
    let mut sim = Simulation::new(
        wordcount_topology(PARALLELISM, 18.0e6),
        SimConfig {
            metric_noise: 0.0,
            ..SimConfig::default()
        },
    )
    .unwrap();
    sim.skip_to_minute(at_minute);
    sim.run_minutes_into(minutes, metrics);
}

#[test]
fn unchanged_data_serves_bit_identical_plans_without_searching() {
    let (caladrius, _metrics, _cluster) = service();
    let request = CapacityPlanRequest::default();

    let first = caladrius.plan_capacity("wordcount", &request).unwrap();
    let stats = caladrius.model_cache_stats();
    assert_eq!(stats.plans, 1);
    let evals_after_first = stats.plan_evals;
    assert!(evals_after_first > 0);

    // Unchanged data: the cached timeline comes back verbatim — not a
    // re-derived equal plan, the stored one — with zero new searches,
    // zero new oracle evaluations, and zero new model fits.
    let fits_before = stats.fits;
    for _ in 0..3 {
        let again = caladrius.plan_capacity("wordcount", &request).unwrap();
        assert_eq!(again, first, "cache hit must be bit-identical");
    }
    let stats = caladrius.model_cache_stats();
    assert_eq!(stats.plans, 1, "cache hits must not run the search");
    assert_eq!(stats.plan_evals, evals_after_first);
    assert_eq!(stats.fits, fits_before);
    let plan_cache = caladrius.plan_cache_stats();
    assert_eq!((plan_cache.hits, plan_cache.misses), (3, 1));
    assert_eq!(plan_cache.warm_starts, 0, "first plan is cold");
}

#[test]
fn new_ingest_past_the_watermark_invalidates_and_warm_starts() {
    let (caladrius, metrics, _cluster) = service();
    let request = CapacityPlanRequest::default();

    caladrius.plan_capacity("wordcount", &request).unwrap();
    let watermark = caladrius
        .metrics_provider()
        .latest_minute("wordcount")
        .unwrap();

    ingest_fresh_minutes(&metrics, watermark as u64 / 60_000 + 1, 3);
    assert!(
        caladrius
            .metrics_provider()
            .latest_minute("wordcount")
            .unwrap()
            > watermark,
        "fresh minutes must advance the watermark"
    );

    let replanned = caladrius.plan_capacity("wordcount", &request).unwrap();
    assert!(!replanned.windows.is_empty());
    let stats = caladrius.model_cache_stats();
    assert_eq!(stats.plans, 2, "moved watermark must force a new search");
    let plan_cache = caladrius.plan_cache_stats();
    assert_eq!(plan_cache.misses, 2);
    assert_eq!(
        plan_cache.warm_starts, 1,
        "the re-plan must warm-start from the stale timeline"
    );

    // The fresh plan is cached in turn.
    let again = caladrius.plan_capacity("wordcount", &request).unwrap();
    assert_eq!(again, replanned);
    assert_eq!(caladrius.plan_cache_stats().hits, 1);
}

#[test]
fn tracker_plan_bump_invalidates() {
    let (caladrius, _metrics, cluster) = service();
    let request = CapacityPlanRequest::default();

    caladrius.plan_capacity("wordcount", &request).unwrap();
    // A parallelism update bumps the tracker version: models and cached
    // plans against the old physical plan are both stale.
    cluster
        .write()
        .update_parallelism("wordcount", &[("splitter", 5)])
        .unwrap();

    caladrius.plan_capacity("wordcount", &request).unwrap();
    let stats = caladrius.model_cache_stats();
    assert_eq!(stats.plans, 2, "plan bump must force a new search");
    let plan_cache = caladrius.plan_cache_stats();
    assert_eq!((plan_cache.hits, plan_cache.misses), (0, 2));
    assert_eq!(plan_cache.warm_starts, 1);
}

#[test]
fn changed_resource_limits_are_a_distinct_cache_entry() {
    let (caladrius, _metrics, _cluster) = service();
    let request = CapacityPlanRequest::default();

    let unconstrained = caladrius.plan_capacity("wordcount", &request).unwrap();

    // Different limits → different request key → full search, even on
    // identical data; the entries then coexist.
    let mut constrained = request.clone();
    constrained.planner.limits.max_containers = unconstrained.peak_cost.containers.max(2);
    let bounded = caladrius.plan_capacity("wordcount", &constrained).unwrap();
    assert!(bounded.peak_cost.containers <= constrained.planner.limits.max_containers);
    let stats = caladrius.model_cache_stats();
    assert_eq!(
        stats.plans, 2,
        "changed ResourceLimits must not serve the unconstrained plan"
    );
    let plan_cache = caladrius.plan_cache_stats();
    assert_eq!(plan_cache.misses, 2);
    assert_eq!(
        plan_cache.warm_starts, 0,
        "a new request key has no warm seed"
    );

    // Both entries hit from here on.
    assert_eq!(
        caladrius.plan_capacity("wordcount", &request).unwrap(),
        unconstrained
    );
    assert_eq!(
        caladrius.plan_capacity("wordcount", &constrained).unwrap(),
        bounded
    );
    assert_eq!(caladrius.plan_cache_stats().hits, 2);
}

#[test]
fn warm_search_matches_cold_on_the_fitted_models() {
    let (caladrius, _metrics, _cluster) = service();
    let model = Arc::new(caladrius.fit_topology_model("wordcount").unwrap());
    let cpu_models = Arc::new(caladrius.fit_cpu_models("wordcount").unwrap());
    let window = |i: usize, rate: f64| WindowSpec {
        start_ts: i as i64 * 900_000,
        end_ts: (i as i64 + 1) * 900_000,
        peak_rate: rate,
    };
    let config = caladrius::planner::PlannerConfig::default();
    let rates = [8.0e6, 14.0e6, 22.0e6, 11.0e6];
    let oracle = ModelOracle::new(
        Arc::clone(&model),
        Arc::clone(&cpu_models),
        vec!["splitter".into(), "counter".into()],
    );
    let before: Vec<WindowSpec> = rates
        .iter()
        .enumerate()
        .map(|(i, r)| window(i, *r))
        .collect();
    let prev = plan_horizon(&oracle, &[], &before, &config).unwrap();

    // Perturb every window and compare the cold search with the search
    // warm-started from the pre-perturbation timeline. The model oracle
    // is separable (per-component monotone constraints at fixed input
    // rates), so the plans must agree exactly.
    for drift in [0.85, 0.95, 1.0, 1.08, 1.25] {
        let after: Vec<WindowSpec> = rates
            .iter()
            .enumerate()
            .map(|(i, r)| window(i, *r * drift))
            .collect();
        let cold = plan_horizon(&oracle, &[], &after, &config).unwrap();
        let warm = plan_horizon_warm(&oracle, &[], &after, &config, Some(&prev)).unwrap();
        assert_eq!(warm.windows, cold.windows, "drift {drift}");
        assert_eq!(warm.peak_parallelisms, cold.peak_parallelisms);
        if drift == 1.0 {
            assert!(
                warm.oracle_evals < cold.oracle_evals,
                "unchanged rates: warm spent {} evals vs cold {}",
                warm.oracle_evals,
                cold.oracle_evals
            );
        }
    }
}
