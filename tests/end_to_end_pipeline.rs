//! End-to-end reproduction of the paper's §V-C validation flow:
//! observe the Splitter component at parallelism 3, fit the Caladrius
//! models from the recorded metrics, predict the behaviour at
//! parallelisms 2 and 4, then actually deploy those configurations in
//! the simulator and check the predictions — the ST prediction error
//! must stay in the paper's few-percent regime.

use caladrius::core::model::relative_error;
use caladrius::core::providers::{SimMetricsProvider, StaticTracker};
use caladrius::core::Caladrius;
use caladrius::sim::metrics::metric;
use caladrius::sim::prelude::*;
use caladrius::tsdb::Aggregation;
use caladrius::workload::wordcount::{
    wordcount_topology, WordCountParallelism, ALPHA, SPLITTER_CAPACITY_PER_MIN,
};
use std::collections::HashMap;
use std::sync::Arc;

fn mean(samples: &[caladrius::tsdb::Sample]) -> f64 {
    Aggregation::Mean.apply(samples.iter().map(|s| s.value))
}

/// Simulates a parallelism configuration at one offered rate and returns
/// the mean measured (input, output) of the splitter component.
fn measure(splitter_p: u32, rate: f64) -> (f64, f64) {
    let parallelism = WordCountParallelism {
        spout: 8,
        splitter: splitter_p,
        counter: 6,
    };
    let mut sim =
        Simulation::new(wordcount_topology(parallelism, rate), SimConfig::default()).unwrap();
    sim.warmup_minutes(30);
    let metrics = sim.run_minutes(10);
    (
        mean(&metrics.component_sum(metric::EXECUTE_COUNT, Some("splitter"), 0, i64::MAX)),
        mean(&metrics.component_sum(metric::EMIT_COUNT, Some("splitter"), 0, i64::MAX)),
    )
}

fn caladrius_over_p3_sweep() -> Caladrius {
    let observed = WordCountParallelism {
        spout: 8,
        splitter: 3,
        counter: 6,
    };
    let metrics = SimMetrics::new("wordcount");
    for (leg, rate) in [8.0e6, 16.0e6, 24.0e6, 30.0e6, 40.0e6]
        .into_iter()
        .enumerate()
    {
        let mut sim =
            Simulation::new(wordcount_topology(observed, rate), SimConfig::default()).unwrap();
        sim.skip_to_minute(leg as u64 * 60);
        sim.warmup_minutes(30);
        sim.run_minutes_into(10, &metrics);
    }
    Caladrius::new(
        Arc::new(SimMetricsProvider::new(metrics)),
        Arc::new(StaticTracker::new().with(wordcount_topology(observed, 30.0e6))),
    )
}

#[test]
fn component_scaling_predictions_match_deployments() {
    let caladrius = caladrius_over_p3_sweep();
    let model = caladrius.fit_topology_model("wordcount").unwrap();
    let splitter = model.component_model("splitter").unwrap();

    // The fit recovers the calibrated physics.
    assert!(relative_error(splitter.instance.alpha, ALPHA) < 0.02);
    let sat = splitter.instance.saturation.expect("sweep saturates p=3");
    assert!(relative_error(sat.input_sp, SPLITTER_CAPACITY_PER_MIN) < 0.05);

    // Predict the saturated output (ST) at p=2 and p=4, then deploy and
    // measure (paper Fig. 8; reported errors 2.9 % and 2.5 %).
    for (p, probe_rate) in [(2u32, 30.0e6), (4u32, 55.0e6)] {
        let predicted_st = splitter.predict(p, probe_rate).unwrap().output_rate;
        let (_, measured_out) = measure(p, probe_rate);
        let err = relative_error(predicted_st, measured_out);
        assert!(
            err < 0.05,
            "p={p}: predicted ST {predicted_st:.3e}, measured {measured_out:.3e}, error {:.1}%",
            err * 100.0
        );
    }

    // And in the linear regime the prediction tracks the input line.
    for (p, probe_rate) in [(2u32, 12.0e6), (4u32, 24.0e6)] {
        let predicted = splitter.predict(p, probe_rate).unwrap();
        let (measured_in, measured_out) = measure(p, probe_rate);
        assert!(relative_error(predicted.input_rate, measured_in) < 0.03);
        assert!(relative_error(predicted.output_rate, measured_out) < 0.03);
    }
}

#[test]
fn topology_level_prediction_matches_deployment() {
    // Paper §V-D: predict the whole topology's output on the critical
    // path with the Fig. 1 parallelisms, then deploy it (error 2.8 % in
    // the paper).
    let caladrius = caladrius_over_p3_sweep();
    let model = caladrius.fit_topology_model("wordcount").unwrap();

    let fig1 = HashMap::from([
        ("spout".to_string(), 2u32),
        ("splitter".to_string(), 2u32),
        ("counter".to_string(), 4u32),
    ]);
    // Saturating rate for splitter p=2 (knee ≈ 22 M/min).
    let rate = 30.0e6;
    let predicted = model.predict(&fig1, rate).unwrap();
    assert_eq!(predicted.bottleneck.as_deref(), Some("splitter"));

    let parallelism = WordCountParallelism {
        spout: 2,
        splitter: 2,
        counter: 4,
    };
    let mut sim =
        Simulation::new(wordcount_topology(parallelism, rate), SimConfig::default()).unwrap();
    sim.warmup_minutes(40);
    let metrics = sim.run_minutes(15);
    let measured =
        mean(&metrics.component_sum(metric::EXECUTE_COUNT, Some("counter"), 0, i64::MAX));

    let err = relative_error(predicted.sink_output_rate, measured);
    assert!(
        err < 0.06,
        "critical path: predicted {:.3e}, measured {measured:.3e}, error {:.1}%",
        predicted.sink_output_rate,
        err * 100.0
    );
}

#[test]
fn saturation_point_prediction_matches_backpressure_onset() {
    // Eq. 13/14: the predicted topology saturation rate must separate
    // simulated runs with and without backpressure.
    let caladrius = caladrius_over_p3_sweep();
    let model = caladrius.fit_topology_model("wordcount").unwrap();
    let none = HashMap::new();
    let sat = model
        .saturation_source_rate(&none)
        .unwrap()
        .expect("observable knee");

    let bp_at = |rate: f64| -> f64 {
        let parallelism = WordCountParallelism {
            spout: 8,
            splitter: 3,
            counter: 6,
        };
        let mut sim =
            Simulation::new(wordcount_topology(parallelism, rate), SimConfig::default()).unwrap();
        sim.warmup_minutes(40);
        let metrics = sim.run_minutes(10);
        mean(&metrics.component_sum(metric::BACKPRESSURE_TIME, None, 0, i64::MAX))
    };

    assert_eq!(
        bp_at(sat * 0.9),
        0.0,
        "10% below the predicted knee: no backpressure"
    );
    assert!(
        bp_at(sat * 1.15) > 10_000.0,
        "15% above the predicted knee: heavy backpressure"
    );
}
