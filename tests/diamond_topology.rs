//! End-to-end model validation on the fan-out/fan-in diamond topology —
//! the multi-path case the paper's §IV-B3 alludes to ("multiple
//! sub-critical path candidates can be considered and predicted at the
//! same time") but does not evaluate.

use caladrius::core::model::relative_error;
use caladrius::core::providers::{SimMetricsProvider, StaticTracker};
use caladrius::core::Caladrius;
use caladrius::sim::metrics::metric;
use caladrius::sim::prelude::*;
use caladrius::tsdb::Aggregation;
use caladrius::workload::diamond::{diamond_topology, DiamondParallelism, BRANCH_CAPACITY_PER_MIN};
use std::collections::HashMap;
use std::sync::Arc;

fn mean(samples: &[caladrius::tsdb::Sample]) -> f64 {
    Aggregation::Mean.apply(samples.iter().map(|s| s.value))
}

fn fitted_caladrius() -> Caladrius {
    let parallelism = DiamondParallelism::default();
    let metrics = SimMetrics::new("diamond");
    // Sweep through linear and saturated regimes (branches knee at 30 M).
    for (leg, rate) in [8.0e6, 16.0e6, 24.0e6, 28.0e6, 36.0e6]
        .into_iter()
        .enumerate()
    {
        let mut sim =
            Simulation::new(diamond_topology(parallelism, rate), SimConfig::default()).unwrap();
        sim.skip_to_minute(leg as u64 * 100);
        sim.warmup_minutes(35);
        sim.run_minutes_into(10, &metrics);
    }
    Caladrius::new(
        Arc::new(SimMetricsProvider::new(metrics)),
        Arc::new(StaticTracker::new().with(diamond_topology(parallelism, 8.0e6))),
    )
}

#[test]
fn dag_model_predicts_fan_out_fan_in() {
    let caladrius = fitted_caladrius();
    let model = caladrius.fit_topology_model("diamond").unwrap();

    // Two critical-path candidates through the diamond.
    let mut paths = model.critical_path_candidates().unwrap();
    paths.sort();
    assert_eq!(
        paths,
        vec![
            vec!["events", "enrich", "device", "aggregator"],
            vec!["events", "enrich", "geo", "aggregator"],
        ]
    );

    // Linear regime: aggregator sees 2x the offered rate.
    let pred = model.predict(&HashMap::new(), 10.0e6).unwrap();
    assert!(pred.bottleneck.is_none());
    assert!(
        relative_error(pred.sink_output_rate, 20.0e6) < 0.02,
        "fan-in doubling: predicted {:.2e}",
        pred.sink_output_rate
    );

    // The topology knee is set by the branches: 2 instances x 15 M each.
    let sat = model
        .saturation_source_rate(&HashMap::new())
        .unwrap()
        .unwrap();
    assert!(
        relative_error(sat, 2.0 * BRANCH_CAPACITY_PER_MIN) < 0.05,
        "topology knee {:.2e}",
        sat
    );
    // Probe between the branch knee (30 M) and the enrich knee (40 M) so
    // the diagnosis is unambiguous.
    let pred = model.predict(&HashMap::new(), 34.0e6).unwrap();
    let bottleneck = pred.bottleneck.expect("saturated");
    assert!(
        bottleneck == "geo" || bottleneck == "device",
        "bottleneck {bottleneck}"
    );

    // Scaling the branches and the enrich bolt moves the knee to 4 x 15 M
    // = 60 M (the branches again, at their new parallelism). Note the
    // aggregator's knee is NOT the limit here even though its capacity
    // (2 x 40 M input = 40 M offered) is lower: the aggregator never
    // saturated during training — the branches always throttled the
    // topology first — so its knee is unobservable and the model honestly
    // treats it as unbounded (the paper needs "one [point] in the
    // saturation interval" to place a knee).
    let proposal = HashMap::from([
        ("geo".to_string(), 4u32),
        ("device".to_string(), 4u32),
        ("enrich".to_string(), 4u32),
    ]);
    let sat = model.saturation_source_rate(&proposal).unwrap().unwrap();
    assert!(
        relative_error(sat, 60.0e6) < 0.05,
        "branch-bound knee {:.2e}",
        sat
    );
    let pred = model.predict(&proposal, 70.0e6).unwrap();
    let bottleneck = pred.bottleneck.expect("saturated at 70 M");
    assert!(
        bottleneck == "geo" || bottleneck == "device",
        "bottleneck {bottleneck}"
    );
    assert!(
        model
            .component_model("aggregator")
            .unwrap()
            .instance
            .saturation
            .is_none(),
        "the aggregator's knee must be honestly unknown"
    );
}

#[test]
fn diamond_prediction_matches_fresh_deployment() {
    let caladrius = fitted_caladrius();
    let model = caladrius.fit_topology_model("diamond").unwrap();

    // Dry-run a scaled proposal, then actually deploy it and compare the
    // aggregate throughput.
    let proposal = HashMap::from([("geo".to_string(), 3u32), ("device".to_string(), 3u32)]);
    let rate = 26.0e6;
    let predicted = model.predict(&proposal, rate).unwrap().sink_output_rate;

    let deployed = DiamondParallelism {
        geo: 3,
        device: 3,
        ..DiamondParallelism::default()
    };
    let mut sim = Simulation::new(diamond_topology(deployed, rate), SimConfig::default()).unwrap();
    sim.warmup_minutes(35);
    let metrics = sim.run_minutes(10);
    let measured =
        mean(&metrics.component_sum(metric::EXECUTE_COUNT, Some("aggregator"), 0, i64::MAX));

    let err = relative_error(predicted, measured);
    assert!(
        err < 0.05,
        "diamond dry-run: predicted {predicted:.3e}, measured {measured:.3e}, error {:.1}%",
        err * 100.0
    );
}
