//! Cross-crate property-based tests of the model invariants.

use caladrius::core::model::component::{ComponentModel, GroupingKind};
use caladrius::core::model::instance::{InstanceModel, InstanceObservation, Saturation};
use caladrius::core::model::topology::TopologyModel;
use caladrius::graph::topology_graph::LogicalSpec;
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_instance_model() -> impl Strategy<Value = InstanceModel> {
    (0.1f64..20.0, 1.0f64..1e8, prop::bool::ANY).prop_map(|(alpha, sp, saturated)| {
        InstanceModel::from_params(
            alpha,
            saturated.then_some(Saturation {
                input_sp: sp,
                output_st: alpha * sp,
            }),
        )
    })
}

fn shuffle_component(p: u32, instance: InstanceModel) -> ComponentModel {
    ComponentModel {
        name: "c".into(),
        fitted_parallelism: p,
        instance,
        shares: vec![1.0 / f64::from(p); p as usize],
        grouping: GroupingKind::Shuffle,
    }
}

proptest! {
    /// Eq. 2 is exactly `min(alpha * t, ST)`.
    #[test]
    fn instance_output_is_min_form(model in arb_instance_model(), t in 0.0f64..1e9) {
        let expected = match model.saturation {
            Some(s) => (model.alpha * t).min(s.output_st),
            None => model.alpha * t,
        };
        prop_assert!((model.output_for_source(t) - expected).abs() <= 1e-9 * expected.max(1.0));
    }

    /// The instance model is monotone non-decreasing in the source rate.
    #[test]
    fn instance_output_is_monotone(model in arb_instance_model(), a in 0.0f64..1e8, b in 0.0f64..1e8) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(model.output_for_source(lo) <= model.output_for_source(hi) + 1e-9);
        prop_assert!(model.input_for_source(lo) <= model.input_for_source(hi) + 1e-9);
    }

    /// Inverse round-trips below the knee.
    #[test]
    fn instance_inverse_roundtrips(model in arb_instance_model(), t in 0.0f64..1e8) {
        let below_knee = match model.saturation {
            Some(s) => t < s.input_sp,
            None => true,
        };
        prop_assume!(below_knee);
        let y = model.output_for_source(t);
        let back = model.source_for_output(y);
        prop_assert!((back - t).abs() <= 1e-6 * t.max(1.0), "t={t}, back={back}");
    }

    /// Fitting exact synthetic data recovers the parameters.
    #[test]
    fn instance_fit_recovers_params(alpha in 0.1f64..20.0, sp in 10.0f64..1e6) {
        let obs: Vec<InstanceObservation> = (1..=40)
            .map(|i| {
                let t = sp * i as f64 / 20.0; // sweep to 2x the knee
                let input = t.min(sp);
                InstanceObservation {
                    source_rate: t,
                    input_rate: input,
                    output_rate: alpha * input,
                    backpressured: t > sp,
                }
            })
            .collect();
        let m = InstanceModel::fit(&obs).unwrap();
        prop_assert!((m.alpha - alpha).abs() < 1e-6 * alpha);
        let s = m.saturation.unwrap();
        prop_assert!((s.input_sp - sp).abs() < 1e-6 * sp);
    }

    /// Eq. 9: at p=1 the component model IS the instance model, and
    /// scaling to p multiplies both axes of the curve.
    #[test]
    fn component_shuffle_scaling_identity(
        model in arb_instance_model(),
        p in 1u32..16,
        t in 0.0f64..1e8,
    ) {
        let single = shuffle_component(1, model);
        let multi = shuffle_component(1, model);
        let direct = single.predict(1, t).unwrap().output_rate;
        prop_assert!((direct - model.output_for_source(t)).abs() < 1e-9 * direct.max(1.0));
        // T_c(p, p*t) = p * T_i(t)
        let scaled = multi.predict(p, t * f64::from(p)).unwrap().output_rate;
        prop_assert!(
            (scaled - f64::from(p) * direct).abs() <= 1e-6 * scaled.max(1.0),
            "p={p} t={t}: {scaled} vs {}", f64::from(p) * direct
        );
    }

    /// Component saturation onset scales linearly with parallelism under
    /// shuffle grouping.
    #[test]
    fn component_saturation_scales(model in arb_instance_model(), p in 1u32..16) {
        prop_assume!(model.saturation.is_some());
        let c = shuffle_component(1, model);
        let s1 = c.saturation_source_rate(1).unwrap().unwrap();
        let sp = c.saturation_source_rate(p).unwrap().unwrap();
        prop_assert!((sp - f64::from(p) * s1).abs() < 1e-6 * sp);
    }

    /// Topology DAG prediction equals literal Eq. 12 chaining on a chain
    /// topology, for arbitrary per-component models.
    #[test]
    fn topology_chain_equals_path_product(
        models in prop::collection::vec(arb_instance_model(), 1..5),
        source in 0.0f64..1e7,
    ) {
        let mut spec = LogicalSpec::new("chain").component("spout", 1);
        let mut map = HashMap::new();
        let mut prev = "spout".to_string();
        for (i, m) in models.iter().enumerate() {
            let name = format!("bolt{i}");
            spec = spec.component(name.clone(), 1).edge(prev.clone(), name.clone(), "shuffle");
            map.insert(name.clone(), shuffle_component(1, *m));
            prev = name;
        }
        let topo = TopologyModel::new(spec, map).unwrap();
        let none = HashMap::new();
        let dag = topo.predict(&none, source).unwrap().sink_output_rate;
        // Manual Eq. 12 chain.
        let mut t = source;
        for m in &models {
            t = m.output_for_source(t);
        }
        prop_assert!((dag - t).abs() <= 1e-9 * t.max(1.0));
    }

    /// The topology's saturation point (Eq. 13) is consistent with the
    /// forward prediction (Eq. 12): just below it nothing saturates, just
    /// above it something does.
    #[test]
    fn topology_saturation_point_is_the_boundary(
        alpha in 0.5f64..5.0,
        sp in 100.0f64..1e6,
        p in 1u32..8,
    ) {
        let spec = LogicalSpec::new("t")
            .component("spout", 1)
            .component("bolt", p)
            .edge("spout", "bolt", "shuffle");
        let instance = InstanceModel::from_params(
            alpha,
            Some(Saturation { input_sp: sp, output_st: alpha * sp }),
        );
        let models = HashMap::from([("bolt".to_string(), shuffle_component(p, instance))]);
        let topo = TopologyModel::new(spec, models).unwrap();
        let none = HashMap::new();
        let knee = topo.saturation_source_rate(&none).unwrap().unwrap();
        prop_assert!((knee - f64::from(p) * sp).abs() < 1e-3 * knee);
        prop_assert!(topo.predict(&none, knee * 0.99).unwrap().bottleneck.is_none());
        prop_assert!(topo.predict(&none, knee * 1.01).unwrap().bottleneck.is_some());
    }
}
