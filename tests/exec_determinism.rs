//! Determinism regression suite for the structured-parallelism
//! executor: a wide exec pool must produce *byte-identical* planner
//! and replay output to a 1-thread pool (whose batches run on the
//! zero-synchronisation inline path), and infeasible horizons must
//! surface the same earliest-window error either way.

use caladrius::exec::ExecPool;
use caladrius::planner::{
    plan_horizon_with, replay_timeline_with, Assessment, CapacityOracle, PlanCost, PlanError,
    PlanTimeline, PlannerConfig, ReplayConfig, ResourceLimits, WindowPlan, WindowSpec,
};
use caladrius::workload::wordcount::{wordcount_topology, WordCountParallelism};

/// Analytic four-component chain: component `c` receives
/// `ratio_c × source_rate` tuples/min and an instance serves
/// `service_c` tuples/min, with a 5 % feasibility margin.
struct ChainOracle {
    comps: Vec<(String, f64, f64)>,
}

impl ChainOracle {
    fn new() -> Self {
        Self {
            comps: vec![
                ("ingest".to_string(), 1.0, 2.0e6),
                ("parse".to_string(), 2.0, 5.0e6),
                ("join".to_string(), 1.5, 3.0e6),
                ("sink".to_string(), 0.5, 1.0e6),
            ],
        }
    }
}

impl CapacityOracle for ChainOracle {
    fn components(&self) -> Vec<String> {
        self.comps.iter().map(|c| c.0.clone()).collect()
    }

    fn assess(&self, parallelisms: &[(String, u32)], rate: f64) -> Result<Assessment, PlanError> {
        let mut saturation = f64::INFINITY;
        let mut bottleneck = None;
        let mut cpu = Vec::new();
        for (name, ratio, service) in &self.comps {
            let p = parallelisms
                .iter()
                .find(|(n, _)| n == name)
                .map_or(1.0, |(_, p)| f64::from(*p));
            let sat = service * p / ratio;
            if sat < saturation {
                saturation = sat;
                bottleneck = Some(name.clone());
            }
            cpu.push((name.clone(), 0.05 + 1.0e-8 * ratio * rate / p));
        }
        Ok(Assessment {
            feasible: rate <= saturation * 0.95,
            bottleneck,
            saturation_rate: saturation,
            cpu_per_instance: cpu,
        })
    }
}

fn planner_config() -> PlannerConfig {
    PlannerConfig {
        headroom: 1.1,
        cpu_utilization_cap: 0.9,
        hysteresis_windows: 4,
        limits: ResourceLimits {
            max_parallelism: 128,
            ..ResourceLimits::default()
        },
        ..PlannerConfig::default()
    }
}

/// 96 quarter-hour windows of diurnal traffic (a repeating 24-step
/// ramp), so many windows share a planned rate and both the rate dedup
/// and the smoothing memo are exercised.
fn diurnal_windows(n: usize) -> Vec<WindowSpec> {
    (0..n)
        .map(|i| {
            let phase = i % 24;
            let tri = if phase < 12 { phase } else { 24 - phase } as f64;
            WindowSpec {
                start_ts: i as i64 * 900_000,
                end_ts: (i as i64 + 1) * 900_000,
                peak_rate: 2.0e6 + 0.9e6 * tri,
            }
        })
        .collect()
}

#[test]
fn parallel_plan_horizon_is_bit_identical_to_sequential() {
    let oracle = ChainOracle::new();
    let windows = diurnal_windows(96);
    let config = planner_config();
    let initial = vec![("ingest".to_string(), 2), ("parse".to_string(), 1)];

    let sequential = ExecPool::with_threads("det-plan-seq", 1);
    let parallel = ExecPool::with_threads("det-plan-par", 8);
    let seq: PlanTimeline =
        plan_horizon_with(&oracle, &initial, &windows, &config, &sequential).unwrap();
    let par: PlanTimeline =
        plan_horizon_with(&oracle, &initial, &windows, &config, &parallel).unwrap();

    assert_eq!(seq, par);
    // Debug formatting covers every field bit-for-bit (floats included).
    assert_eq!(
        format!("{seq:?}").into_bytes(),
        format!("{par:?}").into_bytes()
    );
    assert!(seq.oracle_evals > 0);
}

#[test]
fn parallel_plan_reports_the_same_infeasible_window() {
    let oracle = ChainOracle::new();
    let mut windows = diurnal_windows(24);
    // Window 7 is far beyond any feasible capacity; window 19 too. The
    // error must name window 7 — the one a sequential scan hits first —
    // whatever order a wide pool explores.
    windows[7].peak_rate = 9.0e12;
    windows[19].peak_rate = 8.0e12;
    let config = planner_config();

    let sequential = ExecPool::with_threads("det-err-seq", 1);
    let parallel = ExecPool::with_threads("det-err-par", 8);
    let seq_err = plan_horizon_with(&oracle, &[], &windows, &config, &sequential).unwrap_err();
    let par_err = plan_horizon_with(&oracle, &[], &windows, &config, &parallel).unwrap_err();

    assert_eq!(seq_err, par_err);
    match par_err {
        PlanError::Infeasible { window, .. } => assert_eq!(window, 7),
        other => panic!("expected Infeasible, got {other:?}"),
    }
}

fn wordcount_timeline() -> PlanTimeline {
    let limits = PlannerConfig::default().limits;
    let specs = [
        (12.0e6, [("spout", 8u32), ("splitter", 2), ("counter", 3)]),
        (30.0e6, [("spout", 8), ("splitter", 4), ("counter", 5)]),
        (30.0e6, [("spout", 8), ("splitter", 4), ("counter", 5)]),
        (8.0e6, [("spout", 8), ("splitter", 1), ("counter", 2)]),
    ];
    let windows: Vec<WindowPlan> = specs
        .iter()
        .enumerate()
        .map(|(i, (rate, ps))| {
            let parallelisms: Vec<(String, u32)> =
                ps.iter().map(|(n, p)| (n.to_string(), *p)).collect();
            WindowPlan {
                window: i,
                start_ts: i as i64 * 900_000,
                end_ts: (i as i64 + 1) * 900_000,
                peak_rate: *rate,
                planned_rate: *rate,
                cost: PlanCost::of(&parallelisms, &limits),
                parallelisms,
                saturation_rate: f64::INFINITY,
                actions: Vec::new(),
            }
        })
        .collect();
    let peak = windows[1].parallelisms.clone();
    let peak_cost = windows[1].cost;
    PlanTimeline {
        windows,
        peak_parallelisms: peak,
        peak_cost,
        oracle_evals: 0,
    }
}

#[test]
fn parallel_replay_is_bit_identical_to_sequential() {
    let base = wordcount_topology(
        WordCountParallelism {
            spout: 8,
            splitter: 2,
            counter: 3,
        },
        10.0e6,
    );
    let timeline = wordcount_timeline();
    let config = ReplayConfig {
        warmup_minutes: 5,
        measure_minutes: 3,
        ..ReplayConfig::default()
    };

    let sequential = ExecPool::with_threads("det-replay-seq", 1);
    let parallel = ExecPool::with_threads("det-replay-par", 8);
    let seq = replay_timeline_with(&base, &timeline, &config, &sequential).unwrap();
    let par = replay_timeline_with(&base, &timeline, &config, &parallel).unwrap();

    assert_eq!(seq, par);
    assert_eq!(
        format!("{seq:?}").into_bytes(),
        format!("{par:?}").into_bytes()
    );
    // Sanity: the replays actually simulated traffic.
    assert!(seq.iter().all(|w| w.sink_rate > 0.0));
    // Windows are reported in timeline order whatever finished first.
    let order: Vec<usize> = par.iter().map(|w| w.window).collect();
    assert_eq!(order, vec![0, 1, 2, 3]);
}

#[test]
fn default_entrypoints_match_explicit_one_thread_pools() {
    // plan_horizon / replay_timeline route through the shared pools at
    // the configured width; whatever that width is on this host, the
    // output must equal the forced-sequential reference.
    let oracle = ChainOracle::new();
    let windows = diurnal_windows(48);
    let config = planner_config();
    let reference = plan_horizon_with(
        &oracle,
        &[],
        &windows,
        &config,
        &ExecPool::with_threads("det-ref", 1),
    )
    .unwrap();
    let shared = caladrius::planner::plan_horizon(&oracle, &[], &windows, &config).unwrap();
    assert_eq!(reference, shared);
}
