//! Retention integration: the metrics store ages out history while the
//! modelling pipeline keeps working on the remaining window — the
//! steady-state operating mode of a long-running Caladrius deployment
//! against a bounded metrics database.

use caladrius::core::providers::{SimMetricsProvider, StaticTracker};
use caladrius::core::Caladrius;
use caladrius::sim::prelude::*;
use caladrius::tsdb::retention::RetentionPolicy;
use caladrius::workload::wordcount::{wordcount_topology, WordCountParallelism};
use std::sync::Arc;

#[test]
fn retention_ages_out_history_and_models_still_fit() {
    let parallelism = WordCountParallelism {
        spout: 8,
        splitter: 2,
        counter: 3,
    };
    let metrics = SimMetrics::new("wordcount");

    // Old epoch: hours of low-rate history that retention should drop.
    let mut sim = Simulation::new(
        wordcount_topology(parallelism, 4.0e6),
        SimConfig {
            metric_noise: 0.0,
            ..SimConfig::default()
        },
    )
    .unwrap();
    sim.run_minutes_into(120, &metrics);

    // Recent epoch: the sweep the models need (linear + saturated legs).
    for (leg, rate) in [8.0e6, 16.0e6, 26.0e6].into_iter().enumerate() {
        let mut sim = Simulation::new(
            wordcount_topology(parallelism, rate),
            SimConfig {
                metric_noise: 0.0,
                ..SimConfig::default()
            },
        )
        .unwrap();
        sim.skip_to_minute(200 + leg as u64 * 60);
        sim.warmup_minutes(25);
        sim.run_minutes_into(10, &metrics);
    }

    let before = metrics.db().sample_count();
    // Keep 3 hours relative to the newest sample: the old epoch (minutes
    // 0..120) falls outside [newest - 180 min, newest].
    let dropped = RetentionPolicy::hours(3).enforce(&metrics.db()).unwrap();
    assert!(dropped > 0, "the old epoch must be aged out");
    assert!(metrics.db().sample_count() < before);

    // The whole modelling pipeline still works on the retained window.
    let caladrius = Caladrius::new(
        Arc::new(SimMetricsProvider::new(metrics.clone())),
        Arc::new(StaticTracker::new().with(wordcount_topology(parallelism, 26.0e6))),
    );
    let model = caladrius.fit_topology_model("wordcount").unwrap();
    let splitter = model.component_model("splitter").unwrap();
    assert!((splitter.instance.alpha - 7.63).abs() < 0.1);
    assert!(
        splitter.instance.saturation.is_some(),
        "the sweep's knee survives retention"
    );

    // And the history the traffic models see starts after the cutoff.
    let history = caladrius.source_history("wordcount").unwrap();
    let newest = history.last().unwrap().ts;
    assert!(history.first().unwrap().ts >= newest - 180 * 60_000);
}
