//! Integration test of the whole stack through the REST surface:
//! simulator → tsdb → Caladrius service → HTTP server → HTTP client.

use caladrius::api::{json, ApiService, HttpClient, HttpServer};
use caladrius::core::providers::{SimMetricsProvider, StaticTracker};
use caladrius::core::Caladrius;
use caladrius::sim::prelude::*;
use caladrius::workload::wordcount::{wordcount_topology, WordCountParallelism};
use std::sync::Arc;
use std::time::Duration;

fn start_service() -> (HttpServer, HttpClient) {
    let parallelism = WordCountParallelism {
        spout: 8,
        splitter: 2,
        counter: 3,
    };
    let metrics = SimMetrics::new("wordcount");
    for (leg, rate) in [6.0e6, 14.0e6, 26.0e6].into_iter().enumerate() {
        let mut sim =
            Simulation::new(wordcount_topology(parallelism, rate), SimConfig::default()).unwrap();
        sim.skip_to_minute(leg as u64 * 60);
        sim.warmup_minutes(25);
        sim.run_minutes_into(10, &metrics);
    }
    let caladrius = Caladrius::new(
        Arc::new(SimMetricsProvider::new(metrics)),
        Arc::new(StaticTracker::new().with(wordcount_topology(parallelism, 26.0e6))),
    );
    let api = ApiService::new(Arc::new(caladrius), 2);
    let server = HttpServer::serve("127.0.0.1:0", 4, api.handler()).unwrap();
    let client = HttpClient::new(server.local_addr());
    (server, client)
}

#[test]
fn rest_surface_end_to_end() {
    let (_server, client) = start_service();

    // Health and discovery.
    let (status, body) = client.get("/health").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("ok"));
    let (status, body) = client.get("/topologies").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("wordcount"));

    // Traffic forecasting with an explicit model list.
    let (status, body) = client
        .get("/model/traffic/heron/wordcount?models=prophet,stats_summary")
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let v = json::parse(&body).unwrap();
    let forecasts = v.get("forecasts").unwrap().as_array().unwrap();
    assert_eq!(forecasts.len(), 2);
    for f in forecasts {
        assert!(f.get("peak").unwrap().as_f64().unwrap() > 0.0);
    }

    // Synchronous dry-run evaluation (the §V workflow over HTTP).
    let (status, body) = client
        .post(
            "/model/topology/heron/wordcount",
            r#"{"parallelism": {"splitter": 4}, "source_rate": 30000000}"#,
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let v = json::parse(&body).unwrap();
    assert_eq!(v.get("backpressure_risk").unwrap().as_str(), Some("low"));
    let components = v.get("components").unwrap().as_array().unwrap();
    assert_eq!(components.len(), 3);
    let splitter = components
        .iter()
        .find(|c| c.get("name").unwrap().as_str() == Some("splitter"))
        .unwrap();
    assert_eq!(splitter.get("parallelism").unwrap().as_f64(), Some(4.0));

    // Asynchronous job lifecycle.
    let (status, body) = client
        .post(
            "/model/topology/heron/wordcount?async=true",
            r#"{"source_rate": 26000000}"#,
        )
        .unwrap();
    assert_eq!(status, 202, "{body}");
    let poll = json::parse(&body)
        .unwrap()
        .get("poll")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    let result = loop {
        let (_, body) = client.get(&poll).unwrap();
        let v = json::parse(&body).unwrap();
        match v.get("state").unwrap().as_str().unwrap() {
            "pending" => {
                assert!(std::time::Instant::now() < deadline);
                std::thread::sleep(Duration::from_millis(20));
            }
            "done" => break v.get("result").unwrap().clone(),
            other => panic!("job failed: {other} {body}"),
        }
    };
    assert_eq!(
        result.get("backpressure_risk").unwrap().as_str(),
        Some("high")
    );
    assert_eq!(result.get("bottleneck").unwrap().as_str(), Some("splitter"));

    // Error paths.
    let (status, _) = client.get("/model/traffic/heron/ghost").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client
        .post("/model/topology/heron/wordcount", "{bad")
        .unwrap();
    assert_eq!(status, 400);
    let (status, _) = client.get("/jobs/99999").unwrap();
    assert_eq!(status, 404);
}

#[test]
fn concurrent_clients_are_served() {
    let (server, _) = start_service();
    let addr = server.local_addr();
    let handles: Vec<_> = (0..6)
        .map(|i| {
            std::thread::spawn(move || {
                let client = HttpClient::new(addr);
                if i % 2 == 0 {
                    client.get("/health").unwrap().0
                } else {
                    client
                        .post(
                            "/model/topology/heron/wordcount",
                            r#"{"source_rate": 10000000}"#,
                        )
                        .unwrap()
                        .0
                }
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), 200);
    }
}
