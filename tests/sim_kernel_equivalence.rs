//! Equivalence suite for the SoA simulation kernel.
//!
//! The engine's hot loop was rewritten from per-instance enum-matching
//! structs into a flat struct-of-arrays kernel (`engine::Simulation`);
//! `reference::ReferenceSimulation` retains the original tick verbatim.
//! The rewrite is only legal because it is *bit-identical*: every tsdb
//! sample the two kernels emit must match down to the last mantissa bit
//! (`f64::to_bits`), across topologies, rates, observation noise, stream
//! manager modes and backpressure regimes.
//!
//! Macro-stepping (`SimConfig::macro_step`) intentionally trades that
//! guarantee for speed, so it is checked against a tolerance instead:
//! sink throughput within 0.1 % of the exact run and the same
//! backpressure verdict. Event-driven advancement
//! (`SimConfig::event_mode`) carries the same tolerance contract and is
//! checked across constant, stepped, ramping, diurnal and flash-crowd
//! rate profiles — including overloaded runs, where it must fall back
//! to exact ticks and reproduce the exact kernel's backpressure
//! verdict.

use caladrius::sim::engine::{SimConfig, Simulation};
use caladrius::sim::metrics::{metric, SimMetrics};
use caladrius::sim::profiles::RateProfile;
use caladrius::sim::reference::ReferenceSimulation;
use caladrius::sim::topology::Topology;
use caladrius::tsdb::Aggregation;
use caladrius::workload::diamond::{diamond_topology, diamond_topology_with, DiamondParallelism};
use caladrius::workload::traffic::{flash_crowd, DiurnalTraffic};
use caladrius::workload::wordcount::{
    wordcount_topology, wordcount_topology_with, WordCountParallelism,
};
use proptest::prelude::*;

/// Every metric family either kernel can emit.
const METRIC_NAMES: [&str; 9] = [
    metric::EXECUTE_COUNT,
    metric::EMIT_COUNT,
    metric::SOURCE_OFFERED,
    metric::BACKPRESSURE_TIME,
    metric::CPU_LOAD,
    metric::QUEUE_BYTES,
    metric::LATENCY_MS,
    metric::FAIL_COUNT,
    metric::STMGR_TUPLES,
];

/// Flattens a metrics db into `(series key, ts, value bits)` rows, sorted
/// deterministically, so two dbs can be compared for bitwise equality.
fn dump(metrics: &SimMetrics) -> Vec<(String, i64, u64)> {
    let db = metrics.db();
    let mut rows = Vec::new();
    for name in METRIC_NAMES {
        for (key, samples) in db.select(name, &[], i64::MIN, i64::MAX).unwrap() {
            for s in samples {
                rows.push((format!("{key:?}"), s.ts, s.value.to_bits()));
            }
        }
    }
    rows
}

/// Runs both kernels over the same schedule and asserts bitwise-equal
/// output, returning whether the run ever backpressured (so callers can
/// confirm a regime was actually exercised).
fn assert_bit_identical(topology: Topology, config: SimConfig, minutes: u64) -> bool {
    let mut soa = Simulation::new(topology.clone(), config.clone()).unwrap();
    let mut reference = ReferenceSimulation::new(topology, config).unwrap();
    let soa_metrics = SimMetrics::new(soa.topology().name.clone());
    let ref_metrics = SimMetrics::new(reference.topology().name.clone());
    soa.run_minutes_into(minutes, &soa_metrics);
    reference.run_minutes_into(minutes, &ref_metrics);
    assert_eq!(soa.now_secs(), reference.now_secs());
    assert_eq!(
        soa.backpressure_active(),
        reference.backpressure_active(),
        "kernels disagree on live backpressure state"
    );
    assert_eq!(
        soa.ticks_skipped(),
        0,
        "macro-stepping must stay off unless opted into"
    );
    let (a, b) = (dump(&soa_metrics), dump(&ref_metrics));
    assert_eq!(a.len(), b.len(), "kernels emitted different sample counts");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x, y, "sample diverged (key, ts, f64 bits)");
    }
    let bp: f64 = a
        .iter()
        .filter(|(k, _, _)| k.contains(metric::BACKPRESSURE_TIME))
        .map(|(_, _, bits)| f64::from_bits(*bits))
        .sum();
    bp > 0.0
}

#[derive(Debug, Clone)]
struct Case {
    topology: Topology,
    config: SimConfig,
    minutes: u64,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        prop::bool::ANY, // wordcount vs diamond
        0.2f64..2.0,     // offered rate as a fraction of the bottleneck knee
        prop::bool::ANY, // observation noise on/off
        prop::bool::ANY, // finite vs transparent stream managers
        0u64..1u64 << 32,
    )
        .prop_map(|(diamond, load, noise, finite_stmgr, seed)| {
            let topology = if diamond {
                // Geo/device branches knee near 30 M events/min at
                // parallelism 2.
                diamond_topology(DiamondParallelism::default(), load * 30.0e6)
            } else {
                // One splitter knees at 11 M words/min.
                wordcount_topology(WordCountParallelism::default(), load * 11.0e6)
            };
            let config = SimConfig {
                metric_noise: if noise { 0.004 } else { 0.0 },
                seed,
                stmgr_capacity: finite_stmgr.then_some(150_000.0),
                ..SimConfig::default()
            };
            Case {
                topology,
                config,
                minutes: 4,
            }
        })
}

proptest! {
    /// The SoA kernel is bit-identical to the retained reference tick
    /// across topologies, load levels, noise, stream manager modes and
    /// seeds — including runs that cross in and out of backpressure.
    #[test]
    fn soa_kernel_is_bit_identical_to_reference(case in arb_case()) {
        assert_bit_identical(case.topology, case.config, case.minutes);
    }
}

#[test]
fn backpressure_regime_is_exercised_and_bit_identical() {
    // 2× the splitter knee guarantees sustained backpressure.
    let topology = wordcount_topology(WordCountParallelism::default(), 22.0e6);
    let saw_bp = assert_bit_identical(topology, SimConfig::default(), 8);
    assert!(saw_bp, "overload run must actually backpressure");
}

#[test]
fn stepped_rates_are_bit_identical() {
    let topology = caladrius::workload::wordcount::wordcount_topology_with(
        WordCountParallelism::default(),
        RateProfile::Steps {
            initial: 8.0e6 / 60.0,
            steps: vec![(120, 22.0e6 / 60.0), (300, 4.0e6 / 60.0)],
        },
        None,
    );
    assert_bit_identical(topology, SimConfig::default(), 8);
}

/// Mean sink throughput (tuples/min) and total backpressure over the
/// observation window `[from, ∞)`.
fn sink_and_bp(metrics: &SimMetrics, topology: &Topology, from: i64) -> (f64, f64) {
    let mut sink_rate = 0.0;
    let mut bp_ms = 0.0;
    for (idx, component) in topology.components.iter().enumerate() {
        let name = component.name.as_str();
        let series = metrics.component_sum(metric::BACKPRESSURE_TIME, Some(name), from, i64::MAX);
        bp_ms += series.iter().map(|s| s.value).sum::<f64>();
        if topology.out_edges(idx).next().is_none() {
            let series = metrics.component_sum(metric::EXECUTE_COUNT, Some(name), from, i64::MAX);
            sink_rate += Aggregation::Mean.apply(series.iter().map(|s| s.value));
        }
    }
    (sink_rate, bp_ms)
}

/// Runs the same topology exact and macro-stepped; asserts skipped ticks,
/// matching backpressure verdicts and sink throughput within 0.1 %.
fn assert_macro_within_tolerance(topology: Topology, expect_skips: bool) {
    let exact_cfg = SimConfig {
        metric_noise: 0.0,
        ..SimConfig::default()
    };
    let macro_cfg = SimConfig {
        macro_step: true,
        ..exact_cfg.clone()
    };
    let minutes = 30;
    let warmup_ms = 5 * 60_000;
    let mut exact = Simulation::new(topology.clone(), exact_cfg).unwrap();
    let mut fast = Simulation::new(topology, macro_cfg).unwrap();
    let exact_metrics = exact.run_minutes(minutes);
    let fast_metrics = fast.run_minutes(minutes);
    assert_eq!(exact.ticks_skipped(), 0);
    if expect_skips {
        assert!(
            fast.ticks_skipped() > 60,
            "steady run should macro-step most ticks, skipped only {}",
            fast.ticks_skipped()
        );
    }
    let (exact_sink, exact_bp) = sink_and_bp(&exact_metrics, exact.topology(), warmup_ms);
    let (fast_sink, fast_bp) = sink_and_bp(&fast_metrics, fast.topology(), warmup_ms);
    assert!(
        (fast_sink - exact_sink).abs() <= 1e-3 * exact_sink.max(1.0),
        "sink rate diverged beyond 0.1%: exact {exact_sink} vs macro {fast_sink}"
    );
    let tolerance = 1.0;
    assert_eq!(
        exact_bp > tolerance,
        fast_bp > tolerance,
        "backpressure verdicts diverged: exact {exact_bp} ms vs macro {fast_bp} ms"
    );
}

#[test]
fn macro_step_matches_exact_on_steady_wordcount() {
    let topology = wordcount_topology(WordCountParallelism::default(), 8.0e6);
    assert_macro_within_tolerance(topology, true);
}

#[test]
fn macro_step_matches_exact_on_steady_diamond() {
    let topology = diamond_topology(DiamondParallelism::default(), 12.0e6);
    assert_macro_within_tolerance(topology, true);
}

#[test]
fn macro_step_matches_exact_under_backpressure() {
    // Overloaded: backpressure keeps the fixed-point probe from ever
    // engaging, so this exercises the "verdicts must agree" side.
    let topology = wordcount_topology(WordCountParallelism::default(), 22.0e6);
    assert_macro_within_tolerance(topology, false);
}

/// Runs the same topology exact and event-driven; asserts closed-form
/// coverage (when expected), matching backpressure verdicts and sink
/// throughput within 0.1 %.
fn assert_event_within_tolerance(topology: Topology, expect_closed_form: bool) {
    let exact_cfg = SimConfig {
        metric_noise: 0.0,
        ..SimConfig::default()
    };
    let event_cfg = SimConfig {
        event_mode: true,
        ..exact_cfg.clone()
    };
    let minutes = 30;
    let warmup_ms = 5 * 60_000;
    let mut exact = Simulation::new(topology.clone(), exact_cfg).unwrap();
    let mut fast = Simulation::new(topology, event_cfg).unwrap();
    let exact_metrics = exact.run_minutes(minutes);
    let fast_metrics = fast.run_minutes(minutes);
    assert_eq!(exact.ticks_closed_form(), 0);
    if expect_closed_form {
        assert!(
            fast.ticks_closed_form() > 60,
            "relaxed run should advance mostly in closed form, covered only {}",
            fast.ticks_closed_form()
        );
        assert!(
            fast.sim_events() > 0,
            "closed-form spans are bounded by scheduler events"
        );
    }
    let (exact_sink, exact_bp) = sink_and_bp(&exact_metrics, exact.topology(), warmup_ms);
    let (fast_sink, fast_bp) = sink_and_bp(&fast_metrics, fast.topology(), warmup_ms);
    assert!(
        (fast_sink - exact_sink).abs() <= 1e-3 * exact_sink.max(1.0),
        "sink rate diverged beyond 0.1%: exact {exact_sink} vs event {fast_sink}"
    );
    let tolerance = 1.0;
    assert_eq!(
        exact_bp > tolerance,
        fast_bp > tolerance,
        "backpressure verdicts diverged: exact {exact_bp} ms vs event {fast_bp} ms"
    );
}

#[test]
fn event_mode_matches_exact_on_steady_wordcount() {
    let topology = wordcount_topology(WordCountParallelism::default(), 8.0e6);
    assert_event_within_tolerance(topology, true);
}

#[test]
fn event_mode_matches_exact_on_steady_diamond() {
    let topology = diamond_topology(DiamondParallelism::default(), 12.0e6);
    assert_event_within_tolerance(topology, true);
}

#[test]
fn event_mode_matches_exact_on_ramping_diamond() {
    let topology = diamond_topology_with(
        DiamondParallelism::default(),
        RateProfile::Ramp {
            from: 6.0e6 / 60.0,
            to: 24.0e6 / 60.0,
            duration_secs: 1200,
        },
    );
    assert_event_within_tolerance(topology, true);
}

#[test]
fn event_mode_matches_exact_on_diurnal_wordcount() {
    // A compressed day: the sinusoid sweeps 5.6–10.4 M words/min inside
    // the 30-minute run, so breakpoint events fire throughout.
    let diurnal = DiurnalTraffic {
        base_rate: 8.0e6 / 60.0,
        amplitude: 0.3,
        period_secs: 1200,
        phase_secs: 0,
        knots_per_period: 12,
    };
    let topology = wordcount_topology_with(
        WordCountParallelism::default(),
        diurnal.to_profile(30 * 60),
        None,
    );
    assert_event_within_tolerance(topology, true);
}

#[test]
fn event_mode_matches_exact_on_flash_crowd() {
    // The crowd peaks at 2x the splitter knee: the run enters sustained
    // backpressure mid-flight and recovers. The scheduler must fall back
    // to exact ticks through the congested stretch yet still cover the
    // relaxed head and tail in closed form.
    let topology = wordcount_topology_with(
        WordCountParallelism::default(),
        flash_crowd(8.0e6 / 60.0, 22.0e6 / 60.0, 360, 120, 420),
        None,
    );
    assert_event_within_tolerance(topology, true);
}

#[test]
fn event_mode_matches_exact_under_sustained_backpressure() {
    // Permanently overloaded: the saturation probe never passes, so the
    // scheduler degenerates to exact ticks — verdicts must still agree.
    let topology = wordcount_topology(WordCountParallelism::default(), 22.0e6);
    assert_event_within_tolerance(topology, false);
}

#[derive(Debug, Clone)]
struct EventCase {
    topology: Topology,
    minutes: u64,
    regime: u8,
    load: f64,
    diamond: bool,
}

fn arb_event_case() -> impl Strategy<Value = EventCase> {
    (
        prop::bool::ANY, // wordcount vs diamond
        0u8..4,          // constant / stepped / ramping / diurnal
        0.2f64..1.8,     // offered rate as a fraction of the bottleneck knee
    )
        .prop_map(|(diamond, regime, load)| {
            let knee = if diamond { 30.0e6 } else { 11.0e6 };
            let per_sec = load * knee / 60.0;
            let profile = match regime {
                0 => RateProfile::Constant { rate: per_sec },
                1 => RateProfile::Steps {
                    initial: per_sec,
                    steps: vec![(150, per_sec * 1.5), (330, per_sec * 0.6)],
                },
                2 => RateProfile::Ramp {
                    from: per_sec * 0.5,
                    to: per_sec * 1.4,
                    duration_secs: 420,
                },
                _ => DiurnalTraffic {
                    base_rate: per_sec,
                    amplitude: 0.35,
                    period_secs: 480,
                    phase_secs: 0,
                    knots_per_period: 8,
                }
                .to_profile(12 * 60),
            };
            let topology = if diamond {
                diamond_topology_with(DiamondParallelism::default(), profile)
            } else {
                wordcount_topology_with(WordCountParallelism::default(), profile, None)
            };
            EventCase {
                topology,
                minutes: 12,
                regime,
                load,
                diamond,
            }
        })
}

proptest! {
    /// Event-driven advancement stays within the tolerance contract —
    /// sink rate within 0.1 % of the exact kernel and identical
    /// backpressure verdicts — across constant, stepped, ramping and
    /// diurnal profiles on both topologies, above and below the knee.
    #[test]
    fn event_mode_is_equivalent_across_profile_regimes(case in arb_event_case()) {
        let exact_cfg = SimConfig { metric_noise: 0.0, ..SimConfig::default() };
        let event_cfg = SimConfig { event_mode: true, ..exact_cfg.clone() };
        let warmup_ms = 3 * 60_000;
        let mut exact = Simulation::new(case.topology.clone(), exact_cfg).unwrap();
        let mut fast = Simulation::new(case.topology, event_cfg).unwrap();
        let exact_metrics = exact.run_minutes(case.minutes);
        let fast_metrics = fast.run_minutes(case.minutes);
        let (exact_sink, exact_bp) = sink_and_bp(&exact_metrics, exact.topology(), warmup_ms);
        let (fast_sink, fast_bp) = sink_and_bp(&fast_metrics, fast.topology(), warmup_ms);
        prop_assert!(
            (fast_sink - exact_sink).abs() <= 1e-3 * exact_sink.max(1.0),
            "sink rate diverged beyond 0.1%: exact {} vs event {} (regime {} load {} diamond {})",
            exact_sink,
            fast_sink,
            case.regime,
            case.load,
            case.diamond
        );
        prop_assert_eq!(
            exact_bp > 1.0,
            fast_bp > 1.0,
            "backpressure verdicts diverged: exact {} ms vs event {} ms (regime {} load {} diamond {})",
            exact_bp,
            fast_bp,
            case.regime,
            case.load,
            case.diamond
        );
    }
}
