//! Capacity-planner acceptance: per-component minimality of the joint
//! search (property-based) and sim-replay validation of full plans on
//! the WordCount chain and the fan-out/fan-in diamond.

use caladrius::core::capacity::{CapacityPlanRequest, ModelOracle};
use caladrius::core::providers::{SimMetricsProvider, StaticTracker};
use caladrius::core::Caladrius;
use caladrius::planner::{
    plan_horizon, plan_window, replay_timeline, Assessment, CapacityOracle, PlanError,
    PlannerConfig, ReplayConfig, ResourceLimits, WindowSpec,
};
use caladrius::sim::prelude::*;
use caladrius::workload::diamond::{diamond_topology, DiamondParallelism};
use caladrius::workload::wordcount::{wordcount_topology, WordCountParallelism};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Minimality property
// ---------------------------------------------------------------------

/// Closed-form capacity model with the monotone structure the planner
/// contract requires: component `i` sees `ratio_i * rate` input served
/// at `service_i` tuples/min per instance.
struct SynthOracle {
    /// (name, ratio, per-instance service rate, cpu base, cpu per tuple)
    comps: Vec<(String, f64, f64, f64, f64)>,
}

impl CapacityOracle for SynthOracle {
    fn components(&self) -> Vec<String> {
        self.comps.iter().map(|(n, ..)| n.clone()).collect()
    }

    fn assess(&self, parallelisms: &[(String, u32)], rate: f64) -> Result<Assessment, PlanError> {
        let mut saturation = f64::INFINITY;
        let mut bottleneck = None;
        let mut cpu = Vec::with_capacity(self.comps.len());
        for (name, ratio, service, base, per_tuple) in &self.comps {
            let p = parallelisms
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, p)| *p)
                .unwrap_or(1);
            let sat = service * f64::from(p) / ratio;
            if sat < saturation {
                saturation = sat;
                bottleneck = Some(name.clone());
            }
            cpu.push((name.clone(), base + per_tuple * ratio * rate / f64::from(p)));
        }
        Ok(Assessment {
            feasible: rate < saturation * 0.95,
            bottleneck,
            saturation_rate: saturation,
            cpu_per_instance: cpu,
        })
    }
}

fn accepts(oracle: &SynthOracle, ps: &[(String, u32)], rate: f64, budget: f64) -> bool {
    let a = oracle.assess(ps, rate).expect("synthetic oracle is total");
    a.feasible && a.cpu_per_instance.iter().all(|(_, c)| *c <= budget + 1e-9)
}

proptest! {
    /// Decrementing ANY component of a returned plan makes the window
    /// infeasible (or blows the CPU budget): the plan is per-component
    /// minimal, the property the single in-order trim pass guarantees.
    #[test]
    fn plan_window_is_per_component_minimal(
        comps in prop::collection::vec(
            (0.5f64..4.0, 1.0e6f64..20.0e6, 0.0f64..0.2, 0.0f64..1.0e-8),
            2..5,
        ),
        rate in 1.0e6f64..60.0e6,
    ) {
        let oracle = SynthOracle {
            comps: comps
                .iter()
                .enumerate()
                .map(|(i, (ratio, service, base, per_tuple))| {
                    (format!("bolt{i}"), *ratio, *service, *base, *per_tuple)
                })
                .collect(),
        };
        let config = PlannerConfig {
            limits: ResourceLimits {
                max_parallelism: 64,
                ..ResourceLimits::default()
            },
            ..PlannerConfig::default()
        };
        let budget = config.limits.cores_per_instance * config.cpu_utilization_cap;
        match plan_window(&oracle, rate, &config) {
            Ok(solution) => {
                prop_assert!(
                    accepts(&oracle, &solution.parallelisms, rate, budget),
                    "returned plan {:?} is not itself acceptable at {rate:.3e}",
                    solution.parallelisms
                );
                for i in 0..solution.parallelisms.len() {
                    if solution.parallelisms[i].1 == 1 {
                        continue;
                    }
                    let mut decremented = solution.parallelisms.clone();
                    decremented[i].1 -= 1;
                    prop_assert!(
                        !accepts(&oracle, &decremented, rate, budget),
                        "plan {:?} is not minimal: {:?} still acceptable at {rate:.3e}",
                        solution.parallelisms,
                        decremented
                    );
                }
            }
            // The random rate can exceed what max_parallelism sustains.
            Err(PlanError::Infeasible { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected planner error: {e}"),
        }
    }
}

// ---------------------------------------------------------------------
// Sim-replay acceptance: WordCount
// ---------------------------------------------------------------------

const WORDCOUNT_PARALLELISM: WordCountParallelism = WordCountParallelism {
    spout: 8,
    splitter: 2,
    counter: 3,
};

/// Sweeps the topology through linear and saturated regimes so the
/// fitted models know both slopes and knees.
fn sweep<F: Fn(f64) -> caladrius::sim::topology::Topology>(
    name: &str,
    rates: &[f64],
    build: F,
) -> caladrius::sim::metrics::SimMetrics {
    let metrics = caladrius::sim::metrics::SimMetrics::new(name);
    for (leg, rate) in rates.iter().enumerate() {
        let mut sim = Simulation::new(
            build(*rate),
            SimConfig {
                metric_noise: 0.0,
                ..SimConfig::default()
            },
        )
        .unwrap();
        sim.skip_to_minute(leg as u64 * 100);
        sim.warmup_minutes(30);
        sim.run_minutes_into(10, &metrics);
    }
    metrics
}

#[test]
fn wordcount_plan_replays_low_risk_in_every_window() {
    let metrics = sweep(
        "wordcount",
        &[4.0e6, 8.0e6, 12.0e6, 16.0e6, 20.0e6, 26.0e6],
        |rate| wordcount_topology(WORDCOUNT_PARALLELISM, rate),
    );
    let caladrius = Caladrius::new(
        Arc::new(SimMetricsProvider::new(metrics)),
        Arc::new(StaticTracker::new().with(wordcount_topology(WORDCOUNT_PARALLELISM, 20.0e6))),
    );

    let timeline = caladrius
        .plan_capacity("wordcount", &CapacityPlanRequest::default())
        .unwrap();
    assert!(!timeline.windows.is_empty());

    let replays = replay_timeline(
        &wordcount_topology(WORDCOUNT_PARALLELISM, 20.0e6),
        &timeline,
        &ReplayConfig {
            warmup_minutes: 15,
            measure_minutes: 5,
            ..ReplayConfig::default()
        },
    )
    .unwrap();
    assert_eq!(replays.len(), timeline.windows.len());
    for replay in &replays {
        assert!(
            replay.low_risk,
            "window {} backpressured in replay: {replay:?}",
            replay.window
        );
        assert!(replay.sink_rate > 0.0);
    }

    let stats = caladrius.model_cache_stats();
    assert_eq!(stats.plans, 1);
    assert!(stats.plan_evals > 0);
}

// ---------------------------------------------------------------------
// Sim-replay acceptance: diamond (fan-out/fan-in)
// ---------------------------------------------------------------------

#[test]
fn diamond_plan_scales_branches_and_replays_low_risk() {
    let parallelism = DiamondParallelism::default();
    let metrics = sweep(
        "diamond",
        &[8.0e6, 16.0e6, 24.0e6, 28.0e6, 36.0e6],
        |rate| diamond_topology(parallelism, rate),
    );
    let caladrius = Caladrius::new(
        Arc::new(SimMetricsProvider::new(metrics)),
        Arc::new(StaticTracker::new().with(diamond_topology(parallelism, 8.0e6))),
    );
    let model = caladrius.fit_topology_model("diamond").unwrap();
    let cpu_models = caladrius.fit_cpu_models("diamond").unwrap();
    let oracle = ModelOracle::new(
        Arc::new(model),
        Arc::new(cpu_models),
        vec![
            "enrich".into(),
            "geo".into(),
            "device".into(),
            "aggregator".into(),
        ],
    );

    // A quiet window, a peak past the default branch knee (2 x 15 M/min
    // per branch = 30 M/min), and a dip back down.
    let windows: Vec<WindowSpec> = [20.0e6, 34.0e6, 12.0e6]
        .iter()
        .enumerate()
        .map(|(i, rate)| WindowSpec {
            start_ts: i as i64 * 900_000,
            end_ts: (i as i64 + 1) * 900_000,
            peak_rate: *rate,
        })
        .collect();
    let initial = vec![
        ("enrich".to_string(), parallelism.enrich),
        ("geo".to_string(), parallelism.geo),
        ("device".to_string(), parallelism.device),
        ("aggregator".to_string(), parallelism.aggregator),
    ];
    let config = PlannerConfig {
        hysteresis_windows: 1,
        ..PlannerConfig::default()
    };
    let timeline = plan_horizon(&oracle, &initial, &windows, &config).unwrap();

    // The 34 M/min window must scale both enricher branches past the
    // knee of the deployed configuration.
    let peak_window = &timeline.windows[1];
    for branch in ["geo", "device"] {
        let p = peak_window
            .parallelisms
            .iter()
            .find(|(n, _)| n == branch)
            .map(|(_, p)| *p)
            .unwrap();
        assert!(
            p >= 3,
            "peak window must scale {branch} beyond the 30 M/min knee, got p={p}"
        );
    }

    let replays = replay_timeline(
        &diamond_topology(parallelism, 8.0e6),
        &timeline,
        &ReplayConfig {
            warmup_minutes: 15,
            measure_minutes: 5,
            ..ReplayConfig::default()
        },
    )
    .unwrap();
    for replay in &replays {
        assert!(
            replay.low_risk,
            "window {} backpressured in replay: {replay:?}",
            replay.window
        );
    }
}
