//! End-to-end test of the observability layer through the REST surface:
//! driving real traffic over HTTP must light up the Prometheus
//! exposition at `/metrics/service` (covering the HTTP, job, service,
//! tsdb and simulator layers) and leave attributable spans in
//! `/trace/recent`.

use caladrius::api::{json, ApiService, HttpClient, HttpServer};
use caladrius::core::providers::{SimMetricsProvider, StaticTracker};
use caladrius::core::Caladrius;
use caladrius::sim::prelude::*;
use caladrius::workload::wordcount::{wordcount_topology, WordCountParallelism};
use std::sync::Arc;
use std::time::Duration;

fn start_service() -> (HttpServer, HttpClient) {
    let parallelism = WordCountParallelism {
        spout: 8,
        splitter: 2,
        counter: 3,
    };
    let metrics = SimMetrics::new("wordcount");
    for (leg, rate) in [6.0e6, 14.0e6, 26.0e6].into_iter().enumerate() {
        let mut sim =
            Simulation::new(wordcount_topology(parallelism, rate), SimConfig::default()).unwrap();
        sim.skip_to_minute(leg as u64 * 60);
        sim.warmup_minutes(25);
        sim.run_minutes_into(10, &metrics);
    }
    let caladrius = Caladrius::new(
        Arc::new(SimMetricsProvider::new(metrics)),
        Arc::new(StaticTracker::new().with(wordcount_topology(parallelism, 26.0e6))),
    );
    let api = ApiService::new(Arc::new(caladrius), 2);
    let server = HttpServer::serve("127.0.0.1:0", 4, api.handler()).unwrap();
    let client = HttpClient::new(server.local_addr());
    (server, client)
}

/// Extracts the value of the first sample line whose name+labels prefix
/// contains every given fragment.
fn scrape(text: &str, fragments: &[&str]) -> Option<f64> {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .find(|l| fragments.iter().all(|f| l.contains(f)))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[test]
fn metrics_service_covers_every_instrumented_layer() {
    let (_server, client) = start_service();

    // Generate observable work: sync evaluation, async job, health.
    assert_eq!(client.get("/health").unwrap().0, 200);
    let (status, body) = client
        .post(
            "/model/topology/heron/wordcount",
            r#"{"source_rate": 20000000}"#,
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, body) = client
        .post(
            "/model/topology/heron/wordcount?async=true",
            r#"{"source_rate": 10000000}"#,
        )
        .unwrap();
    assert_eq!(status, 202, "{body}");
    let poll = json::parse(&body)
        .unwrap()
        .get("poll")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    let final_poll = loop {
        let (_, body) = client.get(&poll).unwrap();
        let v = json::parse(&body).unwrap();
        match v.get("state").unwrap().as_str().unwrap() {
            "pending" => {
                assert!(std::time::Instant::now() < deadline);
                std::thread::sleep(Duration::from_millis(10));
            }
            "done" => break v,
            other => panic!("job failed: {other} {body}"),
        }
    };
    // Job timing rides along in the poll response.
    assert!(final_poll.get("queued_ms").unwrap().as_f64().unwrap() > 0.0);
    assert!(final_poll.get("duration_ms").unwrap().as_f64().unwrap() >= 0.0);

    let (status, text) = client.get("/metrics/service").unwrap();
    assert_eq!(status, 200);

    // HTTP tier: per-route counters and latency histograms.
    assert!(
        scrape(
            &text,
            &["caladrius_http_requests_total", "route=\"/health\""]
        )
        .unwrap()
            >= 1.0
    );
    assert!(
        scrape(
            &text,
            &[
                "caladrius_http_requests_total",
                "route=\"/model/topology/heron/{topology}\"",
                "status=\"200\"",
            ],
        )
        .unwrap()
            >= 1.0
    );
    assert!(
        scrape(
            &text,
            &[
                "caladrius_http_request_duration_seconds_count",
                "route=\"/health\""
            ],
        )
        .unwrap()
            >= 1.0
    );

    // Job tier: the async evaluation ran through the worker pool.
    assert!(scrape(&text, &["caladrius_job_duration_seconds_count"]).unwrap() >= 1.0);

    // Service tier: model fits and cache traffic from the evaluations.
    assert!(scrape(&text, &["caladrius_model_fits_total"]).unwrap() >= 1.0);
    assert!(scrape(&text, &["caladrius_evaluate_duration_seconds_count"]).unwrap() >= 2.0);

    // Data tier: the simulator legs were ingested through the tsdb.
    assert!(scrape(&text, &["caladrius_tsdb_ingest_samples_total"]).unwrap() > 0.0);
    assert!(scrape(&text, &["caladrius_tsdb_ingest_batch_size_count"]).unwrap() > 0.0);

    // Simulator: per-minute step timing recorded while seeding metrics.
    assert!(scrape(&text, &["caladrius_sim_minute_duration_seconds_count"]).unwrap() > 0.0);
}

#[test]
fn event_scheduler_counters_surface_in_service_metrics() {
    let (_server, client) = start_service();

    // Drive an event-mode simulation in-process: a relaxed constant
    // load advances almost entirely in closed form, so both scheduler
    // counters must accumulate.
    let mut sim = Simulation::new(
        wordcount_topology(WordCountParallelism::default(), 8.0e6),
        SimConfig {
            event_mode: true,
            metric_noise: 0.0,
            ..SimConfig::default()
        },
    )
    .unwrap();
    sim.run_minutes(3);
    assert!(sim.ticks_closed_form() > 0);

    let (status, text) = client.get("/metrics/service").unwrap();
    assert_eq!(status, 200);
    assert!(scrape(&text, &["caladrius_sim_events_total"]).unwrap() > 0.0);
    assert!(scrape(&text, &["caladrius_sim_ticks_closed_form_total"]).unwrap() > 0.0);
}

#[test]
fn trace_recent_spans_carry_request_ids() {
    let (_server, client) = start_service();
    assert_eq!(client.get("/health").unwrap().0, 200);
    let (status, body) = client
        .post(
            "/model/topology/heron/wordcount",
            r#"{"source_rate": 15000000}"#,
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");

    let (status, body) = client.get("/trace/recent?limit=100").unwrap();
    assert_eq!(status, 200);
    let v = json::parse(&body).unwrap();
    let events = v.get("events").unwrap().as_array().unwrap();
    assert!(!events.is_empty());

    let span = |name: &str| {
        events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some(name))
            .unwrap_or_else(|| panic!("no {name} span in {body}"))
    };
    // The evaluation's core span shares the request id of its enclosing
    // HTTP span — the id was minted at the edge and propagated down.
    let evaluate = span("core.evaluate");
    let eval_request = evaluate.get("request_id").unwrap().as_str().unwrap();
    let http_ids: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").unwrap().as_str() == Some("http.request"))
        .map(|e| e.get("request_id").unwrap().as_str().unwrap())
        .collect();
    assert!(!http_ids.is_empty());
    assert!(
        http_ids.contains(&eval_request),
        "core.evaluate request id {eval_request} not among http ids {http_ids:?}"
    );
    assert_eq!(
        evaluate
            .get("fields")
            .unwrap()
            .get("topology")
            .unwrap()
            .as_str(),
        Some("wordcount")
    );
}
