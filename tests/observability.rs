//! End-to-end test of the observability layer through the REST surface:
//! driving real traffic over HTTP must light up the Prometheus
//! exposition at `/metrics/service` (covering the HTTP, job, service,
//! tsdb and simulator layers) and leave attributable spans in
//! `/trace/recent`.

use caladrius::api::{json, ApiService, HttpClient, HttpServer, Value};
use caladrius::core::providers::{SimMetricsProvider, StaticTracker};
use caladrius::core::Caladrius;
use caladrius::fleet::{Fleet, FleetConfig, FleetService, StagedWorkload};
use caladrius::sim::prelude::*;
use caladrius::tsdb::MetricBatch;
use caladrius::workload::wordcount::{wordcount_topology, WordCountParallelism};
use std::sync::Arc;
use std::time::Duration;

fn start_service() -> (HttpServer, HttpClient) {
    let parallelism = WordCountParallelism {
        spout: 8,
        splitter: 2,
        counter: 3,
    };
    let metrics = SimMetrics::new("wordcount");
    for (leg, rate) in [6.0e6, 14.0e6, 26.0e6].into_iter().enumerate() {
        let mut sim =
            Simulation::new(wordcount_topology(parallelism, rate), SimConfig::default()).unwrap();
        sim.skip_to_minute(leg as u64 * 60);
        sim.warmup_minutes(25);
        sim.run_minutes_into(10, &metrics);
    }
    let caladrius = Caladrius::new(
        Arc::new(SimMetricsProvider::new(metrics)),
        Arc::new(StaticTracker::new().with(wordcount_topology(parallelism, 26.0e6))),
    );
    let api = ApiService::new(Arc::new(caladrius), 2);
    let server = HttpServer::serve("127.0.0.1:0", 4, api.handler()).unwrap();
    let client = HttpClient::new(server.local_addr());
    (server, client)
}

/// Extracts the value of the first sample line whose name+labels prefix
/// contains every given fragment.
fn scrape(text: &str, fragments: &[&str]) -> Option<f64> {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .find(|l| fragments.iter().all(|f| l.contains(f)))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[test]
fn metrics_service_covers_every_instrumented_layer() {
    let (_server, client) = start_service();

    // Generate observable work: sync evaluation, async job, health.
    assert_eq!(client.get("/health").unwrap().0, 200);
    let (status, body) = client
        .post(
            "/model/topology/heron/wordcount",
            r#"{"source_rate": 20000000}"#,
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, body) = client
        .post(
            "/model/topology/heron/wordcount?async=true",
            r#"{"source_rate": 10000000}"#,
        )
        .unwrap();
    assert_eq!(status, 202, "{body}");
    let poll = json::parse(&body)
        .unwrap()
        .get("poll")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    let final_poll = loop {
        let (_, body) = client.get(&poll).unwrap();
        let v = json::parse(&body).unwrap();
        match v.get("state").unwrap().as_str().unwrap() {
            "pending" => {
                assert!(std::time::Instant::now() < deadline);
                std::thread::sleep(Duration::from_millis(10));
            }
            "done" => break v,
            other => panic!("job failed: {other} {body}"),
        }
    };
    // Job timing rides along in the poll response.
    assert!(final_poll.get("queued_ms").unwrap().as_f64().unwrap() > 0.0);
    assert!(final_poll.get("duration_ms").unwrap().as_f64().unwrap() >= 0.0);

    let (status, text) = client.get("/metrics/service").unwrap();
    assert_eq!(status, 200);

    // HTTP tier: per-route counters and latency histograms.
    assert!(
        scrape(
            &text,
            &["caladrius_http_requests_total", "route=\"/health\""]
        )
        .unwrap()
            >= 1.0
    );
    assert!(
        scrape(
            &text,
            &[
                "caladrius_http_requests_total",
                "route=\"/model/topology/heron/{topology}\"",
                "status=\"200\"",
            ],
        )
        .unwrap()
            >= 1.0
    );
    assert!(
        scrape(
            &text,
            &[
                "caladrius_http_request_duration_seconds_count",
                "route=\"/health\""
            ],
        )
        .unwrap()
            >= 1.0
    );

    // Job tier: the async evaluation ran through the worker pool.
    assert!(scrape(&text, &["caladrius_job_duration_seconds_count"]).unwrap() >= 1.0);

    // Service tier: model fits and cache traffic from the evaluations.
    assert!(scrape(&text, &["caladrius_model_fits_total"]).unwrap() >= 1.0);
    // Single-watermark evaluations fit cold, so every fit is a full fit.
    assert!(scrape(&text, &["caladrius_model_fits_full_total"]).unwrap() >= 1.0);
    assert!(scrape(&text, &["caladrius_model_fits_incremental_total"]).is_some());
    assert!(scrape(&text, &["caladrius_evaluate_duration_seconds_count"]).unwrap() >= 2.0);

    // Data tier: the simulator legs were ingested through the tsdb, and
    // the decoded-tail cache counters are exposed (cold fits read full
    // windows, so only presence — not traffic — is guaranteed here).
    assert!(scrape(&text, &["caladrius_tsdb_ingest_samples_total"]).unwrap() > 0.0);
    assert!(scrape(&text, &["caladrius_tsdb_ingest_batch_size_count"]).unwrap() > 0.0);
    assert!(scrape(&text, &["caladrius_tsdb_tail_cache_hits_total"]).is_some());
    assert!(scrape(&text, &["caladrius_tsdb_tail_cache_misses_total"]).is_some());

    // The /health JSON mirrors the same counters.
    let (status, health) = client.get("/health").unwrap();
    assert_eq!(status, 200);
    let health = json::parse(&health).unwrap();
    let model_cache = health.get("model_cache").unwrap();
    assert!(model_cache.get("full_fits").unwrap().as_f64().unwrap() >= 1.0);
    assert_eq!(
        model_cache
            .get("incremental_fits")
            .unwrap()
            .as_f64()
            .unwrap(),
        0.0
    );
    let tsdb = health.get("tsdb").unwrap();
    assert!(tsdb.get("tail_cache_hits").unwrap().as_f64().is_some());
    assert!(tsdb.get("tail_cache_misses").unwrap().as_f64().is_some());

    // Simulator: per-minute step timing recorded while seeding metrics.
    assert!(scrape(&text, &["caladrius_sim_minute_duration_seconds_count"]).unwrap() > 0.0);
}

#[test]
fn event_scheduler_counters_surface_in_service_metrics() {
    let (_server, client) = start_service();

    // Drive an event-mode simulation in-process: a relaxed constant
    // load advances almost entirely in closed form, so both scheduler
    // counters must accumulate.
    let mut sim = Simulation::new(
        wordcount_topology(WordCountParallelism::default(), 8.0e6),
        SimConfig {
            event_mode: true,
            metric_noise: 0.0,
            ..SimConfig::default()
        },
    )
    .unwrap();
    sim.run_minutes(3);
    assert!(sim.ticks_closed_form() > 0);

    let (status, text) = client.get("/metrics/service").unwrap();
    assert_eq!(status, 200);
    assert!(scrape(&text, &["caladrius_sim_events_total"]).unwrap() > 0.0);
    assert!(scrape(&text, &["caladrius_sim_ticks_closed_form_total"]).unwrap() > 0.0);
}

#[test]
fn trace_recent_spans_carry_request_ids() {
    let (_server, client) = start_service();
    assert_eq!(client.get("/health").unwrap().0, 200);
    let (status, body) = client
        .post(
            "/model/topology/heron/wordcount",
            r#"{"source_rate": 15000000}"#,
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");

    let (status, body) = client.get("/trace/recent?limit=100").unwrap();
    assert_eq!(status, 200);
    let v = json::parse(&body).unwrap();
    let events = v.get("events").unwrap().as_array().unwrap();
    assert!(!events.is_empty());

    let span = |name: &str| {
        events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some(name))
            .unwrap_or_else(|| panic!("no {name} span in {body}"))
    };
    // The evaluation's core span shares the request id of its enclosing
    // HTTP span — the id was minted at the edge and propagated down.
    let evaluate = span("core.evaluate");
    let eval_request = evaluate.get("request_id").unwrap().as_str().unwrap();
    let http_ids: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").unwrap().as_str() == Some("http.request"))
        .map(|e| e.get("request_id").unwrap().as_str().unwrap())
        .collect();
    assert!(!http_ids.is_empty());
    assert!(
        http_ids.contains(&eval_request),
        "core.evaluate request id {eval_request} not among http ids {http_ids:?}"
    );
    assert_eq!(
        evaluate
            .get("fields")
            .unwrap()
            .get("topology")
            .unwrap()
            .as_str(),
        Some("wordcount")
    );
}

/// A small staged fleet (2 shards × 4 topologies) behind its HTTP
/// front door.
fn start_fleet() -> (HttpServer, HttpClient) {
    let fleet = Arc::new(Fleet::new(FleetConfig {
        shards: 2,
        ..FleetConfig::default()
    }));
    let staged = StagedWorkload::stage_wordcount();
    let mut batch = MetricBatch::new(0);
    for i in 0..4 {
        let name = format!("obs-tenant-{i}");
        let mut topology = wordcount_topology(
            WordCountParallelism {
                spout: 8,
                splitter: 2,
                counter: 3,
            },
            6.0e6,
        );
        topology.name = name.clone();
        let metrics = fleet.register(topology);
        let bound = staged.bind(&metrics);
        for idx in 0..staged.minutes() {
            bound.fill(&staged, idx, &mut batch);
            fleet.ingest(&name, &batch).expect("registered topology");
        }
    }
    let service = FleetService::new(fleet, 2);
    let server = HttpServer::serve("127.0.0.1:0", 4, service.handler()).unwrap();
    let client = HttpClient::new(server.local_addr());
    (server, client)
}

/// Polls a job envelope until the job finishes.
fn wait_for_job(client: &HttpClient, accepted_body: &str) {
    let poll = json::parse(accepted_body)
        .expect("job envelope")
        .get("poll")
        .and_then(Value::as_str)
        .expect("poll url")
        .to_string();
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    loop {
        let (_, body) = client.get(&poll).expect("poll round-trip");
        match json::parse(&body)
            .unwrap()
            .get("state")
            .and_then(Value::as_str)
        {
            Some("done") => return,
            Some("failed") => panic!("job failed: {body}"),
            _ => {
                assert!(std::time::Instant::now() < deadline, "job timed out");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

/// A cluster plan over real HTTP leaves one *connected* span tree in
/// the trace ring: `http.request` → `fleet.plan` → one
/// `fleet.shard.plan` per topology → `core.plan`, all attributed to
/// the caller-supplied request id even though the work hopped from the
/// HTTP worker to the job worker to the shared planning pool.
#[test]
fn fleet_plan_fans_out_one_connected_span_tree() {
    let (_server, client) = start_fleet();
    let supplied = "beefcafe";
    let expected_id = caladrius::obs::RequestId::parse(supplied)
        .unwrap()
        .to_string();

    let (status, _, body) = client
        .post_full("/fleet/plan", "{}", &[("x-request-id", supplied)])
        .unwrap();
    assert_eq!(status, 202, "{body}");
    wait_for_job(&client, &body);

    let (status, body) = client
        .get(&format!("/trace/recent?request_id={supplied}&limit=2048"))
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let v = json::parse(&body).unwrap();
    let events = v.get("events").unwrap().as_array().unwrap();
    assert!(!events.is_empty(), "no spans for request {supplied}");
    for event in events {
        assert_eq!(
            event.get("request_id").and_then(Value::as_str),
            Some(expected_id.as_str()),
            "foreign span in filtered trace: {event:?}"
        );
    }

    let spans_named = |name: &str| -> Vec<&Value> {
        events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some(name))
            .collect()
    };
    let span_id = |e: &Value| e.get("span_id").and_then(Value::as_f64).unwrap() as u64;
    let parent_id = |e: &Value| {
        e.get("parent_span_id")
            .and_then(Value::as_f64)
            .map(|p| p as u64)
    };

    // Exactly one HTTP edge span and one cluster-plan span, linked.
    let http = spans_named("http.request");
    let accepted: Vec<&&Value> = http
        .iter()
        .filter(|e| {
            e.get("fields")
                .and_then(|f| f.get("route"))
                .and_then(Value::as_str)
                == Some("/fleet/plan")
        })
        .collect();
    assert_eq!(accepted.len(), 1, "{body}");
    let plans = spans_named("fleet.plan");
    assert_eq!(plans.len(), 1, "{body}");
    assert_eq!(
        parent_id(plans[0]),
        Some(span_id(accepted[0])),
        "fleet.plan not parented to the accepting http.request"
    );

    // One shard-plan span per topology, each parented to the cluster
    // plan; every core.plan span sits under some shard-plan span.
    let shard_plans = spans_named("fleet.shard.plan");
    assert_eq!(shard_plans.len(), 4, "{body}");
    let plan_span = span_id(plans[0]);
    let shard_ids: Vec<u64> = shard_plans
        .iter()
        .map(|e| {
            assert_eq!(parent_id(e), Some(plan_span), "{e:?}");
            span_id(e)
        })
        .collect();
    let core_plans = spans_named("core.plan");
    assert_eq!(core_plans.len(), 4, "{body}");
    for core in &core_plans {
        let parent = parent_id(core).expect("core.plan has a parent");
        assert!(
            shard_ids.contains(&parent),
            "core.plan parent {parent} not a fleet.shard.plan: {body}"
        );
    }
}

/// `/slo/status` and `/debug/flight` round-trip as JSON over the fleet
/// front door, and serving requests populates both: the plan route's
/// SLO objective appears with finite burn rates, and the flight
/// recorder holds at least one snapshot with flattened samples.
#[test]
fn slo_status_and_flight_round_trip_over_http() {
    let (_server, client) = start_fleet();
    let (status, _, body) = client.post_full("/fleet/plan", "{}", &[]).unwrap();
    assert_eq!(status, 202, "{body}");
    wait_for_job(&client, &body);

    let (status, body) = client.get("/slo/status").unwrap();
    assert_eq!(status, 200, "{body}");
    let v = json::parse(&body).unwrap();
    assert!(v.get("firing").and_then(Value::as_f64).unwrap() >= 0.0);
    assert!(v.get("warning").and_then(Value::as_f64).unwrap() >= 0.0);
    let objectives = v.get("objectives").and_then(Value::as_array).unwrap();
    let route_slo = objectives
        .iter()
        .find(|o| o.get("name").and_then(Value::as_str) == Some("route:/fleet/plan"))
        .unwrap_or_else(|| panic!("no /fleet/plan objective: {body}"));
    for field in ["fast_burn_rate", "slow_burn_rate", "target"] {
        let value = route_slo.get(field).and_then(Value::as_f64).unwrap();
        assert!(value.is_finite() && value >= 0.0, "{field}: {value}");
    }
    assert!(route_slo.get("good").and_then(Value::as_f64).unwrap() >= 1.0);
    assert!(
        objectives
            .iter()
            .any(|o| o.get("name").and_then(Value::as_str) == Some("fleet-plan-jobs")),
        "plan job objective missing: {body}"
    );

    let (status, body) = client.get("/debug/flight").unwrap();
    assert_eq!(status, 200, "{body}");
    let v = json::parse(&body).unwrap();
    let snapshots = v.get("snapshots").and_then(Value::as_array).unwrap();
    assert!(!snapshots.is_empty(), "flight dump is empty: {body}");
    let samples = snapshots
        .last()
        .unwrap()
        .get("samples")
        .and_then(Value::as_array)
        .unwrap();
    assert!(
        samples.iter().any(|s| {
            s.get("name")
                .and_then(Value::as_str)
                .is_some_and(|n| n.starts_with("caladrius_http_request_duration_seconds"))
        }),
        "no flattened duration sample: {body}"
    );
    assert!(v.get("slo_transitions").and_then(Value::as_array).is_some());
    assert!(v.get("sheds").and_then(Value::as_array).is_some());
}
