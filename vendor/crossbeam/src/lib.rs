//! Vendored shim exposing the subset of `crossbeam` this workspace
//! uses: `channel::{unbounded, Sender, Receiver}` with MPMC cloning
//! and disconnect semantics, backed by a `Mutex<VecDeque>` + `Condvar`.
//!
//! See `vendor/` in the repo root for why external dependencies are
//! vendored.

pub mod channel {
    //! Multi-producer multi-consumer unbounded FIFO channel.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel, returning the sender/receiver pair.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next value, blocking while the channel is empty.
        /// Fails once the channel is empty and all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<i32>();
            let tx2 = tx.clone();
            tx.send(7).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<i32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn mpmc_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut sum = 0u32;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            for i in 1..=100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: u32 = workers.into_iter().map(|w| w.join().unwrap()).sum();
            assert_eq!(total, 5050);
        }
    }
}
