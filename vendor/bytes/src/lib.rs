//! Vendored shim exposing the subset of the `bytes` crate this
//! workspace uses: an immutable shared [`Bytes`] buffer, a growable
//! [`BytesMut`] builder, and the [`BufMut`] trait method `put_u8`.
//!
//! See `vendor/` in the repo root for why external dependencies are
//! vendored.

use std::fmt;
use std::ops::{Deref, DerefMut, Index, IndexMut};
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies `slice` into a new buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Self { data: slice.into() }
    }

    /// Returns a buffer holding the given subrange (copying; the real
    /// crate shares the allocation, which callers cannot observe).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Self {
            data: self.data[range].into(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for b in self.data.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends all of `slice`.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }

    /// Converts the builder into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.buf.into(),
        }
    }
}

impl Index<usize> for BytesMut {
    type Output = u8;
    fn index(&self, i: usize) -> &u8 {
        &self.buf[i]
    }
}

impl IndexMut<usize> for BytesMut {
    fn index_mut(&mut self, i: usize) -> &mut u8 {
        &mut self.buf[i]
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut(len={})", self.buf.len())
    }
}

/// Write-side trait; only the methods this workspace calls.
pub trait BufMut {
    /// Appends a single byte.
    fn put_u8(&mut self, b: u8);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_freeze() {
        let mut m = BytesMut::new();
        m.put_u8(0xab);
        m.put_u8(0x01);
        m[1] |= 0x10;
        assert_eq!(m.len(), 2);
        let b = m.freeze();
        assert_eq!(&b[..], &[0xab, 0x11]);
        assert_eq!(b.len(), 2);
    }
}
