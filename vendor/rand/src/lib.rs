//! Vendored shim exposing the subset of the `rand` crate this
//! workspace uses: a deterministic seedable RNG and uniform range
//! sampling via `random_range`.
//!
//! The generator is SplitMix64 — statistically solid for simulation
//! noise and far simpler than ChaCha; callers here only need
//! reproducibility from a `u64` seed, not cryptographic strength.
//!
//! See `vendor/` in the repo root for why external dependencies are
//! vendored.

use std::ops::Range;

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A type that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Samples uniformly from `range` (half-open).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability 1/2.
    fn random_bool(&mut self) -> bool
    where
        Self: Sized,
    {
        self.next_u64() & 1 == 1
    }
}

impl<R: RngCore> RngExt for R {}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(i32, i64, u32, u64, usize, u16, u8);

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            let x: f64 = a.random_range(0.0..1.0);
            let y: f64 = b.random_range(0.0..1.0);
            assert_eq!(x, y);
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = rng.random_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i: i64 = rng.random_range(3i64..9);
            assert!((3..9).contains(&i));
            let u: usize = rng.random_range(1usize..2);
            assert_eq!(u, 1);
        }
    }

    #[test]
    fn mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.random_range(0.0..1.0f64)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }
}
