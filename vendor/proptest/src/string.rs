//! Regex-subset string generation for `&str` strategies.
//!
//! Supports the pattern shapes used in this repo's properties: literal
//! characters, `.` (any printable-ish char), character classes with
//! ranges (`[a-zA-Z0-9._~/-]`), and the quantifiers `*`, `+`, `?`,
//! `{n}`, `{n,m}`. Unsupported regex syntax will generate literally,
//! which surfaces quickly in tests rather than silently misbehaving.

use crate::test_runner::TestRng;

enum CharSet {
    /// `.` — any character from a varied pool.
    Any,
    /// A class: inclusive char ranges (single chars are degenerate ranges).
    Ranges(Vec<(char, char)>),
}

struct Elem {
    set: CharSet,
    min: usize,
    max: usize,
}

/// Characters the `.` wildcard draws from beyond plain printable ASCII,
/// so JSON/percent-encoding properties see escapes, controls and
/// multi-byte UTF-8.
const SPICE: &[char] = &['\n', '\t', '"', '\\', '\u{1}', 'é', '中', '🦀'];

fn parse(pattern: &str) -> Vec<Elem> {
    let mut chars = pattern.chars().peekable();
    let mut elems = Vec::new();
    while let Some(c) = chars.next() {
        let set = match c {
            '.' => CharSet::Any,
            '[' => {
                let mut ranges = Vec::new();
                let mut members: Vec<char> = Vec::new();
                for m in chars.by_ref() {
                    if m == ']' {
                        break;
                    }
                    members.push(m);
                }
                let mut i = 0;
                while i < members.len() {
                    if i + 2 < members.len() && members[i + 1] == '-' {
                        ranges.push((members[i], members[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((members[i], members[i]));
                        i += 1;
                    }
                }
                CharSet::Ranges(ranges)
            }
            '\\' => {
                let escaped = chars.next().unwrap_or('\\');
                CharSet::Ranges(vec![(escaped, escaped)])
            }
            literal => CharSet::Ranges(vec![(literal, literal)]),
        };
        let (min, max) = match chars.peek() {
            Some('*') => {
                chars.next();
                (0, 16)
            }
            Some('+') => {
                chars.next();
                (1, 16)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('{') => {
                chars.next();
                let mut bounds = String::new();
                for b in chars.by_ref() {
                    if b == '}' {
                        break;
                    }
                    bounds.push(b);
                }
                match bounds.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().unwrap_or(0),
                        hi.trim().parse().unwrap_or(16),
                    ),
                    None => {
                        let n = bounds.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        elems.push(Elem { set, min, max });
    }
    elems
}

fn pick(set: &CharSet, rng: &mut TestRng) -> char {
    match set {
        CharSet::Any => {
            // Mostly printable ASCII, occasionally something spicier.
            if rng.below(8) == 0 {
                SPICE[rng.below(SPICE.len())]
            } else {
                char::from(0x20 + rng.below(0x5f) as u8)
            }
        }
        CharSet::Ranges(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                .sum();
            let mut idx = rng.below(total as usize) as u32;
            for &(lo, hi) in ranges {
                let len = hi as u32 - lo as u32 + 1;
                if idx < len {
                    return char::from_u32(lo as u32 + idx).unwrap_or(lo);
                }
                idx -= len;
            }
            unreachable!("index within total class size")
        }
    }
}

/// Generates one string matching `pattern`.
pub fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for elem in parse(pattern) {
        let count = elem.min + rng.below(elem.max - elem.min + 1);
        for _ in 0..count {
            out.push(pick(&elem.set, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_quantifier() {
        let mut rng = TestRng::from_name("class_with_quantifier");
        for _ in 0..200 {
            let s = generate_pattern("[a-z][a-z0-9_]{0,12}", &mut rng);
            let mut it = s.chars();
            let first = it.next().unwrap();
            assert!(first.is_ascii_lowercase());
            assert!(s.len() <= 13);
            for c in it {
                assert!(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
            }
        }
    }

    #[test]
    fn literal_prefix_and_dash_literal() {
        let mut rng = TestRng::from_name("literal_prefix");
        for _ in 0..100 {
            let s = generate_pattern("/[a-z0-9/]{0,30}", &mut rng);
            assert!(s.starts_with('/'));
            let t = generate_pattern("[a-zA-Z0-9._~/-]{0,50}", &mut rng);
            for c in t.chars() {
                assert!(
                    c.is_ascii_alphanumeric() || ".-_~/".contains(c),
                    "unexpected char {c:?}"
                );
            }
        }
    }

    #[test]
    fn dot_star_varies_length() {
        let mut rng = TestRng::from_name("dot_star");
        let lens: Vec<usize> = (0..50)
            .map(|_| generate_pattern(".*", &mut rng).chars().count())
            .collect();
        assert!(lens.iter().any(|&l| l == 0) || lens.iter().any(|&l| l > 0));
        assert!(lens.iter().all(|&l| l <= 16));
    }

    #[test]
    fn exact_repetition() {
        let mut rng = TestRng::from_name("exact");
        let s = generate_pattern("[ab]{4}", &mut rng);
        assert_eq!(s.len(), 4);
    }
}
