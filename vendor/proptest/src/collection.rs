//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeMap;
use std::ops::Range;

/// Size specification for collection strategies: an exact `usize` or a
/// half-open `Range<usize>`.
pub trait IntoSizeRange {
    /// Inclusive (min, max) bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for i32 {
    fn bounds(&self) -> (usize, usize) {
        (*self as usize, *self as usize)
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

/// Generates vectors whose elements come from `element` and whose
/// length is drawn uniformly from `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.min + rng.below(self.max - self.min + 1);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K::Value, V::Value>`.
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    min: usize,
    max: usize,
}

/// Generates maps with `size` entries (post-deduplication the map may
/// be smaller if the key strategy collides, matching upstream).
pub fn btree_map<K, V>(key: K, value: V, size: impl IntoSizeRange) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    let (min, max) = size.bounds();
    BTreeMapStrategy {
        key,
        value,
        min,
        max,
    }
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let len = self.min + rng.below(self.max - self.min + 1);
        (0..len)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes() {
        let mut rng = TestRng::from_name("vec_sizes");
        for _ in 0..100 {
            let v = vec(0u32..5, 1..8).generate(&mut rng);
            assert!((1..8).contains(&v.len()));
            let fixed = vec(0u32..5, 6).generate(&mut rng);
            assert_eq!(fixed.len(), 6);
        }
    }

    #[test]
    fn btree_map_respects_bounds() {
        let mut rng = TestRng::from_name("btree_map");
        for _ in 0..50 {
            let m = btree_map(0u32..100, 0u32..5, 0..8).generate(&mut rng);
            assert!(m.len() < 8);
        }
    }
}
