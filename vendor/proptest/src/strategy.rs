//! The [`Strategy`] trait and core combinators.

use crate::string::generate_pattern;
use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

/// A recipe for generating values of [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Type-erases this strategy behind a cheaply cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let base = self;
        BoxedStrategy::from_fn(move |rng| base.generate(rng))
    }

    /// Builds a recursive strategy: `self` is the leaf case and `branch`
    /// wraps an inner strategy into the recursive case. `depth` bounds
    /// the nesting; the remaining two parameters (target size hints in
    /// the real crate) are accepted for signature compatibility.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = branch(current).boxed();
            let leaf = leaf.clone();
            // Bias toward leaves so generated structures stay small.
            current = BoxedStrategy::from_fn(move |rng| {
                if rng.below(3) == 0 {
                    deeper.generate(rng)
                } else {
                    leaf.generate(rng)
                }
            });
        }
        current
    }
}

/// Type-erased, cloneable strategy handle.
pub struct BoxedStrategy<T> {
    gen_fn: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> BoxedStrategy<T> {
    /// Wraps a generation closure.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        Self {
            gen_fn: Arc::new(f),
        }
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            gen_fn: Arc::clone(&self.gen_fn),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy that always yields a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-typed strategies (see `prop_oneof!`).
pub struct OneOf<T> {
    alternatives: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds from a non-empty list of alternatives.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
        Self { alternatives }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.alternatives.len());
        self.alternatives[idx].generate(rng)
    }
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        Self {
            alternatives: self.alternatives.clone(),
        }
    }
}

/// Types with a canonical "generate anything" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for any value of `T` (`any::<T>()`).
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// Returns the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Raw bit patterns: exercises subnormals, infinities and NaN,
        // which is exactly what encoding round-trip properties want.
        f64::from_bits(rng.next_u64())
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String strategies from a regex-subset pattern (`".*"`,
/// `"[a-z][a-z0-9_]{0,12}"`, ...).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_oneof() {
        let mut rng = TestRng::from_name("map_and_oneof");
        let s = crate::prop_oneof![Just(1u32), (10u32..20).prop_map(|v| v * 2),];
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v == 1 || (20..40).contains(&v));
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug)]
        enum Tree {
            Leaf(u32),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u32..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 64, 8, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::from_name("recursive_terminates");
        for _ in 0..50 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 6);
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = TestRng::from_name("ranges_in_bounds");
        for _ in 0..200 {
            let v = (3i64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }
}
