//! Deterministic RNG and case-count plumbing for the mini harness.

/// Number of generated cases per property (override with
/// `PROPTEST_CASES`).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// SplitMix64 RNG seeded from the test name, so every run of a given
/// property generates the same case sequence (failures reproduce).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from an arbitrary string (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
