//! Boolean strategies (`prop::bool::ANY`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy yielding `true` or `false` with equal probability.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

/// The canonical boolean strategy.
pub const ANY: AnyBool = AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
