//! Vendored mini property-testing harness with the `proptest` API
//! surface this workspace uses.
//!
//! Differences from the real crate, chosen deliberately for an offline
//! build: no shrinking (failures report the generated inputs via the
//! panic message from `assert!`), a fixed deterministic RNG seeded per
//! test name (so failures reproduce exactly across runs), and
//! `prop_assume!` skips the remaining body of the current case rather
//! than resampling. The strategy combinators (`prop_map`,
//! `prop_recursive`, `prop_oneof!`, collections, ranges, regex-subset
//! string patterns) match the upstream semantics closely enough for
//! every property in this repo.
//!
//! Case count defaults to 64 and can be overridden with the
//! `PROPTEST_CASES` environment variable.

pub mod bool;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Namespace mirror of `proptest::prop` used as `prop::collection::vec`,
/// `prop::bool::ANY` etc. after a prelude glob import.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

/// One-stop import mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]`-style function (the attribute comes from the
/// caller's metas) that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let __cases = $crate::test_runner::cases();
                for __case in 0..__cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    // The closure gives `prop_assume!` an early-exit via
                    // `return` that skips only the current case.
                    let __one_case = move || { $body };
                    __one_case();
                }
            }
        )+
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skips the remainder of the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    }};
}
