//! Vendored shim for `serde`: marker traits plus re-exported no-op
//! derives (behind the `derive` feature, matching the real crate's
//! feature name).
//!
//! The workspace only ever *derives* these traits — serialization goes
//! through the API crate's own JSON layer — so the traits carry no
//! methods. See `vendor/` in the repo root for why external
//! dependencies are vendored.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
