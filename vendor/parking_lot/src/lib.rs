//! Vendored shim exposing the subset of the `parking_lot` API this
//! workspace uses, backed by `std::sync`.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors minimal implementations of its external
//! dependencies (see `vendor/` in the repo root). Semantics match
//! `parking_lot` where it matters to callers: `lock`/`read`/`write`
//! return guards directly (no poisoning — a poisoned std lock is
//! recovered transparently, matching parking_lot's behaviour of not
//! propagating panics through lock acquisition).

use std::fmt;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual exclusion primitive with parking_lot's non-poisoning API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock wrapping `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
