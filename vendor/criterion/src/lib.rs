//! Vendored mini benchmark harness with the `Criterion` API surface
//! this workspace uses (`benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`, the `criterion_group!` /
//! `criterion_main!` macros).
//!
//! Measurement model: per bench, calibrate an iteration count that
//! takes roughly [`TARGET_SAMPLE_MS`] per sample, collect `sample_size`
//! samples, and report min/median/mean per-iteration wall time. No
//! statistical regression analysis, plots or baselines — numbers print
//! to stdout and are meant for relative before/after comparison on the
//! same machine.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Wall-time each calibrated sample aims for.
const TARGET_SAMPLE_MS: u64 = 25;

/// Opaque value barrier re-exported for convenience.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find an iteration count whose sample
        // takes roughly TARGET_SAMPLE_MS.
        let mut iters: u64 = 1;
        let target = Duration::from_millis(TARGET_SAMPLE_MS);
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= target / 4 || iters >= 1 << 24 {
                if elapsed < target && elapsed > Duration::ZERO {
                    let scale = target.as_nanos() / elapsed.as_nanos().max(1);
                    iters = iters.saturating_mul(scale.clamp(1, 1 << 10) as u64);
                }
                break;
            }
            iters *= 4;
        }

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("  {group}/{id}: no samples (iter not called)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "  {group}/{id}: median {} min {} mean {} ({} samples)",
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(mean),
            sorted.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function calling each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
