//! Vendored no-op derive macros for `Serialize`/`Deserialize`.
//!
//! The workspace derives these traits as forward-compatibility markers
//! but never calls a serializer (the API crate has its own hand-rolled
//! JSON layer), so empty expansions are sufficient. `attributes(serde)`
//! is declared so `#[serde(...)]` field attributes, if ever added,
//! parse instead of erroring.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
